"""The functional database backing egglog functions.

Unlike most Datalog engines, egglog is backed by a *functional* database
(Section 5.1): each function/relation is a map from argument tuples to a
single output value.  Each row additionally carries a timestamp — the
iteration at which it was inserted or last updated — which is what makes
semi-naïve evaluation (Section 4.3) possible: a delta query only needs to
look at rows whose timestamp is at least the rule's last-run timestamp.

Tables also maintain lazily-built hash indexes over column subsets, used by
the query engine for index-nested-loop joins and by rebuilding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from .schema import FunctionDecl
from .values import Value

Key = Tuple[Value, ...]


@dataclass
class Row:
    """A single function entry ``f(key) -> value`` with its timestamp."""

    value: Value
    timestamp: int


class Table:
    """Backing store for one egglog function.

    Columns ``0 .. arity-1`` are the arguments, column ``arity`` is the
    output.  The table enforces nothing about canonicalization or merges —
    that is the engine's and the rebuilder's job — it only stores rows and
    provides lookups, scans, and indexes.
    """

    def __init__(self, decl: FunctionDecl) -> None:
        self.decl = decl
        self.data: Dict[Key, Row] = {}
        self._indexes: Dict[Tuple[int, ...], Dict[Tuple[Value, ...], List[Key]]] = {}
        self._index_versions: Dict[Tuple[int, ...], int] = {}
        self._version = 0

    # -- basic access --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.data)

    def __contains__(self, key: Key) -> bool:
        return key in self.data

    @property
    def arity(self) -> int:
        return self.decl.arity

    @property
    def num_columns(self) -> int:
        return self.decl.arity + 1

    def get(self, key: Key) -> Optional[Value]:
        row = self.data.get(key)
        return row.value if row is not None else None

    def get_row(self, key: Key) -> Optional[Row]:
        return self.data.get(key)

    def put(self, key: Key, value: Value, timestamp: int) -> None:
        """Insert or overwrite a row.  Bumps the table version."""
        self.data[key] = Row(value, timestamp)
        self._version += 1

    def remove(self, key: Key) -> Optional[Row]:
        """Remove and return a row (None if absent)."""
        row = self.data.pop(key, None)
        if row is not None:
            self._version += 1
        return row

    def rows(self) -> Iterator[Tuple[Key, Value, int]]:
        """Iterate over (key, value, timestamp) triples."""
        for key, row in self.data.items():
            yield key, row.value, row.timestamp

    def tuples(self) -> Iterator[Tuple[Value, ...]]:
        """Iterate over full rows as flat tuples (args..., output)."""
        for key, row in self.data.items():
            yield key + (row.value,)

    def new_keys(self, since: int) -> List[Key]:
        """Keys of rows inserted or updated at or after timestamp ``since``."""
        return [key for key, row in self.data.items() if row.timestamp >= since]

    # -- indexes --------------------------------------------------------------

    def index(self, columns: Tuple[int, ...]) -> Dict[Tuple[Value, ...], List[Key]]:
        """Hash index mapping projections on ``columns`` to matching keys.

        Indexes are cached and rebuilt lazily when the table has changed.
        Column ``arity`` refers to the output value.
        """
        cached = self._indexes.get(columns)
        if cached is not None and self._index_versions.get(columns) == self._version:
            return cached
        arity = self.decl.arity
        index: Dict[Tuple[Value, ...], List[Key]] = {}
        for key, row in self.data.items():
            projection = tuple(
                row.value if col == arity else key[col] for col in columns
            )
            index.setdefault(projection, []).append(key)
        self._indexes[columns] = index
        self._index_versions[columns] = self._version
        return index

    def column_values(self, column: int) -> Dict[Value, List[Key]]:
        """Single-column index (used by generic join)."""
        grouped = self.index((column,))
        return {proj[0]: keys for proj, keys in grouped.items()}
