"""The embedded Python DSL: the blessed surface for building on egglog.

Where the string-level API (``repro.engine``) spells everything with names
— ``App("Mul", V("x"), App("Num", 2))`` — the DSL works with typed
*handles* that catch typos at the line that makes them::

    from repro import EGraph, vars_, rule, set_
    from repro.dsl import i64, String

    eg = EGraph()
    math = eg.sort("Math")
    num = eg.constructor("Num", (i64,), math)
    mul = eg.constructor("Mul", (math, math), math, cost=4, op="*")
    shl = eg.constructor("Shl", (math, math), math, cost=1, op="<<")

    x, y = vars_("x y", math)
    eg.register(
        (x * y).to(y * x),                         # commutativity
        (x * num(2)).to(x << num(1)),              # strength reduction
    )

    expr = mul(num(2), num(21))
    eg.add(expr)
    eg.run(10)
    eg.check(expr == num(21) << num(1))
    print(eg.extract(expr))                        # cheapest equivalent term

Everything lowers onto the engine's term IR; the wrapped string-level
engine stays reachable as ``eg.engine``.  See ``docs/API.md`` for the full
guide with side-by-side ``.egg`` and Python spellings.
"""

from ..engine.errors import CheckError
from ..engine.schedule import (
    Repeat,
    Run,
    Saturate,
    Schedule,
    Seq,
    repeat,
    saturate,
    seq,
)
from .egraph import EGraph, Explanation, ExplainStep, Extracted
from .errors import (
    ArityError,
    DslError,
    DuplicateDeclarationError,
    SortMismatchError,
    StaleHandleError,
    UnboundVariableError,
    UnknownSortError,
)
from .expr import (
    Bool,
    Expr,
    Function,
    Rational,
    Sort,
    String,
    Unit,
    expr_repr,
    f64,
    i64,
    lit,
    var,
    vars_,
)
from .rules import (
    Eq,
    Rewrite,
    RuleBuilder,
    Ruleset,
    delete,
    eq,
    let,
    panic,
    rule,
    set_,
    union,
)

__all__ = [
    "ArityError",
    "Bool",
    "CheckError",
    "DslError",
    "DuplicateDeclarationError",
    "EGraph",
    "Eq",
    "ExplainStep",
    "Explanation",
    "Expr",
    "Extracted",
    "Function",
    "Rational",
    "Repeat",
    "Rewrite",
    "RuleBuilder",
    "Ruleset",
    "Run",
    "Saturate",
    "Schedule",
    "Seq",
    "Sort",
    "SortMismatchError",
    "StaleHandleError",
    "String",
    "UnboundVariableError",
    "Unit",
    "UnknownSortError",
    "delete",
    "eq",
    "expr_repr",
    "f64",
    "i64",
    "let",
    "lit",
    "panic",
    "repeat",
    "rule",
    "saturate",
    "seq",
    "set_",
    "union",
    "var",
    "vars_",
]
