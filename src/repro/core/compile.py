"""Compiled query plans: the positional search hot path.

The interpreted strategies in :mod:`repro.core.query` and
:mod:`repro.core.genericjoin` pay per-match interpretation costs the paper's
engine never does (journals_pacmpl_ZhangWFCZRTW23 §4–5): every row binding
goes through a ``Dict[str, Value]`` substitution, every column is
re-inspected with ``isinstance(col, QVar)``, and every primitive atom
re-discovers its evaluation order.  A compiled rule runs its query millions
of times against the same *structure* — only the data changes — so all of
that is resolved here once per (rule, strategy):

* **Slots.**  Query variables become integer slots
  (:func:`assign_slots`); a match is a plain ``tuple`` of values in slot
  order instead of a dict.  Scheduler-side deduplication of semi-naïve
  delta matches hashes those canonical tuples directly.
* **Column roles.**  Each atom's columns are classified at plan time into
  constants, first-occurrence bindings, and repeated-variable checks, so
  the per-row inner loops below do zero ``isinstance`` work.
* **Primitive programs.**  Primitive atoms are scheduled once into a
  straight-line program (:func:`compile_prims`) whose steps fetch
  arguments from slots; the interpreted retry loop of ``apply_prims`` is
  gone from the hot path.

Two executors are provided, mirroring the two interpreted join strategies
and — deliberately — enumerating matches in exactly the same order for the
same database state, so compiled and interpreted runs produce identical
results (same e-class allocation order, same extraction tie-breaks):

* :class:`CompiledIndexedQuery` — index-nested-loop join (the default
  engine strategy).  The greedy atom order still adapts to live table
  sizes via :func:`repro.core.query.plan_order`; the per-atom step
  structures are cached keyed by the resulting order.
* :class:`CompiledGenericQuery` — worst-case optimal generic join over the
  persistent trie indexes (or per-execution tries for the ad-hoc
  baseline).  The per-depth sets of involved atoms are fully static, so
  the descent does no per-node atom scanning.

Cache invalidation is the engine's job: compiled executors are cached per
(rule, strategy) and keyed by the engine's compile epoch, which push/pop
and rule replacement bump (see ``EGraph.rule_exec``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from .builtins import PrimitiveRegistry
from .database import Table
from .index import NONEMPTY, descend_constants, plan_query
from .query import Query, QVar, TableAtom, plan_order
from .values import BOOL, UNIT, Value

MatchTuple = Tuple[Value, ...]

#: Shared immutable "exhausted sub-trie" node (never mutated: the descent
#: only calls ``len``/``get``/iteration on nodes).
_EMPTY: Dict = {}


def assign_slots(query: Query) -> Tuple[Dict[str, int], Tuple[str, ...]]:
    """Map every query variable to an integer slot (first-occurrence order).

    Table-atom variables come first (in column order of appearance), then
    variables that only primitive atoms mention.  The mapping is shared by
    the query executors and the rule's compiled action program, so a match
    tuple indexes directly into action opcodes.
    """
    slot_of: Dict[str, int] = {}
    names: List[str] = []
    for atom in query.atoms:
        for col in atom.columns():
            if isinstance(col, QVar) and col.name not in slot_of:
                slot_of[col.name] = len(names)
                names.append(col.name)
    for prim in query.prims:
        for col in prim.args + (prim.out,):
            if isinstance(col, QVar) and col.name not in slot_of:
                slot_of[col.name] = len(names)
                names.append(col.name)
    return slot_of, tuple(names)


# ---------------------------------------------------------------------------
# Primitive programs
# ---------------------------------------------------------------------------

_OUT_GUARD = 0
_OUT_BIND = 1
_OUT_CHECK_SLOT = 2
_OUT_CHECK_CONST = 3

#: One scheduled primitive step: (op name, arg fetch specs, out kind, payload).
#: An arg spec is ``(True, slot)`` or ``(False, constant Value)``.
PrimStep = Tuple[str, Tuple[Tuple[bool, object], ...], int, object]


def compile_prims(
    prims: Sequence,
    slot_of: Dict[str, int],
    bound_slots: Set[int],
    registry: PrimitiveRegistry,
) -> Optional[Callable[[List[Optional[Value]]], bool]]:
    """Schedule primitive atoms into a straight-line slot program.

    Replicates ``apply_prims``'s fixpoint: repeatedly schedule every
    primitive whose inputs are bound; an output may bind a fresh slot.
    Returns a runner ``regs -> bool`` (True iff every guard passed), or
    ``None`` when some primitive's inputs can never be bound — the
    interpreted engine fails every match of such an unsafe query, so
    callers must treat ``None`` as "no matches".
    """
    steps: List[PrimStep] = []
    bound = set(bound_slots)
    pending = list(prims)
    progress = True
    while pending and progress:
        progress = False
        still_pending = []
        for prim in pending:
            arg_specs: List[Tuple[bool, object]] = []
            ready = True
            for arg in prim.args:
                if isinstance(arg, QVar):
                    slot = slot_of[arg.name]
                    if slot not in bound:
                        ready = False
                        break
                    arg_specs.append((True, slot))
                else:
                    arg_specs.append((False, arg))
            if not ready:
                still_pending.append(prim)
                continue
            out = prim.out
            if out is None:
                out_kind, payload = _OUT_GUARD, None
            elif isinstance(out, QVar):
                slot = slot_of[out.name]
                if slot in bound:
                    out_kind, payload = _OUT_CHECK_SLOT, slot
                else:
                    out_kind, payload = _OUT_BIND, slot
                    bound.add(slot)
            else:
                out_kind, payload = _OUT_CHECK_CONST, out
            steps.append((prim.op, tuple(arg_specs), out_kind, payload))
            progress = True
        pending = still_pending
    if pending:
        return None  # unsafe query: inputs never bound, every match fails

    if not steps:
        return lambda regs: True

    frozen = tuple(steps)
    registry_call = registry.call

    def run(regs: List[Optional[Value]]) -> bool:
        for op, arg_specs, out_kind, payload in frozen:
            args = tuple(
                regs[spec] if is_slot else spec for is_slot, spec in arg_specs
            )
            result = registry_call(op, args)
            if result is None:
                return False
            if out_kind == _OUT_GUARD:
                sort = result[0]  # Value is a (sort, data) tuple; C indexing
                if sort == BOOL and not result[1]:
                    return False
                if sort not in (BOOL, UNIT):
                    return False
            elif out_kind == _OUT_BIND:
                regs[payload] = result
            elif out_kind == _OUT_CHECK_SLOT:
                if regs[payload] != result:
                    return False
            else:
                if payload != result:
                    return False
        return True

    return run


def _table_bound_slots(query: Query, slot_of: Dict[str, int]) -> Set[int]:
    """Slots bound by table atoms (order-independent: every atom binds all
    its variables regardless of join order)."""
    bound: Set[int] = set()
    for atom in query.atoms:
        for col in atom.columns():
            if isinstance(col, QVar):
                bound.add(slot_of[col.name])
    return bound


# ---------------------------------------------------------------------------
# Indexed (index-nested-loop) executor
# ---------------------------------------------------------------------------


class _IndexedStep:
    """One atom of an indexed plan, with column roles resolved.

    ``proj_cols``/``proj_get`` describe the hash-index lookup (constants and
    already-bound variables); ``key_binds``/``out_bind`` write
    first-occurrence variables into slots; ``key_dups``/``out_dup`` check
    repeated variables; ``key_consts``/``out_const`` check constants per
    row (used by the delta step, which scans the write log instead of an
    index).
    """

    __slots__ = (
        "func",
        "arity",
        "is_delta",
        "proj_cols",
        "proj_get",
        "key_consts",
        "out_const",
        "key_binds",
        "out_bind",
        "key_dups",
        "out_dup",
    )

    def __init__(
        self,
        atom: TableAtom,
        arity: int,
        bound: Set[int],
        slot_of: Dict[str, int],
        is_delta: bool,
    ) -> None:
        self.func = atom.func
        self.arity = arity
        self.is_delta = is_delta
        proj_cols: List[int] = []
        proj_get: List[Tuple[bool, object]] = []
        key_consts: List[Tuple[int, Value]] = []
        self.out_const: Optional[Value] = None
        key_binds: List[Tuple[int, int]] = []
        self.out_bind: Optional[int] = None
        key_dups: List[Tuple[int, int]] = []
        self.out_dup: Optional[int] = None
        seen_here: Set[int] = set()
        for col_index, col in enumerate(atom.columns()):
            is_out = col_index == arity
            if isinstance(col, QVar):
                slot = slot_of[col.name]
                if slot in bound:
                    # Bound by an earlier atom: part of the index lookup.
                    proj_cols.append(col_index)
                    proj_get.append((True, slot))
                elif slot in seen_here:
                    # Repeated within this atom: per-row equality check
                    # against the first occurrence's freshly-bound slot.
                    if is_out:
                        self.out_dup = slot
                    else:
                        key_dups.append((col_index, slot))
                else:
                    seen_here.add(slot)
                    if is_out:
                        self.out_bind = slot
                    else:
                        key_binds.append((col_index, slot))
            elif is_delta:
                # The delta step scans the write log, so constants are
                # checked per row rather than descended through an index.
                if is_out:
                    self.out_const = col
                else:
                    key_consts.append((col_index, col))
            else:
                proj_cols.append(col_index)
                proj_get.append((False, col))
        bound.update(seen_here)
        self.proj_cols = tuple(proj_cols)
        self.proj_get = tuple(proj_get)
        self.key_consts = tuple(key_consts)
        self.key_binds = tuple(key_binds)
        self.key_dups = tuple(key_dups)


class CompiledIndexedQuery:
    """Positional index-nested-loop executor for one rule's query.

    Per-atom step structures are cached keyed by ``(delta_atom, order)``:
    the greedy atom order still consults live table sizes (exactly like the
    interpreted strategy), but once an order has been seen its column-role
    resolution is never repeated.
    """

    def __init__(
        self,
        query: Query,
        slot_of: Dict[str, int],
        n_slots: int,
        registry: PrimitiveRegistry,
    ) -> None:
        self.query = query
        self.slot_of = slot_of
        self.n_slots = n_slots
        self.prim_runner = compile_prims(
            query.prims, slot_of, _table_bound_slots(query, slot_of), registry
        )
        #: No primitive atoms at all: the leaf emits without a runner call.
        self.no_prims = not query.prims
        self._steps_cache: Dict[
            Tuple[Optional[int], Tuple[int, ...]], Tuple[_IndexedStep, ...]
        ] = {}

    def _steps_for(
        self,
        delta_atom: Optional[int],
        order: Tuple[int, ...],
        tables: Dict[str, Table],
    ) -> Tuple[_IndexedStep, ...]:
        cached = self._steps_cache.get((delta_atom, order))
        if cached is not None:
            return cached
        atoms = self.query.atoms
        bound: Set[int] = set()
        steps = tuple(
            _IndexedStep(
                atoms[index],
                tables[atoms[index].func].decl.arity,
                bound,
                self.slot_of,
                delta_atom is not None and index == delta_atom,
            )
            for index in order
        )
        self._steps_cache[(delta_atom, order)] = steps
        return steps

    def search(
        self,
        tables: Dict[str, Table],
        delta_atom: Optional[int],
        since: int,
        emit: Callable[[MatchTuple], None],
    ) -> None:
        """Run the query, calling ``emit`` once per match tuple."""
        query = self.query
        atoms = query.atoms
        prim_runner = self.prim_runner
        if prim_runner is None:
            return  # unsafe primitive schedule: every match fails
        if not atoms:
            regs: List[Optional[Value]] = [None] * self.n_slots
            if prim_runner(regs):
                emit(tuple(regs))  # type: ignore[arg-type]
            return
        for atom in atoms:
            if atom.func not in tables:
                return
        order = tuple(plan_order(atoms, tables, delta_atom))
        steps = self._steps_for(delta_atom, order, tables)
        regs = [None] * self.n_slots
        self._walk(0, steps, tables, since, regs, emit)

    def _walk(
        self,
        position: int,
        steps: Tuple[_IndexedStep, ...],
        tables: Dict[str, Table],
        since: int,
        regs: List[Optional[Value]],
        emit: Callable[[MatchTuple], None],
    ) -> None:
        step = steps[position]
        table = tables[step.func]
        if step.is_delta:
            candidates = table.new_keys(since)
        elif step.proj_cols:
            index = table.index(step.proj_cols)
            proj = tuple(
                [regs[spec] if is_slot else spec for is_slot, spec in step.proj_get]
            )
            entry = index.get(proj)
            if not entry:
                return
            # Snapshot the entry: the index is live (incrementally
            # maintained) and deeper steps may trigger table reads; the
            # interpreted strategy snapshots for the same reason.
            candidates = list(entry)
        else:
            candidates = list(table.data.keys())

        data = table.data
        is_delta = step.is_delta
        key_consts = step.key_consts
        out_const = step.out_const
        key_binds = step.key_binds
        out_bind = step.out_bind
        key_dups = step.key_dups
        out_dup = step.out_dup
        next_position = position + 1
        # The deepest step emits inline instead of recursing once per row.
        at_leaf = next_position == len(steps)
        prim_runner = None if self.no_prims else self.prim_runner
        for key in candidates:
            row = data.get(key)
            if row is None:
                continue
            if is_delta and row.timestamp < since:
                continue
            if out_const is not None and row.value != out_const:
                continue
            ok = True
            for col, expected in key_consts:
                if key[col] != expected:
                    ok = False
                    break
            if not ok:
                continue
            for col, slot in key_binds:
                regs[slot] = key[col]
            if out_bind is not None:
                regs[out_bind] = row.value
            for col, slot in key_dups:
                if key[col] != regs[slot]:
                    ok = False
                    break
            if not ok:
                continue
            if out_dup is not None and row.value != regs[out_dup]:
                continue
            if at_leaf:
                if prim_runner is None or prim_runner(regs):
                    emit(tuple(regs))  # type: ignore[arg-type]
            else:
                self._walk(next_position, steps, tables, since, regs, emit)


# ---------------------------------------------------------------------------
# Generic-join executor
# ---------------------------------------------------------------------------

_ROLE_BIND = 0
_ROLE_DUP = 1
_ROLE_CONST = 2


class _GenericAtom:
    """Static per-atom data for the generic-join executor.

    ``spec`` is the persistent-index access plan (None for repeated-variable
    atoms).  ``roles`` drive the ad-hoc projection fallback with zero
    per-row isinstance work: each entry is ``(role, payload)`` per column —
    bind into a local projection slot, compare against an earlier local
    slot, or compare against a constant.  ``permutation`` reorders the
    projected row into the global variable-rank order for the trie build.
    """

    __slots__ = ("func", "spec", "sorted_vars", "roles", "permutation", "width")

    def __init__(self, atom: TableAtom, spec, var_rank: Dict[str, int]) -> None:
        self.func = atom.func
        self.spec = spec
        local_of: Dict[str, int] = {}
        names: List[str] = []
        roles: List[Tuple[int, object]] = []
        for col in atom.columns():
            if isinstance(col, QVar):
                local = local_of.get(col.name)
                if local is None:
                    local_of[col.name] = len(names)
                    roles.append((_ROLE_BIND, len(names)))
                    names.append(col.name)
                else:
                    roles.append((_ROLE_DUP, local))
            else:
                roles.append((_ROLE_CONST, col))
        sorted_names = tuple(sorted(names, key=lambda v: var_rank[v]))
        self.sorted_vars = sorted_names
        self.roles = tuple(roles)
        self.permutation = tuple(names.index(v) for v in sorted_names)
        self.width = len(names)


class CompiledGenericQuery:
    """Positional worst-case-optimal generic-join executor for one query.

    The global variable order, the per-depth involved-atom lists, and every
    atom's column roles are resolved once at construction; an execution
    only descends tries and intersects children.
    """

    def __init__(
        self,
        query: Query,
        slot_of: Dict[str, int],
        n_slots: int,
        registry: PrimitiveRegistry,
        *,
        use_indexes: bool = True,
    ) -> None:
        self.query = query
        self.slot_of = slot_of
        self.n_slots = n_slots
        self.use_indexes = use_indexes
        self.prim_runner = compile_prims(
            query.prims, slot_of, _table_bound_slots(query, slot_of), registry
        )
        self.no_prims = not query.prims
        plan = plan_query(query)
        self.var_order = plan.var_order
        self.depth_slots = tuple(slot_of[name] for name in plan.var_order)
        self.atoms = tuple(
            _GenericAtom(atom, spec, plan.var_rank)
            for atom, spec in zip(query.atoms, plan.specs)
        )
        # Ascending atom order per depth, matching the interpreted
        # executor's `range(n_atoms)` relevance scan (min() tie-breaks on
        # the first atom in that order).
        self.involved = tuple(
            tuple(
                index
                for index, ga in enumerate(self.atoms)
                if depth_var in ga.sorted_vars
            )
            for depth_var in self.var_order
        )

    # -- per-execution trie setup --------------------------------------------

    def _atom_node(
        self,
        ga: _GenericAtom,
        table: Table,
        restrict: bool,
        since: int,
    ) -> Optional[Dict]:
        """The sub-trie this atom contributes, or None when it is empty."""
        if self.use_indexes and ga.spec is not None:
            trie = table.trie(ga.spec.order)
            if trie is not None:
                root = trie.delta_root(since) if restrict else trie.root
                return descend_constants(root, ga.spec.const_values)
        # Ad-hoc fallback: project rows through the precomputed column
        # roles, building the trie directly in variable-rank order.
        roles = ga.roles
        width = ga.width
        permutation = ga.permutation
        root: Dict = {}
        matched = False
        if restrict:
            data = table.data
            row_iter = (
                (key, data[key]) for key in table.new_keys(since)
            )
        else:
            row_iter = iter(table.data.items())
        local: List[Optional[Value]] = [None] * (width or 1)
        for key, row in row_iter:
            full = key + (row.value,)
            ok = True
            for position, (role, payload) in enumerate(roles):
                value = full[position]
                if role == _ROLE_BIND:
                    local[payload] = value
                elif role == _ROLE_DUP:
                    if value != local[payload]:
                        ok = False
                        break
                else:
                    if value != payload:
                        ok = False
                        break
            if not ok:
                continue
            matched = True
            if not width:
                continue
            node = root
            for level in permutation[:-1]:
                node = node.setdefault(local[level], {})
            node[local[permutation[-1]]] = True
        if not width:
            return NONEMPTY if matched else None
        return root if root else None

    # -- execution -----------------------------------------------------------

    def search(
        self,
        tables: Dict[str, Table],
        delta_atom: Optional[int],
        since: int,
        emit: Callable[[MatchTuple], None],
    ) -> None:
        """Run the query, calling ``emit`` once per match tuple."""
        prim_runner = self.prim_runner
        if prim_runner is None:
            return
        atoms = self.query.atoms
        if not atoms:
            regs: List[Optional[Value]] = [None] * self.n_slots
            if prim_runner(regs):
                emit(tuple(regs))  # type: ignore[arg-type]
            return
        for atom in atoms:
            if atom.func not in tables:
                return

        n_atoms = len(self.atoms)
        # The delta atom goes first: if nothing is new since the watermark,
        # the search exits before any other atom pays for trie work.
        atom_order = list(range(n_atoms))
        if delta_atom is not None:
            atom_order.remove(delta_atom)
            atom_order.insert(0, delta_atom)
        nodes: List[Dict] = [_EMPTY] * n_atoms
        for index in atom_order:
            ga = self.atoms[index]
            restrict = delta_atom is not None and index == delta_atom
            node = self._atom_node(ga, tables[ga.func], restrict, since)
            if node is None:
                return
            nodes[index] = node

        regs = [None] * self.n_slots
        self._descend(0, nodes, regs, emit)

    def _descend(
        self,
        depth: int,
        nodes: List[Dict],
        regs: List[Optional[Value]],
        emit: Callable[[MatchTuple], None],
    ) -> None:
        if depth == len(self.depth_slots):
            if self.no_prims or self.prim_runner(regs):  # type: ignore[misc]
                emit(tuple(regs))  # type: ignore[arg-type]
            return
        involved = self.involved[depth]
        if not involved:
            self._descend(depth + 1, nodes, regs, emit)
            return
        slot = self.depth_slots[depth]
        next_depth = depth + 1
        smallest = involved[0]
        best = len(nodes[smallest])
        for index in involved[1:]:
            size = len(nodes[index])
            if size < best:
                smallest, best = index, size
        saved = [nodes[index] for index in involved]
        at_leaf = next_depth == len(self.depth_slots)
        prim_runner = None if self.no_prims else self.prim_runner
        # Snapshot the iterated level: persistent tries are live structures
        # (same reason the interpreted strategies snapshot candidates).
        for value in list(nodes[smallest]):
            ok = True
            for position, index in enumerate(involved):
                child = saved[position].get(value)
                if child is None:
                    ok = False
                    break
                nodes[index] = child if child.__class__ is dict else _EMPTY
            if not ok:
                continue
            regs[slot] = value
            if at_leaf:
                if prim_runner is None or prim_runner(regs):
                    emit(tuple(regs))  # type: ignore[arg-type]
            else:
                self._descend(next_depth, nodes, regs, emit)
        for position, index in enumerate(involved):
            nodes[index] = saved[position]
