"""Fault-injection tests: the crash-safety claims, exercised for real.

Three layers:

* the :class:`FaultPlan` registry itself — arming, tags, counts, the
  ``REPRO_FAULTS`` spec grammar;
* atomic snapshot writes — a fault at any point of ``write_snapshot``
  (mid temp-file write, before the rename) must leave the previous file
  byte-identical and never a corrupt hybrid, and torn/corrupt files must
  be rejected cleanly on read;
* transactional batches — a batch that fails at *any* op index (injected
  or natural) must leave the session's engine state byte-identical to the
  pre-batch snapshot, which hypothesis checks across randomized programs.
"""

import os
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serialize import SnapshotFormatError
from repro.serialize.snapshot import (
    dumps_document,
    engine_document,
    read_document,
    save_engine,
    write_snapshot,
)
from repro.session import CheckpointError, ProgramError, SessionManager
from repro.testing import FAULTS, FaultPlan, InjectedFault, trip


@pytest.fixture(autouse=True)
def _disarm():
    FAULTS.reset()
    yield
    FAULTS.reset()


# ---------------------------------------------------------------------------
# The FaultPlan registry
# ---------------------------------------------------------------------------


def test_unarmed_trip_is_a_no_op():
    trip("snapshot.write")
    trip("nonexistent.point", tag=42)


def test_armed_point_fires_then_disarms():
    FAULTS.arm("p", times=2)
    with pytest.raises(InjectedFault) as err:
        FAULTS.trip("p")
    assert err.value.point == "p"
    assert FAULTS.armed() == {"p": 1}
    with pytest.raises(InjectedFault):
        FAULTS.trip("p")
    FAULTS.trip("p")  # exhausted: back to a no-op
    assert FAULTS.armed() == {}


def test_tagged_fault_only_matches_its_tag():
    FAULTS.arm("p", tag=3)
    FAULTS.trip("p", tag=1)  # wrong tag: passes through
    FAULTS.trip("p")  # no tag: passes through
    with pytest.raises(InjectedFault) as err:
        FAULTS.trip("p", tag=3)
    assert err.value.tag == 3


def test_untagged_fault_matches_any_tag():
    FAULTS.arm("p")
    with pytest.raises(InjectedFault):
        FAULTS.trip("p", tag="anything")


def test_arm_validates_arguments():
    plan = FaultPlan()
    with pytest.raises(ValueError):
        plan.arm("p", times=0)
    with pytest.raises(ValueError):
        plan.arm("p", action="segfault")


def test_load_spec_grammar():
    plan = FaultPlan()
    plan.load_spec("a, b:3 ,c:2:raise")
    assert plan.armed() == {"a": 1, "b": 3, "c": 2}
    with pytest.raises(ValueError):
        plan.load_spec("a:1:raise:extra")
    with pytest.raises(ValueError):
        plan.load_spec(":2")


def test_reset_disarms_everything():
    FAULTS.arm("a")
    FAULTS.arm("b", times=5)
    FAULTS.reset()
    FAULTS.trip("a")
    FAULTS.trip("b")


def test_env_spec_arms_lazily(monkeypatch):
    monkeypatch.setenv("TEST_FAULTS", "p:2")
    plan = FaultPlan(env_var="TEST_FAULTS")
    assert plan.armed() == {"p": 2}
    with pytest.raises(InjectedFault):
        plan.trip("p")


def test_malformed_env_spec_raises_clearly_at_first_trip(monkeypatch):
    monkeypatch.setenv("TEST_FAULTS", ":2")
    plan = FaultPlan(env_var="TEST_FAULTS")
    with pytest.raises(ValueError, match="TEST_FAULTS"):
        plan.trip("p")
    plan.trip("p")  # reported once, loudly; later trips are plain no-ops


def test_malformed_env_spec_does_not_break_import(tmp_path):
    # The spec is parsed at first trip, never at import: a bad value must
    # not turn every ``import repro.*`` into a ValueError traceback.
    proc = subprocess.run(
        [sys.executable, "-c", "import repro.session.store; print('imported')"],
        env={**os.environ, "REPRO_FAULTS": "a:1:raise:extra"},
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr
    assert "imported" in proc.stdout


# ---------------------------------------------------------------------------
# Atomic snapshot writes
# ---------------------------------------------------------------------------


def _fresh_session(program="(datatype M (N i64) (Plus M M))\n(let e (Plus (N 1) (N 2)))"):
    mgr = SessionManager()
    s = mgr.create_session()
    s.run_egg(program)
    return mgr, s


@pytest.mark.parametrize("point", ["snapshot.write", "snapshot.rename"])
def test_crashed_write_leaves_previous_snapshot_intact(tmp_path, point):
    _, s = _fresh_session()
    path = str(tmp_path / "snap.json")
    save_engine(s.engine, path)
    with open(path, "rb") as handle:
        before = handle.read()

    s.run_egg("(let f (N 9))")  # the state the doomed write would capture
    FAULTS.arm(point)
    with pytest.raises(InjectedFault):
        save_engine(s.engine, path)

    with open(path, "rb") as handle:
        assert handle.read() == before  # old snapshot untouched
    assert not os.path.exists(path + ".tmp")  # no stale temp debris
    read_document(path)  # and it still validates

    # Nothing latched: the very next save succeeds and supersedes it.
    save_engine(s.engine, path)
    with open(path, "rb") as handle:
        assert handle.read() != before
    read_document(path)


def test_crashed_first_write_leaves_no_file(tmp_path):
    _, s = _fresh_session()
    path = str(tmp_path / "snap.json")
    FAULTS.arm("snapshot.write")
    with pytest.raises(InjectedFault):
        save_engine(s.engine, path)
    assert not os.path.exists(path)
    assert not os.path.exists(path + ".tmp")


def test_truncated_snapshot_rejected(tmp_path):
    _, s = _fresh_session()
    path = str(tmp_path / "snap.json")
    save_engine(s.engine, path)
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text[: len(text) // 2])  # a torn write, as a crash leaves it
    with pytest.raises(SnapshotFormatError):
        read_document(path)


def test_digest_mismatch_rejected(tmp_path):
    _, s = _fresh_session()
    path = str(tmp_path / "snap.json")
    document = save_engine(s.engine, path)
    document["digest"] = "0" * 64
    write_snapshot(document, path)
    with pytest.raises(SnapshotFormatError, match="digest"):
        read_document(path)


def test_corrupt_checkpoint_raises_checkpoint_error(tmp_path):
    mgr = SessionManager(state_dir=str(tmp_path))
    s = mgr.create_session()
    s.run_egg("(datatype M (N i64))")
    sid = s.id
    mgr.checkpoint_session(sid)
    with open(mgr.store.path(sid), "a", encoding="utf-8") as handle:
        handle.write("garbage")  # bit rot
    mgr._sessions.pop(sid)  # force the next get() through restore
    with pytest.raises(CheckpointError, match="unreadable"):
        mgr.get(sid)
    assert mgr.stats()["durability"]["restore_failures"] == 1


def test_restore_fault_counts_as_restore_failure(tmp_path):
    # An injected "restore" fault takes the same exit as a real load
    # failure: CheckpointError through the manager, counted in stats —
    # never a raw InjectedFault escaping to a generic 500.
    mgr = SessionManager(state_dir=str(tmp_path))
    s = mgr.create_session()
    s.run_egg("(datatype M (N i64))")
    sid = s.id
    mgr.checkpoint_session(sid)
    mgr._sessions.pop(sid)  # force the next get() through restore
    FAULTS.arm("restore", tag=sid)
    with pytest.raises(CheckpointError):
        mgr.get(sid)
    assert mgr.stats()["durability"]["restore_failures"] == 1
    # Disarmed now: the restore itself still works.
    assert mgr.get(sid).id == sid


def test_checkpoint_fault_keeps_session_live(tmp_path):
    mgr = SessionManager(max_sessions=1, state_dir=str(tmp_path))
    a = mgr.create_session()
    a.run_egg("(datatype M (N i64))\n(let x (N 1))")
    FAULTS.arm("checkpoint", tag=a.id)
    with pytest.raises(CheckpointError):
        mgr.create_session()  # eviction needs a's checkpoint, which fails
    # The victim survived with its state: no silent data loss.
    assert mgr.get(a.id) is a
    assert "x" in a.evaluator.globals
    assert mgr.stats()["durability"]["checkpoint_failures"] == 1
    # Disarmed now: the same admission succeeds and passivates a.
    mgr.create_session()
    assert mgr.store.contains(a.id)


# ---------------------------------------------------------------------------
# Transactional batches: byte-identity under arbitrary failure points
# ---------------------------------------------------------------------------

_SETUP = """
(datatype Math (Num i64) (Add Math Math))
(rewrite (Add a b) (Add b a))
(let seed (Add (Num 1) (Num 2)))
(run 2)
"""

def _num(n):
    return ["a", "Num", [["l", ["i64", n]]]]


#: A pool of op factories (parameterized by batch position so repeated
#: samples stay valid) to build randomized batches from.
_OP_POOL = [
    lambda k: {"op": "let", "name": f"t{k}", "term": ["a", "Add", [_num(3), _num(4)]]},
    lambda k: {"op": "add", "term": ["a", "Add", [_num(k), _num(k + 1)]]},
    lambda k: {"op": "union", "lhs": _num(7), "rhs": _num(8)},
    lambda k: {"op": "run", "limit": 2},
]


def _state_bytes(session):
    return dumps_document(engine_document(session.engine))


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(st.sampled_from(range(len(_OP_POOL))), min_size=1, max_size=5),
    data=st.data(),
)
def test_failed_batch_is_byte_identical_rollback(ops, data):
    FAULTS.reset()
    mgr, s = _fresh_session(_SETUP)
    before = _state_bytes(s)
    batch = [_OP_POOL[i](k) for k, i in enumerate(ops)]
    fail_at = data.draw(st.integers(min_value=0, max_value=len(batch)), label="fail_at")
    if fail_at == len(batch):
        batch.append({"op": "no-such-op"})  # natural failure at the tail
        expected = ProgramError
    else:
        FAULTS.arm("batch.op", tag=fail_at)  # injected failure mid-batch
        expected = InjectedFault
    try:
        with pytest.raises(expected):
            s.run_program(batch)
        assert _state_bytes(s) == before
        assert not any(name.startswith("t") for name in s.evaluator.globals)
        # The session is not poisoned: a clean batch still works after.
        s.run_program([{"op": "run", "limit": 1}])
    finally:
        FAULTS.reset()


def test_injected_egg_batch_failure_rolls_back():
    mgr, s = _fresh_session(_SETUP)
    before = _state_bytes(s)
    FAULTS.arm("egg.command", tag=1)
    with pytest.raises(InjectedFault):
        s.run_egg("(let t (Num 5))\n(union (Num 5) (Num 6))\n(run 1)")
    assert _state_bytes(s) == before
    assert "t" not in s.evaluator.globals
