"""Proof production: the forest, justification threading, and explain.

The chain validation here is an *independent proof checker*: it never
trusts the explanation machinery, only the explanation object itself —
each chain is replayed structurally (connectivity, endpoints) and each
step's justification is checked against the engine's registered rules,
declared functions, and current equivalences.
"""

import pytest

from repro.core.proofs import (
    EXPLICIT,
    Justification,
    ProofForest,
    congruence_justification,
    rule_justification,
)
from repro.core.terms import App, V
from repro.core.unionfind import UnionFind
from repro.engine import EGraph, EGraphError, Rule, Set, rewrite
from repro.engine.actions import Union as UnionAction

STRATEGIES = ("indexed", "generic", "generic-adhoc")


def check_explanation(egraph, explanation):
    """Replay an explanation against the engine's rule set and union-find.

    Asserts the chain is connected between its declared endpoints and that
    every step is justified: rule steps name a registered rule that can
    assert equalities, congruence steps name a declared function with an
    eq-sorted output, and every step's endpoints are equal *now*.
    """
    uf = egraph.uf
    ids = [explanation.lhs]
    for step in explanation.steps:
        assert step.lhs == ids[-1], "chain is not connected"
        ids.append(step.rhs)
    assert ids[-1] == explanation.rhs, "chain does not reach the endpoint"
    root = uf.find(explanation.lhs)
    assert uf.find(explanation.rhs) == root
    for step in explanation.steps:
        assert uf.find(step.lhs) == root
        assert uf.find(step.rhs) == root
        just = step.justification
        if just.kind == "rule":
            rule = egraph.rules.get(just.name)
            assert rule is not None, f"chain names unknown rule {just.name!r}"
            assert any(
                isinstance(action, (UnionAction, Set)) for action in rule.actions
            ), f"rule {just.name!r} cannot assert equalities"
        elif just.kind == "congruence":
            decl = egraph.decls.get(just.name)
            assert decl is not None, f"chain names unknown function {just.name!r}"
            assert egraph.sorts[decl.out_sort].is_eq_sort
        else:
            assert just.kind == "union", f"unknown justification kind {just.kind!r}"
    return True


# -- the forest itself --------------------------------------------------------


def test_forest_records_and_explains_a_chain():
    forest = ProofForest()
    a, b, c = forest.make_set(), forest.make_set(), forest.make_set()
    forest.record(a, b, rule_justification("r1"))
    forest.record(b, c, rule_justification("r2"))
    steps = forest.explain_path(a, c)
    assert [(s.lhs, s.rhs, s.justification.name) for s in steps] == [
        (a, b, "r1"),
        (b, c, "r2"),
    ]
    # Symmetric query traverses the same edges the other way.
    back = forest.explain_path(c, a)
    assert [(s.lhs, s.rhs) for s in back] == [(c, b), (b, a)]


def test_forest_path_is_minimal_not_insertion_order():
    forest = ProofForest()
    ids = [forest.make_set() for _ in range(5)]
    # Star: everything merged into ids[0] directly.
    for other in ids[1:]:
        forest.record(other, ids[0], EXPLICIT)
    steps = forest.explain_path(ids[3], ids[4])
    assert len(steps) == 2  # through the hub, not through all five nodes


def test_forest_disconnected_returns_none_and_reflexive_is_empty():
    forest = ProofForest()
    a, b = forest.make_set(), forest.make_set()
    assert forest.explain_path(a, b) is None
    assert forest.explain_path(a, a) == []


def test_forest_rerooting_preserves_old_paths():
    forest = ProofForest()
    a, b, c, d = (forest.make_set() for _ in range(4))
    forest.record(a, b, rule_justification("ab"))
    forest.record(c, d, rule_justification("cd"))
    # Joining the two trees re-roots a's tree; the a—b edge must survive.
    forest.record(a, c, rule_justification("ac"))
    names = [s.justification.name for s in forest.explain_path(b, d)]
    assert names == ["ab", "ac", "cd"]


def test_forest_snapshot_restore_is_defensive():
    forest = ProofForest()
    a, b, c = forest.make_set(), forest.make_set(), forest.make_set()
    forest.record(a, b, EXPLICIT)
    snap = forest.snapshot()
    forest.record(b, c, EXPLICIT)
    forest.restore(snap)
    assert forest.explain_path(a, c) is None
    # Mutate after the first restore, then restore the same snapshot again.
    forest.record(a, c, EXPLICIT)
    forest.restore(snap)
    assert forest.explain_path(a, c) is None
    assert len(forest.explain_path(a, b)) == 1


# -- union-find integration (and the restore-aliasing regression) -------------


def test_unionfind_restore_same_snapshot_twice():
    # Regression: restore() used to install the snapshot's lists by
    # reference, so post-restore unions corrupted the saved tuple.
    uf = UnionFind()
    a, b, c = uf.make_set(), uf.make_set(), uf.make_set()
    uf.union(a, b)
    snap = uf.snapshot()
    uf.union(a, c)
    uf.restore(snap)
    assert uf.same(a, b) and not uf.same(a, c)
    uf.union(a, c)  # mutate again after the first restore
    uf.restore(snap)
    assert uf.same(a, b)
    assert not uf.same(a, c)
    assert uf.n_unions == 1


def test_unionfind_restore_twice_with_proofs():
    uf = UnionFind(proofs=True)
    a, b, c = uf.make_set(), uf.make_set(), uf.make_set()
    uf.union(a, b, rule_justification("r"))
    snap = uf.snapshot()
    uf.union(b, c)
    uf.restore(snap)
    uf.union(b, c)
    uf.restore(snap)
    assert uf.proofs.explain_path(a, c) is None
    steps = uf.proofs.explain_path(a, b)
    assert [s.justification for s in steps] == [rule_justification("r")]


def test_unionfind_records_original_ids_not_roots():
    uf = UnionFind(proofs=True)
    a, b, c = uf.make_set(), uf.make_set(), uf.make_set()
    uf.union(a, b)
    # Union through non-root member b: the edge must land on b, keeping
    # every member of the merged class connected in the forest.
    uf.union(b, c)
    assert len(uf.proofs.explain_path(a, c)) == 2


# -- engine explain -----------------------------------------------------------


def num(n):
    return App("Num", n)


def add(a, b):
    return App("Add", a, b)


def math_engine(strategy="indexed", proofs=True):
    eg = EGraph(strategy=strategy, proofs=proofs)
    eg.declare_sort("Math")
    eg.constructor("Num", ("i64",), "Math")
    eg.constructor("Add", ("Math", "Math"), "Math")
    return eg


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_explain_rule_step_names_the_rule(strategy):
    eg = math_engine(strategy)
    eg.add_rewrite(add(V("x"), V("y")), add(V("y"), V("x")), name="comm-add")
    eg.add(add(num(1), num(2)))
    eg.run(5)
    expl = eg.explain(add(num(1), num(2)), add(num(2), num(1)))
    assert [s.justification for s in expl.steps] == [rule_justification("comm-add")]
    check_explanation(eg, expl)


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_explain_congruence_step_names_the_function(strategy):
    eg = EGraph(strategy=strategy)
    eg.declare_sort("V")
    eg.constructor("Leaf", ("i64",), "V")
    eg.constructor("F", ("V",), "V")
    eg.add(App("F", App("Leaf", 1)))
    eg.add(App("F", App("Leaf", 2)))
    eg.union(App("Leaf", 1), App("Leaf", 2))
    eg.rebuild()
    expl = eg.explain(App("F", App("Leaf", 1)), App("F", App("Leaf", 2)))
    assert [s.justification for s in expl.steps] == [congruence_justification("F")]
    check_explanation(eg, expl)
    leaf = eg.explain(App("Leaf", 1), App("Leaf", 2))
    assert [s.justification.kind for s in leaf.steps] == ["union"]
    check_explanation(eg, leaf)


def test_explain_congruence_tower_chain():
    eg = EGraph()
    eg.declare_sort("V")
    eg.constructor("Leaf", ("i64",), "V")
    eg.constructor("F", ("V",), "V")

    def tower(i, height=3):
        term = App("Leaf", i)
        for _ in range(height):
            term = App("F", term)
        return term

    for i in range(4):
        eg.add(tower(i))
    eg.union(App("Leaf", 0), App("Leaf", 1))
    eg.union(App("Leaf", 1), App("Leaf", 2))
    eg.union(App("Leaf", 2), App("Leaf", 3))
    eg.rebuild()
    expl = eg.explain(tower(0), tower(3))
    assert expl.steps, "tower tops need a non-trivial proof"
    assert all(s.justification == congruence_justification("F") for s in expl.steps)
    check_explanation(eg, expl)


def test_explain_mixed_rule_union_chain():
    # comm links the two Add e-nodes by a rule edge; the explicit union
    # attaches Num(9) to whichever of them is the class root.  The chain
    # from the *other* Add node must therefore traverse both edges.
    eg = math_engine()
    eg.add_rewrite(add(V("x"), V("y")), add(V("y"), V("x")), name="comm")
    eg.add(add(num(1), num(2)))
    eg.run(5)
    eg.add(num(9))
    eg.union(add(num(2), num(1)), num(9))
    eg.rebuild()
    chains = [
        eg.explain(add(num(1), num(2)), num(9)),
        eg.explain(add(num(2), num(1)), num(9)),
    ]
    for expl in chains:
        assert expl.steps
        check_explanation(eg, expl)
    kinds = {s.justification.kind for expl in chains for s in expl.steps}
    assert kinds == {"rule", "union"}


def test_explain_survives_push_pop():
    eg = math_engine()
    eg.add(num(1))
    eg.add(num(2))
    eg.union(num(1), num(2))
    eg.push()
    eg.add(num(3))
    eg.union(num(2), num(3))
    inner = eg.explain(num(1), num(3))
    assert inner.steps
    assert all(s.justification.kind == "union" for s in inner.steps)
    check_explanation(eg, inner)
    eg.pop()
    with pytest.raises(EGraphError, match="not in the e-graph|not equal"):
        eg.explain(num(1), num(3))
    outer = eg.explain(num(1), num(2))
    assert [s.justification.kind for s in outer.steps] == ["union"]
    check_explanation(eg, outer)


def test_explain_pop_then_rebuild_uses_fresh_justifications():
    # After a pop, new unions must explain via the new justifications, not
    # stale pre-pop forest state (defensive restore in the forest).
    eg = math_engine()
    eg.add(num(1))
    eg.add(num(2))
    eg.push()
    eg.union(num(1), num(2))
    eg.pop()
    eg.push()
    eg.add_rewrite(add(V("x"), V("y")), add(V("y"), V("x")), name="comm-add")
    eg.add(add(num(1), num(2)))
    eg.run(5)
    expl = eg.explain(add(num(1), num(2)), add(num(2), num(1)))
    assert [s.justification for s in expl.steps] == [rule_justification("comm-add")]
    check_explanation(eg, expl)


def test_explain_rule_identity_survives_rule_replacement():
    eg = math_engine()
    eg.add_rewrite(add(V("x"), V("y")), add(V("y"), V("x")), name="comm")
    eg.add(add(num(1), num(2)))
    eg.run(5)
    first = eg.explain(add(num(1), num(2)), add(num(2), num(1)))
    assert [s.justification.name for s in first.steps] == ["comm"]
    # Replace the rule under the same name; new firings are still "comm",
    # through a freshly compiled executor (epoch bump).
    eg.replace_rule(
        Rule(
            name="comm",
            facts=[App("Add", V("x"), V("y"))],
            actions=[UnionAction(App("Add", V("x"), V("y")), App("Add", V("y"), V("x")))],
        )
    )
    eg.add(add(num(3), num(4)))
    eg.run(5)
    second = eg.explain(add(num(3), num(4)), add(num(4), num(3)))
    assert [s.justification.name for s in second.steps] == ["comm"]
    check_explanation(eg, second)


def test_explain_hashconsed_terms_get_reflexive_chain():
    # Terms whose children were already equal at insert time share one
    # e-node: documented simplification — empty (reflexive) chain.
    eg = math_engine()
    eg.add(num(1))
    eg.add(num(2))
    eg.union(num(1), num(2))
    eg.rebuild()
    eg.add(add(num(1), num(1)))
    eg.add(add(num(2), num(2)))
    expl = eg.explain(add(num(1), num(1)), add(num(2), num(2)))
    assert expl.steps == ()
    check_explanation(eg, expl)


def test_explain_errors():
    eg = math_engine()
    eg.add(num(1))
    eg.add(num(2))
    with pytest.raises(EGraphError, match="not equal"):
        eg.explain(num(1), num(2))
    with pytest.raises(EGraphError, match="not in the e-graph"):
        eg.explain(num(1), num(9))
    with pytest.raises(EGraphError, match="primitive"):
        eg.explain(App("+", 1, 2), App("+", 2, 1))
    disabled = math_engine(proofs=False)
    disabled.add(num(1))
    with pytest.raises(EGraphError, match="proofs are disabled"):
        disabled.explain(num(1), num(1))


def test_proofs_disabled_engine_still_runs():
    eg = math_engine(proofs=False)
    eg.add_rewrite(add(V("x"), V("y")), add(V("y"), V("x")), name="comm")
    eg.add(add(num(1), num(2)))
    eg.run(5)
    assert eg.are_equal(add(num(1), num(2)), add(num(2), num(1)))


# -- justification dataclass --------------------------------------------------


def test_justification_describe():
    assert rule_justification("comm").describe() == "rule comm"
    assert congruence_justification("F").describe() == "congruence F"
    assert EXPLICIT.describe() == "union"
    assert Justification("rule", "r") == rule_justification("r")


# -- the DSL surface ----------------------------------------------------------


def test_dsl_explain_typed_steps():
    from repro import EGraph as DslEGraph
    from repro.dsl import DslError, ExplainStep, i64 as i64_sort

    eg = DslEGraph()
    math = eg.sort("Math")
    num_f = eg.constructor("Num", (i64_sort,), math)
    add_f = eg.constructor("Add", (math, math), math, op="+")
    from repro.dsl import vars_

    x, y = vars_("x y", math)
    eg.register((x + y).to(y + x))
    expr = add_f(num_f(1), num_f(2))
    eg.add(expr)
    eg.run(5)
    expl = eg.explain(expr, add_f(num_f(2), num_f(1)))
    assert expl.sort is math
    assert len(expl) == 1
    step = expl.steps[0]
    assert isinstance(step, ExplainStep)
    assert step.kind == "rule"
    assert step.lhs.sort == "Math" and step.rhs.sort == "Math"
    # The typed chain mirrors the engine chain; replay it there too.
    check_explanation(eg.engine, eg.engine.explain(expr, add_f(num_f(2), num_f(1))))
    with pytest.raises(DslError):
        eg.explain(num_f(1), num_f(2))
    off = DslEGraph(proofs=False)
    m2 = off.sort("M")
    n2 = off.constructor("N", (i64_sort,), m2)
    off.add(n2(1))
    with pytest.raises(DslError, match="disabled"):
        off.explain(n2(1), n2(1))


def test_dsl_explain_congruence_and_union_kinds():
    from repro import EGraph as DslEGraph
    from repro.dsl import i64 as i64_sort

    eg = DslEGraph()
    v = eg.sort("V")
    leaf = eg.constructor("Leaf", (i64_sort,), v)
    f = eg.constructor("F", (v,), v)
    eg.add(f(leaf(1)))
    eg.add(f(leaf(2)))
    eg.union(leaf(1), leaf(2))
    eg.engine.rebuild()
    expl = eg.explain(f(leaf(1)), f(leaf(2)))
    assert [(s.kind, s.name) for s in expl.steps] == [("congruence", "F")]
    assert [s.kind for s in eg.explain(leaf(1), leaf(2)).steps] == ["union"]


# -- exhaustive cross-strategy replay ----------------------------------------


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_every_pair_in_a_saturated_class_explains(strategy):
    eg = math_engine(strategy)
    eg.add_rewrite(add(V("x"), V("y")), add(V("y"), V("x")), name="comm")
    eg.add_rewrite(
        add(add(V("a"), V("b")), V("c")),
        add(V("a"), add(V("b"), V("c"))),
        name="assoc",
    )
    seed = add(add(num(1), num(2)), num(3))
    eg.add(seed)
    eg.run(6)
    variants = [
        seed,
        add(num(3), add(num(1), num(2))),
        add(add(num(2), num(1)), num(3)),
        add(num(1), add(num(2), num(3))),
    ]
    for other in variants[1:]:
        assert eg.are_equal(seed, other)
        expl = eg.explain(seed, other)
        check_explanation(eg, expl)
        # And the reverse direction.
        check_explanation(eg, eg.explain(other, seed))
