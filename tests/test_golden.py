"""Golden-file suite: whole .egg programs diffed against expected output.

Each ``tests/golden/*.egg`` program runs through the frontend on a fresh
engine; the captured output lines must match the sibling ``.expected``
file exactly.  To (re)generate expectations after an intentional output
change, run::

    REPRO_REGEN_GOLDEN=1 python -m pytest tests/test_golden.py

and review the diff before committing.  The examples under ``examples/``
are also executed (through the real CLI) to keep them green, without
pinning their output here.
"""

import os
import pathlib

import pytest

from repro.frontend import Evaluator
from repro.frontend.cli import main as cli_main

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
GOLDEN = sorted(GOLDEN_DIR.glob("*.egg"))
EXAMPLES = sorted((pathlib.Path(__file__).parents[1] / "examples").glob("*.egg"))
REGEN_VAR = "REPRO_REGEN_GOLDEN"


def run_file(path: pathlib.Path) -> str:
    lines = Evaluator().run_program(path.read_text(), str(path))
    return "".join(line + "\n" for line in lines)


def test_suite_is_populated():
    # The harness only has teeth with a real corpus behind it.
    assert len(GOLDEN) >= 6


@pytest.mark.parametrize("path", GOLDEN, ids=lambda path: path.stem)
def test_golden(path):
    actual = run_file(path)
    expected_path = path.with_suffix(".expected")
    if os.environ.get(REGEN_VAR):
        expected_path.write_text(actual)
    assert expected_path.exists(), (
        f"missing {expected_path.name}; run {REGEN_VAR}=1 pytest to create it"
    )
    expected = expected_path.read_text()
    assert actual == expected, (
        f"output of {path.name} diverged from {expected_path.name} "
        f"(set {REGEN_VAR}=1 to regenerate after an intentional change)"
    )


@pytest.mark.parametrize("strategy", ["indexed", "generic", "generic-adhoc"])
@pytest.mark.parametrize("path", GOLDEN, ids=lambda path: path.stem)
def test_golden_strategy_independent(path, strategy):
    """Both join strategies must produce identical program output."""
    lines = Evaluator(strategy=strategy).run_program(path.read_text(), str(path))
    expected_path = path.with_suffix(".expected")
    if expected_path.exists():
        assert "".join(line + "\n" for line in lines) == expected_path.read_text()


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda path: path.stem)
def test_examples_run_through_cli(path, capsys):
    assert cli_main([str(path)]) == 0
    captured = capsys.readouterr()
    assert captured.err == ""
    assert "check: ok" in captured.out
