"""End-to-end smoke client for ``repro-serve``, the e-graph session service.

Spawns the server as a subprocess on an ephemeral port with the shortest-path
program (``examples/path.egg``) preloaded as a warm base, then drives the
whole HTTP surface: health check, session creation (a structural fork of the
base — no disk, no re-run), a second fork, a budgeted run that returns a
partial report, checks and extraction over both the ``.egg`` and JSON
program endpoints, and a clean SIGTERM shutdown.

Run with::

    pip install -e .          # once (see README: Install & run)
    python examples/serve_client.py
"""

import os
import sys

# ``python examples/serve_client.py`` prepends examples/ to sys.path, where
# the sibling ``math.py`` would shadow the stdlib ``math`` module for
# transitive imports (http.client -> email -> random -> math).  Drop that
# entry before anything else is imported.
_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path[:] = [p for p in sys.path if os.path.abspath(p or os.getcwd()) != _HERE]

import http.client  # noqa: E402
import json  # noqa: E402
import re  # noqa: E402
import signal  # noqa: E402
import subprocess  # noqa: E402
import time  # noqa: E402

_REPO = os.path.dirname(_HERE)
_LISTENING = re.compile(r"repro-serve listening on http://([^:]+):(\d+)")


def start_server() -> "tuple[subprocess.Popen, str, int]":
    """Spawn ``repro-serve --port 0`` and scrape the ephemeral port."""
    env = dict(os.environ)
    src = os.path.join(_REPO, "src")
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (src, env.get("PYTHONPATH")) if part
    )
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.server.cli",
            "--port",
            "0",
            "--base",
            f"paths={os.path.join(_HERE, 'path.egg')}",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    assert process.stdout is not None
    deadline = time.monotonic() + 30.0
    while True:
        line = process.stdout.readline()
        if not line:
            raise RuntimeError(
                f"repro-serve exited before listening (code {process.wait()})"
            )
        match = _LISTENING.search(line)
        if match:
            return process, match.group(1), int(match.group(2))
        if time.monotonic() > deadline:  # pragma: no cover - hang guard
            process.kill()
            raise RuntimeError("timed out waiting for the listening line")


def request(host: str, port: int, method: str, path: str, body=None):
    """One JSON request; returns ``(status, decoded body)``."""
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        payload = None if body is None else json.dumps(body).encode()
        connection.request(method, path, body=payload)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def lit(n: int):
    return ["l", ["i64", n]]


def path_term(src: int, dst: int):
    return ["a", "path", [lit(src), lit(dst)]]


def main() -> None:
    process, host, port = start_server()
    try:
        status, body = request(host, port, "GET", "/healthz")
        assert status == 200 and body["ok"], body
        print(f"healthz ok on {host}:{port}")

        status, bases = request(host, port, "GET", "/bases")
        assert status == 200 and bases["bases"][0]["name"] == "paths", bases
        print(f"base preloaded: {bases['bases'][0]}")

        # A session is a structural fork of the saturated base: the shortest
        # paths are already there, no (run ...) needed.
        status, body = request(host, port, "POST", "/sessions", {"base": "paths"})
        assert status == 201, body
        session = body["session"]["id"]
        status, body = request(
            host,
            port,
            "POST",
            f"/sessions/{session}/program",
            {
                "ops": [
                    {"op": "check", "facts": [["=", path_term(1, 4), lit(2)]]},
                    {"op": "extract", "term": path_term(1, 5)},
                ]
            },
        )
        assert status == 200, body
        check, extract = body["results"]
        assert check["ok"] and check["count"] >= 1, check
        assert extract["term"] == "3", extract
        print(f"warm session {session}: path(1,4)=2 checked, path(1,5) -> {extract['term']}")

        # Fork the live session, then diverge: a new edge 5->6 only exists
        # in the fork, and a zero-deadline run returns a clean partial report.
        status, body = request(host, port, "POST", f"/sessions/{session}/fork")
        assert status == 201, body
        fork = body["session"]["id"]
        status, body = request(
            host,
            port,
            "POST",
            f"/sessions/{fork}/egg",
            {"program": "(edge 5 6)\n(run 100)\n(check (= (path 1 6) 4))"},
        )
        assert status == 200, body
        status, body = request(
            host,
            port,
            "POST",
            f"/sessions/{fork}/program",
            {"ops": [{"op": "run", "limit": 100, "deadline_ms": 0}]},
        )
        assert status == 200, body
        report = body["results"][0]["report"]
        assert report["stopped_reason"] == "deadline", report
        assert report["iterations"] == 0, report
        print(f"fork {fork}: diverged with edge 5->6; budgeted run stopped on deadline")

        # The parent never saw the fork's edge.
        status, body = request(
            host,
            port,
            "POST",
            f"/sessions/{session}/program",
            {"ops": [{"op": "check", "facts": [path_term(1, 6)]}]},
        )
        assert status == 200 and not body["results"][0]["ok"], body
        print(f"parent {session}: fork's edge is invisible (isolation holds)")

        status, body = request(host, port, "GET", "/stats")
        stats = body["stats"]
        assert status == 200 and stats["sessions"] == 2, stats
        cache = stats["compile_cache"]
        assert cache["hits"] > 0, cache
        print(f"stats: {stats['sessions']} sessions, compile cache hits={cache['hits']}")

        status, body = request(host, port, "DELETE", f"/sessions/{fork}")
        assert status == 200, body
        status, body = request(host, port, "GET", f"/sessions/{fork}")
        assert status == 404, body
        print(f"fork {fork} deleted; lookup now 404s")
    finally:
        process.send_signal(signal.SIGTERM)
        code = process.wait(timeout=30)
    assert code == 0, f"repro-serve exited with {code}"
    print("ok: server smoke test passed, clean shutdown")


if __name__ == "__main__":
    main()
