"""Union-find (disjoint set) data structure.

This is the equivalence-relation substrate of egglog (Section 3.3 of the
paper): every uninterpreted sort is backed by a set of opaque integer ids and
a union-find that canonicalizes them.  Two ids are equivalent iff they
canonicalize to the same id.

The implementation uses path compression and union by size.  It also records
the set of "dirty" ids displaced by recent unions so the rebuilding
procedure (``repro.engine.rebuild``, Section 4 of the paper) knows which
database rows may need to be re-canonicalized.

With ``proofs=True`` the union-find keeps a :class:`~repro.core.proofs.
ProofForest` sibling in lockstep: every merging union records one
justification edge between the *original* ids the caller passed (never the
compressed roots), so ``explain``-style queries can later recover why two
ids are equal.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from .proofs import EXPLICIT, Justification, ProofForest


class UnionFind:
    """A union-find over dense integer ids ``0..n-1``.

    >>> uf = UnionFind()
    >>> a, b, c = uf.make_set(), uf.make_set(), uf.make_set()
    >>> uf.union(a, b)
    0
    >>> uf.same(a, b)
    True
    >>> uf.same(a, c)
    False
    """

    def __init__(self, *, proofs: bool = False) -> None:
        self._parent: List[int] = []
        self._size: List[int] = []
        # Ids whose canonical representative changed since the last call to
        # ``take_dirty``.  Stored as the *old* (now stale) representatives.
        self._dirty: Set[int] = set()
        self._n_unions = 0
        self.proofs: Optional[ProofForest] = ProofForest() if proofs else None

    def __len__(self) -> int:
        return len(self._parent)

    @property
    def n_unions(self) -> int:
        """Total number of merging unions performed so far."""
        return self._n_unions

    def make_set(self) -> int:
        """Create a fresh singleton equivalence class and return its id."""
        ident = len(self._parent)
        self._parent.append(ident)
        self._size.append(1)
        if self.proofs is not None:
            self.proofs.make_set()
        return ident

    def make_sets(self, count: int) -> List[int]:
        """Create ``count`` fresh singleton classes."""
        return [self.make_set() for _ in range(count)]

    def find(self, ident: int) -> int:
        """Return the canonical representative of ``ident``.

        Uses iterative path compression (halving).
        """
        parent = self._parent
        root = ident
        while parent[root] != root:
            root = parent[root]
        # Path compression.
        while parent[ident] != root:
            ident, parent[ident] = parent[ident], root
        return root

    def same(self, a: int, b: int) -> bool:
        """Return True iff ``a`` and ``b`` are in the same equivalence class."""
        return self.find(a) == self.find(b)

    def is_canonical(self, ident: int) -> bool:
        """Return True iff ``ident`` is its own representative."""
        return self._parent[ident] == ident

    def union(self, a: int, b: int, reason: Optional[Justification] = None) -> int:
        """Merge the classes of ``a`` and ``b``; return the new representative.

        The id that stops being canonical is recorded as dirty so rebuilding
        can repair rows that mention it.  When proofs are enabled, a merging
        union records one justification edge ``a — b`` (between the ids as
        passed, so the proof forest stays connected inside each class);
        ``reason`` defaults to an explicit union.
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        # Union by size: the larger class keeps its representative.
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self._dirty.add(rb)
        self._n_unions += 1
        if self.proofs is not None:
            self.proofs.record(a, b, reason if reason is not None else EXPLICIT)
        return ra

    def union_all(self, ids: Iterable[int], reason: Optional[Justification] = None) -> int:
        """Merge every id in ``ids`` into a single class."""
        ids = list(ids)
        if not ids:
            raise ValueError("union_all requires at least one id")
        root = self.find(ids[0])
        for other in ids[1:]:
            root = self.union(root, other, reason)
        return root

    @property
    def has_dirty(self) -> bool:
        return bool(self._dirty)

    def take_dirty(self) -> Set[int]:
        """Return and clear the set of ids made non-canonical since last call.

        Rebuilding (Section 4) drives its repair loop off this set: while it
        is non-empty, some database rows may mention stale ids.
        """
        dirty = self._dirty
        self._dirty = set()
        return dirty

    # -- snapshots (push/pop support) ----------------------------------------

    def snapshot(self) -> tuple:
        """Capture the full union-find state for a later :meth:`restore`."""
        forest = self.proofs.snapshot() if self.proofs is not None else None
        return (list(self._parent), list(self._size), set(self._dirty), self._n_unions, forest)

    def restore(self, state: tuple) -> None:
        """Reinstall a state captured by :meth:`snapshot`.

        Ids allocated after the snapshot simply cease to exist; callers must
        not use values that leak out of the snapshotted scope.

        Copies defensively: installing the snapshot's own lists by reference
        would let post-restore unions mutate the saved tuple, silently
        corrupting a second restore of the same snapshot.
        """
        parent, size, dirty, n_unions, forest = state
        self._parent = list(parent)
        self._size = list(size)
        self._dirty = set(dirty)
        self._n_unions = n_unions
        if self.proofs is not None and forest is not None:
            self.proofs.restore(forest)

    def class_members(self, ident: int) -> List[int]:
        """Return all ids currently in the same class as ``ident``.

        This is an O(n) scan and intended for debugging, tests, and
        extraction-style post-processing, not for the hot path.
        """
        root = self.find(ident)
        return [i for i in range(len(self._parent)) if self.find(i) == root]

    def n_classes(self) -> int:
        """Number of distinct equivalence classes."""
        return sum(1 for i in range(len(self._parent)) if self._parent[i] == i)
