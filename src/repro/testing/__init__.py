"""Test-support utilities shipped with the package.

Only :mod:`repro.testing.faults` lives here today: named fault-injection
points the durability tests (and operators doing game-day drills) use to
make checkpoints, batches, and snapshot writes fail on demand.  Importing
this package costs nothing at runtime — injection sites are no-ops while
no fault is armed.
"""

from .faults import FAULTS, FaultPlan, InjectedFault, trip

__all__ = ["FAULTS", "FaultPlan", "InjectedFault", "trip"]
