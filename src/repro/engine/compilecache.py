"""Process-level cache of compiled query plans, shared across engines.

PR 5 cached each rule's compiled executor *on the rule object*, which is
the right lifetime for a single engine but the wrong one for a session
service: a hundred sessions forked from one base each carry fresh
``CompiledRule`` objects (snapshot decode builds new ones), so every fork
would recompile every rule's query plan from scratch.

The split that makes sharing sound: a rule's executor has an
**engine-independent** half and an **engine-bound** half.

* The query plan — slot assignment (:func:`~repro.core.compile.assign_slots`)
  plus the compiled search (:class:`~repro.core.compile.CompiledIndexedQuery`
  / :class:`~repro.core.compile.CompiledGenericQuery`) — closes over nothing
  but the query structure and the primitive registry.  ``search`` receives
  the tables per call, so one plan serves any engine that shares the
  registry.  That half lives here, in one process-wide LRU keyed by
  (structural query fingerprint, strategy, registry identity, registry
  version).
* The action program (:func:`~repro.engine.program.compile_actions`) captures
  the engine's tables, declarations, and counters — it stays per-engine,
  rebuilt by each :class:`~repro.engine.program.RuleExec`.

Keying on the *structural* fingerprint (the query's deterministic repr)
rather than the rule name means two sessions — or two differently-named
rules — with identical queries share one plan.  The registry component uses
``id()`` plus the registry's monotone :attr:`~repro.core.builtins
.PrimitiveRegistry.version`: every cache entry strong-references its
registry, so an id cannot be reused while any entry for it is alive, and
registering a new primitive overload bumps the version, orphaning plans
that may have scheduled the old resolution.

Thread safety: the cache itself is lock-protected, and the cached plan
objects are safe to *use* concurrently — their only mutation is the
idempotent, last-write-wins ``_steps_cache`` build inside the compiled
queries (keyed by table arity, value identical for a given key).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Tuple

from ..core.builtins import PrimitiveRegistry
from ..core.compile import CompiledGenericQuery, CompiledIndexedQuery, assign_slots
from ..core.query import Query
from .errors import EGraphError

#: Cache key: (strategy, registry id, registry version, query fingerprint).
PlanKey = Tuple[str, int, int, str]


class CompiledPlan:
    """The engine-independent half of a rule executor (see module docs)."""

    __slots__ = ("slot_of", "slot_names", "n_slots", "query_exec", "registry")

    def __init__(self, query: Query, strategy: str, registry: PrimitiveRegistry) -> None:
        slot_of, slot_names = assign_slots(query)
        self.slot_of = slot_of
        self.slot_names = slot_names
        self.n_slots = len(slot_names)
        if strategy == "indexed":
            self.query_exec: object = CompiledIndexedQuery(
                query, slot_of, self.n_slots, registry
            )
        elif strategy == "generic":
            self.query_exec = CompiledGenericQuery(
                query, slot_of, self.n_slots, registry, use_indexes=True
            )
        elif strategy == "generic-adhoc":
            self.query_exec = CompiledGenericQuery(
                query, slot_of, self.n_slots, registry, use_indexes=False
            )
        else:
            raise EGraphError(f"no compiled executor for strategy {strategy!r}")
        #: Strong reference pinning the registry for this entry's lifetime —
        #: guarantees the ``id(registry)`` component of the key stays unique.
        self.registry = registry


class CompileCacheRegistry:
    """A bounded, thread-safe LRU of :class:`CompiledPlan` objects.

    One instance serves the whole process (module-level :data:`CACHE`);
    separate instances exist only for tests.  ``maxsize`` bounds memory on
    pathological rule churn — real workloads have a few dozen distinct
    queries and never evict.
    """

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self._maxsize = maxsize
        self._lock = threading.Lock()
        self._plans: "OrderedDict[PlanKey, CompiledPlan]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def plan(
        self, query: Query, strategy: str, registry: PrimitiveRegistry
    ) -> CompiledPlan:
        """The shared plan for ``query`` under ``strategy``; compiled on miss.

        Compilation happens outside the lock — two threads missing the same
        key may both compile, but plans for one key are interchangeable and
        the second insert just replaces the first (last-write-wins, no
        corruption).  That keeps an expensive compile from serializing every
        other session's cache hit.
        """
        key: PlanKey = (strategy, id(registry), registry.version, repr(query))
        with self._lock:
            cached = self._plans.get(key)
            if cached is not None:
                self._plans.move_to_end(key)
                self._hits += 1
                return cached
            self._misses += 1
        built = CompiledPlan(query, strategy, registry)
        with self._lock:
            self._plans[key] = built
            self._plans.move_to_end(key)
            while len(self._plans) > self._maxsize:
                self._plans.popitem(last=False)
                self._evictions += 1
        return built

    def stats(self) -> Dict[str, int]:
        """Cache effectiveness counters (also served by ``GET /stats``)."""
        with self._lock:
            return {
                "size": len(self._plans),
                "maxsize": self._maxsize,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }

    def clear(self) -> None:
        """Drop every cached plan and reset the counters (tests/benchmarks)."""
        with self._lock:
            self._plans.clear()
            self._hits = 0
            self._misses = 0
            self._evictions = 0


#: The process-level plan cache every :class:`~repro.engine.program.RuleExec`
#: consults.  Sessions forked from one base share its registry, so their
#: identical rules hit the same entries instead of recompiling per fork.
CACHE = CompileCacheRegistry()
