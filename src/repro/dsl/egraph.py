"""The typed :class:`EGraph` facade — the DSL's entry point.

Wraps an engine :class:`repro.engine.EGraph` (always reachable as
``.engine``, the lowering target and interop escape hatch) and exposes the
handle-based surface:

* declarations return handles — :meth:`sort` -> :class:`~repro.dsl.Sort`,
  :meth:`function` / :meth:`relation` / :meth:`constructor` ->
  :class:`~repro.dsl.Function`;
* :meth:`ruleset` returns first-class :class:`~repro.dsl.Ruleset` objects,
  :meth:`register` takes rules and rewrites built by the DSL;
* :meth:`run` takes an iteration limit *or* schedule combinators and
  returns the engine's :class:`~repro.core.schema.RunReport`;
* :meth:`extract` returns a rich :class:`Extracted` value;
* :meth:`push` / :meth:`pop` / :meth:`scoped` snapshot the engine —
  handles declared inside a popped scope go stale and say so when used.

Every mistake the DSL can catch locally raises a
:class:`~repro.dsl.errors.DslError` subclass whose message includes the
offending declaration site.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Union

from ..core.builtins import PrimitiveRegistry
from ..core.schema import RunReport
from ..core.terms import Term, TermApp, TermLit, TermVar
from ..core.values import Value
from ..engine import EGraph as EngineEGraph
from ..engine.errors import EGraphError
from ..engine.rule import DEFAULT_RULESET
from ..engine.rule import Rule as EngineRule
from ..engine.schedule import Repeat, Run, Saturate, Schedule, Seq
from .errors import (
    ArityError,
    DslError,
    DuplicateDeclarationError,
    SortMismatchError,
    UnboundVariableError,
    UnknownSortError,
)
from .expr import (
    BUILTIN_SORT_HANDLES,
    SUPPORTED_OPERATORS,
    Expr,
    Function,
    Sort,
    SortLike,
    builtin_sort_handle,
    caller_site,
    lift,
)
from .rules import (
    DslRule,
    FactLike,
    RegistrableRule,
    Rewrite,
    Ruleset,
    lower_fact,
)

MergeLike = Union[None, str, object]


@dataclass
class _DslSnapshot:
    """DSL-side bookkeeping saved by :meth:`EGraph.push`.

    The engine snapshots its own state; this captures what lives in the
    DSL layer — handle maps, ruleset rule lists, and each owned sort's
    operator table — so :meth:`EGraph.pop` restores both in lockstep.
    """

    sorts: Dict[str, Sort]
    functions: Dict[str, "Function"]
    rulesets: Dict[str, Ruleset]
    rule_names: Dict[str, List[str]]
    ops: Dict[str, Dict[str, "Function"]]


# eq=False: a generated __eq__ would compare the Expr field, whose own
# ``==`` builds an equality fact instead of returning a bool.
@dataclass(frozen=True, eq=False)
class Extracted:
    """Result of :meth:`EGraph.extract`: the cheapest equivalent term.

    ``term`` is the core term (s-expression ``str()``), ``cost`` its total
    extraction cost, and ``expr`` a typed DSL view rebuilt through the
    declaring handles — ``None`` when the term mixes in symbols the DSL
    cannot type (e.g. primitives applied to bare variables).
    """

    cost: int
    term: Term
    expr: Optional[Expr] = None

    def __str__(self) -> str:
        return str(self.term)


@dataclass(frozen=True)
class ExplainStep:
    """One step of an :class:`Explanation`: ``lhs`` ~ ``rhs`` because of a
    rule firing (``kind == "rule"``), a congruence repair
    (``kind == "congruence"``), or an explicit union (``kind == "union"``).

    ``lhs``/``rhs`` are eq-sorted engine values (e-node ids) and ``name``
    is the rule or function name (empty for explicit unions).
    """

    lhs: Value
    rhs: Value
    kind: str
    name: str = ""

    def __str__(self) -> str:
        return f"{self.kind} {self.name}".rstrip()


@dataclass(frozen=True, eq=False)
class Explanation:
    """Result of :meth:`EGraph.explain`: a minimal justified rewrite chain.

    ``steps`` is connected — each step's ``rhs`` is the next step's ``lhs``
    — and empty when both expressions denote the very same e-node.
    """

    sort: Sort
    lhs: Value
    rhs: Value
    steps: "tuple[ExplainStep, ...]"

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self) -> Iterator[ExplainStep]:
        return iter(self.steps)

    def __str__(self) -> str:
        return " ; ".join(str(step) for step in self.steps) or "reflexivity"


class EGraph:
    """A typed egglog engine: the blessed embedded surface.

    ``strategy`` and ``registry`` pass through to the underlying
    :class:`repro.engine.EGraph`, which remains available as ``.engine``
    for the string-level API the DSL lowers onto.
    """

    def __init__(
        self,
        *,
        strategy: str = "indexed",
        registry: Optional[PrimitiveRegistry] = None,
        proofs: bool = True,
    ) -> None:
        self.engine = EngineEGraph(
            strategy=strategy, registry=registry, proofs=proofs
        )
        self._sorts: Dict[str, Sort] = dict(BUILTIN_SORT_HANDLES)
        self._functions: Dict[str, Function] = {}
        self._rulesets: Dict[str, Ruleset] = {}
        #: DSL-side bookkeeping snapshots, kept in lockstep with the
        #: engine's push/pop stack.
        self._snapshots: List[_DslSnapshot] = []

    # -- declarations ---------------------------------------------------------

    def sort(self, name: str) -> Sort:
        """Declare an uninterpreted (eq) sort; returns its handle."""
        if name in self.engine.sorts:
            prior = self._sorts.get(name)
            where = (
                f" (at {prior.decl_site})"
                if prior is not None and prior.owner is self
                else ""
            )
            raise DuplicateDeclarationError(f"sort {name!r} already declared{where}")
        site = caller_site()
        self.engine.declare_sort(name)
        handle = Sort(name, is_eq_sort=True, owner=self, decl_site=site)
        self._sorts[name] = handle
        return handle

    def _resolve_sort(self, sort: SortLike, context: str) -> Sort:
        if isinstance(sort, Sort):
            if sort.owner is not None and sort.owner is not self:
                raise UnknownSortError(
                    f"{context}: sort {sort.name!r} belongs to a different EGraph "
                    f"(declared at {sort.decl_site})"
                )
            if sort.name not in self.engine.sorts:
                raise UnknownSortError(
                    f"{context}: sort {sort.name!r} is no longer declared on this "
                    f"EGraph (declared at {sort.decl_site}; was it popped?)"
                )
            return sort
        if isinstance(sort, str):
            handle = self._sorts.get(sort)
            if handle is None or sort not in self.engine.sorts:
                known = ", ".join(sorted(self.engine.sorts))
                raise UnknownSortError(
                    f"{context}: unknown sort {sort!r} (known sorts: {known})"
                )
            return handle
        raise UnknownSortError(
            f"{context}: expected a Sort handle or sort name, got {sort!r}"
        )

    def function(
        self,
        name: str,
        arg_sorts: Sequence[SortLike],
        out_sort: SortLike,
        *,
        merge: MergeLike = None,
        default: object = None,
        cost: int = 1,
        unextractable: bool = False,
        constructor: bool = False,
        op: Optional[str] = None,
    ) -> Function:
        """Declare a function; returns a callable, sort-checking handle.

        ``op`` optionally binds an operator symbol (``"*"``, ``"+"``,
        ``"neg"``, ...) on the *first argument's* sort, so expressions of
        that sort can use the Python operator: ``x * y`` builds
        ``Mul(x, y)`` after ``eg.function("Mul", (Math, Math), Math,
        op="*")``.
        """
        site = caller_site()
        context = f"declaration of {name!r}"
        args = tuple(self._resolve_sort(s, context) for s in arg_sorts)
        out = self._resolve_sort(out_sort, context)
        if op is not None:
            # Validate the operator binding BEFORE declaring: a failure here
            # must not leave the function half-declared on the engine.
            if not args:
                raise DslError(
                    f"{context}: op={op!r} needs at least one argument sort to "
                    f"bind the operator on"
                )
            target = args[0]
            if not target.is_eq_sort or target.owner is not self:
                # Primitive handles are shared process-wide and their
                # operators always dispatch to the built-in primitives —
                # a binding there would be both global and unreachable.
                raise DslError(
                    f"{context}: op={op!r} must bind on an eq-sort declared on "
                    f"this EGraph; {target.name!r} is "
                    f"{'a built-in primitive sort' if not target.is_eq_sort else 'foreign'}"
                )
            if op not in SUPPORTED_OPERATORS:
                raise DslError(
                    f"{context}: cannot bind operator {op!r}; supported "
                    f"operators: {', '.join(sorted(SUPPORTED_OPERATORS))}"
                )
            existing = target.operator(op)
            if existing is not None:
                raise DuplicateDeclarationError(
                    f"{context}: sort {target.name!r} already binds operator "
                    f"{op!r} to {existing.name!r} (declared at "
                    f"{existing.decl_site})"
                )
        try:
            decl = self.engine.function(
                name,
                tuple(s.name for s in args),
                out.name,
                merge=merge,
                default=default,
                cost=cost,
                unextractable=unextractable,
                is_datatype_constructor=constructor,
                decl_site=site,
            )
        except EGraphError as exc:
            if "already declared" in str(exc) or "collides" in str(exc):
                raise DuplicateDeclarationError(str(exc)) from None
            raise DslError(str(exc)) from None
        handle = Function(self, decl, args, out, site)
        self._functions[name] = handle
        if op is not None:
            args[0].bind_operator(op, handle)
        return handle

    def relation(self, name: str, *arg_sorts: SortLike) -> Function:
        """Declare a Datalog-style relation (Unit output); returns its handle."""
        return self.function(name, arg_sorts, builtin_sort_handle("Unit"))

    def constructor(
        self,
        name: str,
        arg_sorts: Sequence[SortLike],
        out_sort: SortLike,
        *,
        cost: int = 1,
        op: Optional[str] = None,
    ) -> Function:
        """Declare a datatype constructor (eq-sorted output, union merge)."""
        out = self._resolve_sort(out_sort, f"declaration of {name!r}")
        if not out.is_eq_sort:
            raise SortMismatchError(
                f"constructor {name!r} needs an eq-sort output, got "
                f"{out.name!r}"
            )
        return self.function(
            name, arg_sorts, out, cost=cost, constructor=True, op=op
        )

    def function_handle(self, name: str) -> Function:
        """The handle previously declared under ``name`` (for lookups)."""
        handle = self._functions.get(name)
        if handle is None or self.engine.decls.get(name) is not handle.decl:
            raise DslError(f"no live function {name!r} declared on this EGraph")
        return handle

    # -- rules and rulesets ---------------------------------------------------

    def ruleset(self, name: str = DEFAULT_RULESET) -> Ruleset:
        """The first-class ruleset handle for ``name`` (created on demand)."""
        rs = self._rulesets.get(name)
        if rs is None:
            rs = Ruleset(self, name, caller_site())
            self._rulesets[name] = rs
            self.engine.rulesets.setdefault(name, [])
        return rs

    def register(
        self,
        *items: RegistrableRule,
        ruleset: Union[Ruleset, str, None] = None,
    ) -> List[str]:
        """Register rules/rewrites (default ruleset unless given); names back."""
        if isinstance(ruleset, Ruleset):
            return ruleset.register(*items)  # type: ignore[return-value]
        name = ruleset if ruleset is not None else DEFAULT_RULESET
        # Always route through the Ruleset handle so its rule_names
        # bookkeeping stays accurate (including for the default ruleset).
        return self.ruleset(name).register(*items)  # type: ignore[return-value]

    def _register_items(
        self,
        items: Sequence[RegistrableRule],
        *,
        ruleset: str,
        default_name: Optional[str] = None,
    ) -> List[str]:
        names: List[str] = []
        for index, item in enumerate(items):
            label = default_name if default_name and len(items) == 1 else (
                f"{default_name}#{index}" if default_name else None
            )
            if isinstance(item, (DslRule, Rewrite)):
                engine_rules = item.to_engine(ruleset=ruleset, name=label)
            elif isinstance(item, EngineRule):
                item.ruleset = ruleset
                engine_rules = [item]
            else:
                raise DslError(
                    f"cannot register {item!r}: expected a rule "
                    f"(rule(...).when(...).then(...)), a rewrite (lhs.to(rhs)), "
                    f"or an engine Rule"
                )
            try:
                names.extend(self.engine.add_rule(r) for r in engine_rules)
            except EGraphError as exc:
                raise DslError(str(exc)) from None
        return names

    # -- ground facts ---------------------------------------------------------

    def _require_ground(self, expr: Expr, what: str) -> Term:
        if not isinstance(expr, Expr):
            raise DslError(f"{what} needs a DSL expression, got {expr!r}")
        free = sorted(set(expr.variables()))
        if free:
            raise UnboundVariableError(
                f"{what} needs a ground expression, but {expr!r} has free "
                f"variable(s): {', '.join(free)}"
            )
        return expr.term

    def add(self, expr: Expr) -> Value:
        """Insert a ground expression (and sub-terms); returns its value."""
        return self.engine.add(self._require_ground(expr, "add()"))

    def union(self, lhs: Expr, rhs: object) -> Value:
        """Assert that two ground eq-sorted expressions are equal."""
        if not isinstance(lhs, Expr):
            raise DslError(f"union() needs a DSL expression, got {lhs!r}")
        if not lhs.sort.is_eq_sort:
            raise SortMismatchError(
                f"union() needs eq-sorted expressions, got sort {lhs.sort.name!r}"
            )
        rhs_expr = lift(rhs, lhs.sort, "union right-hand side")
        return self.engine.union(
            self._require_ground(lhs, "union()"),
            self._require_ground(rhs_expr, "union()"),
        )

    def lookup(self, expr: Expr) -> Optional[Value]:
        """Pure lookup of a ground expression; None if absent."""
        return self.engine.lookup(self._require_ground(expr, "lookup()"))

    def are_equal(self, lhs: Expr, rhs: Expr) -> bool:
        """True iff both ground expressions are present and equal."""
        return self.engine.are_equal(
            self._require_ground(lhs, "are_equal()"),
            self._require_ground(rhs, "are_equal()"),
        )

    # -- running --------------------------------------------------------------

    def run(
        self,
        *what: Union[int, Schedule],
        limit: Optional[int] = None,
        ruleset: Union[Ruleset, str, None] = None,
        deadline_s: Optional[float] = None,
        max_nodes: Optional[int] = None,
    ) -> RunReport:
        """Run the engine; returns the engine's :class:`RunReport`.

        Three spellings::

            eg.run()                      # one iteration, default ruleset
            eg.run(10, ruleset=opt)       # up to 10 iterations of one ruleset
            eg.run(seq(opt.saturate(),    # schedule combinators
                       fold.run(2)))

        ``deadline_s`` / ``max_nodes`` budget the run (any spelling): the
        scheduler checks them between iterations and a budgeted run returns
        a clean partial report with ``stopped_reason`` set instead of
        running on.
        """
        schedules = tuple(
            w for w in what if isinstance(w, (Run, Seq, Repeat, Saturate))
        )
        if what and len(schedules) == len(what):
            if limit is not None or ruleset is not None:
                raise DslError(
                    "run(): pass either schedules or limit/ruleset, not both"
                )
            return self.engine.run_schedule(
                *schedules, deadline_s=deadline_s, max_nodes=max_nodes
            )
        if len(what) > 1:
            raise DslError(
                f"run() takes one iteration limit or schedules, got {what!r}"
            )
        if what and not isinstance(what[0], int):
            raise DslError(
                f"run() expects an iteration limit or schedule combinators, "
                f"got {what[0]!r}"
            )
        if what and limit is not None:
            raise DslError(
                "run(): pass the iteration limit positionally or as limit=, "
                "not both"
            )
        iterations = limit if limit is not None else (what[0] if what else 1)
        assert isinstance(iterations, int)
        name = ruleset.name if isinstance(ruleset, Ruleset) else (
            ruleset if ruleset is not None else DEFAULT_RULESET
        )
        return self.engine.run(
            iterations, ruleset=name, deadline_s=deadline_s, max_nodes=max_nodes
        )

    # -- queries --------------------------------------------------------------

    def check(self, *facts: FactLike) -> int:
        """Require at least one match for the facts; returns the match count.

        Raises :class:`repro.engine.errors.CheckError` on zero matches.
        """
        if not facts:
            raise DslError("check() needs at least one fact")
        return self.engine.check(*(lower_fact(f) for f in facts))

    def query(self, *facts: FactLike) -> List[Dict[str, Value]]:
        """All substitutions matching the facts (variable name -> value)."""
        return self.engine.query(*(lower_fact(f) for f in facts))

    # -- extraction -----------------------------------------------------------

    def extract(self, expr: Expr) -> Extracted:
        """The cheapest term equivalent to ``expr`` with its cost."""
        term = self._require_ground(expr, "extract()")
        cost, best = self.engine.extract_with_cost(term)
        try:
            typed: Optional[Expr] = self.expr_of(best)
        except DslError:
            typed = None
        return Extracted(cost, best, typed)

    # -- explanation ----------------------------------------------------------

    def explain(self, lhs: Expr, rhs: object) -> Explanation:
        """Why are two ground eq-sorted expressions equal?

        Returns a typed :class:`Explanation` whose steps name the rule,
        congruence function, or explicit union that merged their endpoints.
        Raises :class:`DslError` when proofs are disabled, an expression is
        absent from the e-graph, or the two are not equal.
        """
        if not isinstance(lhs, Expr):
            raise DslError(f"explain() needs a DSL expression, got {lhs!r}")
        if not lhs.sort.is_eq_sort:
            raise SortMismatchError(
                f"explain() needs eq-sorted expressions, got sort {lhs.sort.name!r}"
            )
        rhs_expr = lift(rhs, lhs.sort, "explain right-hand side")
        try:
            raw = self.engine.explain(
                self._require_ground(lhs, "explain()"),
                self._require_ground(rhs_expr, "explain()"),
            )
        except EGraphError as error:
            raise DslError(str(error)) from error
        sort_name = raw.sort
        steps = tuple(
            ExplainStep(
                Value(sort_name, step.lhs),
                Value(sort_name, step.rhs),
                step.justification.kind,
                step.justification.name,
            )
            for step in raw.steps
        )
        return Explanation(
            self._resolve_sort(sort_name, "explain()"),
            Value(sort_name, raw.lhs),
            Value(sort_name, raw.rhs),
            steps,
        )

    def expr_of(self, term: Term, expected: Optional[Sort] = None) -> Expr:
        """Re-type a core term through this egraph's handles.

        The inverse of lowering: applications are checked against their
        declarations (arity, literal sorts), variables adopt the expected
        sort from their position.  Raises :class:`DslError` when the term
        cannot be typed (unknown symbol, bare variable with no expected
        sort, sort clash).
        """
        if isinstance(term, TermLit):
            have = builtin_sort_handle(term.value.sort)
            if expected is not None and expected.name != have.name:
                raise SortMismatchError(
                    f"literal {term.value!r} has sort {have.name!r} where "
                    f"{expected.name!r} was expected"
                )
            return Expr(term, have)
        if isinstance(term, TermVar):
            if expected is None:
                raise DslError(
                    f"cannot infer the sort of bare variable {term.name!r}"
                )
            return Expr(term, expected)
        if isinstance(term, TermApp):
            handle = self._functions.get(term.func)
            if handle is not None and self.engine.decls.get(term.func) is handle.decl:
                if len(term.args) != handle.arity:
                    raise ArityError(
                        f"{term.func} expects {handle.arity} argument(s) — "
                        f"{handle.signature()} — got {len(term.args)} "
                        f"[declared at {handle.decl_site}]"
                    )
                for arg, sort in zip(term.args, handle.arg_sorts):
                    self.expr_of(arg, expected=sort)
                result = Expr(term, handle.out_sort)
            elif term.func in self.engine.registry:
                arg_sorts = tuple(
                    self.expr_of(a).sort.name for a in term.args
                )
                out_name = self.engine.registry.result_sort(term.func, arg_sorts)
                if out_name is None:
                    raise SortMismatchError(
                        f"primitive {term.func!r} is not defined on sorts "
                        f"{arg_sorts!r}"
                    )
                result = Expr(term, builtin_sort_handle(out_name))
            else:
                raise DslError(
                    f"unknown symbol {term.func!r}: neither a declared function "
                    f"nor a primitive on this EGraph"
                )
            if expected is not None and expected.name != result.sort.name:
                raise SortMismatchError(
                    f"{term.func} produces sort {result.sort.name!r} where "
                    f"{expected.name!r} was expected"
                )
            return result
        raise DslError(f"cannot type {term!r}")

    # -- snapshots ------------------------------------------------------------

    def push(self) -> int:
        """Snapshot the engine state; returns the new stack depth."""
        depth = self.engine.push()
        self._snapshots.append(
            _DslSnapshot(
                sorts=dict(self._sorts),
                functions=dict(self._functions),
                rulesets=dict(self._rulesets),
                rule_names={
                    name: list(rs.rule_names) for name, rs in self._rulesets.items()
                },
                ops={
                    name: dict(sort._ops)
                    for name, sort in self._sorts.items()
                    if sort.owner is self
                },
            )
        )
        return depth

    def pop(self, count: int = 1) -> int:
        """Restore the latest snapshot(s); returns the remaining depth.

        DSL bookkeeping (handle maps, ruleset rule lists, operator
        bindings) rolls back alongside the engine.  Handles declared since
        the matching :meth:`push` go *stale*: using them afterwards raises
        a precise :class:`~repro.dsl.errors.StaleHandleError` rather than
        corrupting the restored state.
        """
        try:
            depth = self.engine.pop(count)
        except EGraphError as exc:
            raise DslError(str(exc)) from None
        if count > len(self._snapshots):
            # The engine was pushed directly (eg.engine.push()) without the
            # DSL seeing it; the engine state is authoritative, and stale
            # handles still self-detect via declaration identity.
            self._snapshots.clear()
            return depth
        snap = self._snapshots[-count]
        del self._snapshots[-count:]
        self._sorts = snap.sorts
        self._functions = snap.functions
        self._rulesets = snap.rulesets
        for name, names in snap.rule_names.items():
            self._rulesets[name].rule_names[:] = names
        for name, ops in snap.ops.items():
            sort_ops = self._sorts[name]._ops
            sort_ops.clear()
            sort_ops.update(ops)
        return depth

    @contextmanager
    def scoped(self) -> Iterator["EGraph"]:
        """``with eg.scoped(): ...`` — push on entry, pop on exit."""
        self.push()
        try:
            yield self
        finally:
            self.pop()

    # -- persistence ----------------------------------------------------------

    def save(self, path: str) -> dict:
        """Snapshot the engine plus the DSL's handle metadata to a file.

        Sort declaration sites and operator bindings travel in the
        document's ``surfaces.dsl`` section so a later
        :meth:`from_snapshot` / :meth:`load` re-hydrates handles with their
        original provenance and ``x * y`` keeps dispatching.  Functions
        whose merge/default is an arbitrary Python callable are not
        serializable and raise :class:`DslError` naming the declaration.
        """
        from ..serialize import SnapshotError

        try:
            return self.engine.save(path, surfaces=self._dsl_surfaces())
        except SnapshotError as error:
            raise DslError(str(error)) from error

    def _dsl_surfaces(self) -> dict:
        """The ``surfaces.dsl`` section: handle provenance that the engine
        itself doesn't carry (declaration sites, operator bindings)."""
        return {
            "dsl": {
                "sorts": [
                    [sort.name, sort.decl_site]
                    for sort in self._sorts.values()
                    if sort.owner is self
                ],
                "operators": [
                    [sort.name, op, fn.name]
                    for sort in self._sorts.values()
                    if sort.owner is self
                    for op, fn in sort._ops.items()
                ],
            }
        }

    def fork(self, *, strategy: Optional[str] = None) -> "EGraph":
        """An independent copy of this EGraph — engine state and handles.

        The engine round-trips through an in-memory snapshot document (no
        file I/O) and the fork re-hydrates *fresh* handles from it: the two
        EGraphs share no mutable state, so declaring sorts, binding
        operators, or running rules on one never affects the other.  The
        primitive registry is intentionally shared, keeping the
        process-level compiled-plan cache hot across forks.

        Handles from the parent do not work on the fork (they belong to a
        different EGraph and say so) — look up the fork's own via
        :meth:`function_handle` / :meth:`ruleset`.  Functions whose
        merge/default is an arbitrary Python callable cannot round-trip and
        raise :class:`DslError`, same as :meth:`save`.
        """
        from ..serialize import SnapshotError, engine_document, engine_from_document

        try:
            document = engine_document(self.engine, surfaces=self._dsl_surfaces())
            engine = engine_from_document(
                document,
                strategy=strategy if strategy is not None else self.engine.strategy,
                registry=self.engine.registry,
            )
        except SnapshotError as error:
            raise DslError(str(error)) from error
        forked = type(self).__new__(type(self))
        forked.engine = engine
        forked._hydrate(document)
        return forked

    @classmethod
    def from_snapshot(
        cls,
        path: str,
        *,
        strategy: Optional[str] = None,
        registry: Optional[PrimitiveRegistry] = None,
    ) -> "EGraph":
        """Construct a typed EGraph from a snapshot file.

        Handles (sorts, functions, rulesets, operator bindings) are
        re-hydrated from the engine state plus the snapshot's
        ``surfaces.dsl`` section; snapshots written by other surfaces load
        fine, with declaration sites defaulting to ``"<snapshot>"``.
        """
        from ..serialize import SnapshotError, load_engine

        try:
            engine, document = load_engine(path, strategy=strategy, registry=registry)
        except SnapshotError as error:
            raise DslError(str(error)) from error
        self = cls.__new__(cls)
        self.engine = engine
        self._hydrate(document)
        return self

    def load(self, path: str, *, strategy: Optional[str] = None) -> None:
        """Replace this EGraph's state — engine and handles — in place.

        Handles declared before the load go stale (their declarations are
        gone) and say so when used, exactly as after :meth:`pop`.  The
        engine keeps its configured join strategy unless ``strategy``
        overrides it.
        """
        from ..serialize import SnapshotError

        try:
            document = self.engine.load(path, strategy=strategy)
        except SnapshotError as error:
            raise DslError(str(error)) from error
        self._hydrate(document)

    def _hydrate(self, document: dict) -> None:
        """Rebuild handle maps from the engine's loaded state.

        The ``surfaces.dsl`` section (when present) supplies declaration
        sites and operator bindings; everything else derives from the
        engine: one :class:`Sort` handle per declared eq-sort, one
        :class:`Function` handle per declaration, one :class:`Ruleset`
        handle per engine ruleset.
        """
        surfaces = document.get("surfaces")
        dsl = surfaces.get("dsl", {}) if isinstance(surfaces, dict) else {}
        sites = {
            entry[0]: entry[1]
            for entry in dsl.get("sorts", [])
            if isinstance(entry, list) and len(entry) == 2
        }
        self._sorts = dict(BUILTIN_SORT_HANDLES)
        self._functions = {}
        self._rulesets = {}
        self._snapshots = []
        for name, sort in self.engine.sorts.items():
            if name in self._sorts:
                continue
            self._sorts[name] = Sort(
                name,
                is_eq_sort=sort.is_eq_sort,
                owner=self,
                decl_site=str(sites.get(name, "<snapshot>")),
            )
        for name, decl in self.engine.decls.items():
            args = tuple(self._handle_of(s) for s in decl.arg_sorts)
            out = self._handle_of(decl.out_sort)
            self._functions[name] = Function(
                self, decl, args, out, decl.decl_site or "<snapshot>"
            )
        for entry in dsl.get("operators", []):
            if not isinstance(entry, list) or len(entry) != 3:
                continue
            sort_name, op, fn_name = entry
            sort = self._sorts.get(sort_name)
            fn = self._functions.get(fn_name)
            if sort is None or sort.owner is not self or fn is None:
                continue
            if op in SUPPORTED_OPERATORS and sort.operator(op) is None:
                sort.bind_operator(op, fn)
        for name, rule_names in self.engine.rulesets.items():
            rs = Ruleset(self, name, "<snapshot>")
            rs.rule_names[:] = rule_names
            self._rulesets[name] = rs

    def _handle_of(self, sort_name: str) -> Sort:
        handle = self._sorts.get(sort_name)
        return handle if handle is not None else builtin_sort_handle(sort_name)

    # -- introspection --------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Engine-size snapshot (rows per table, classes, unions, rules)."""
        return self.engine.stats()

    def __repr__(self) -> str:
        n_sorts = sum(1 for s in self._sorts.values() if s.owner is self)
        return (
            f"<dsl.EGraph: {n_sorts} sort(s), {len(self.engine.decls)} "
            f"function(s), {len(self.engine.rules)} rule(s), "
            f"strategy={self.engine.strategy!r}>"
        )
