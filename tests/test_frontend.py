"""Frontend tests: reader, parser shapes, evaluator, errors, and the CLI.

The error tests pin the contract the issue asks for: malformed .egg input
raises :class:`repro.errors.ReproError` subclasses carrying 1-based
line/column positions.
"""

import pytest

from repro.core.values import boolean, f64, i64, rational, string
from repro.errors import ReproError
from repro.frontend import (
    ArityError,
    EvalError,
    Evaluator,
    FrontendError,
    Literal,
    ParseError,
    SList,
    SortError,
    Symbol,
    UnboundSymbolError,
    UnknownCommandError,
    format_term,
    format_value,
    parse_sexps,
    run_program,
)
from repro.frontend.cli import main as cli_main


def fail_with(text, error_type):
    with pytest.raises(error_type) as info:
        run_program(text, "test.egg")
    error = info.value
    assert isinstance(error, ReproError)
    assert isinstance(error, FrontendError)
    assert error.line is not None and error.col is not None
    assert f"{error.line}:{error.col}" in str(error)
    return error


# -- reader -------------------------------------------------------------------


def test_reader_literals_and_symbols():
    nodes = parse_sexps('(f 1 -2 3.5 "hi" true false x)')
    (call,) = nodes
    assert isinstance(call, SList)
    head, *args = call.items
    assert isinstance(head, Symbol) and head.name == "f"
    assert [a.value for a in args[:6] if isinstance(a, Literal)] == [
        i64(1), i64(-2), f64(3.5), string("hi"), boolean(True), boolean(False),
    ]
    assert isinstance(args[6], Symbol) and args[6].name == "x"


def test_reader_tracks_positions():
    first, second = parse_sexps("(a)\n  (b c)")
    assert (first.loc.line, first.loc.col) == (1, 1)
    assert (second.loc.line, second.loc.col) == (2, 3)
    inner = second.items[0]
    assert (inner.loc.line, inner.loc.col) == (2, 4)


def test_reader_comments_and_brackets():
    nodes = parse_sexps("; leading comment\n(a [b c] ; trailing\n d)")
    (call,) = nodes
    assert len(call.items) == 3
    assert isinstance(call.items[1], SList)


def test_reader_string_escapes():
    (lit,) = parse_sexps(r'"a\"b\\c\nd"')
    assert lit.value == string('a"b\\c\nd')
    assert format_value(lit.value) == r'"a\"b\\c\nd"'


def test_unbalanced_open_paren():
    error = fail_with("(relation r (i64))\n(foo (bar", ParseError)
    assert error.line == 2 and error.col == 6
    assert "unclosed" in str(error)


def test_stray_close_paren():
    error = fail_with("(sort S))", ParseError)
    assert "unmatched" in str(error)
    assert error.line == 1 and error.col == 9


def test_mismatched_delimiters():
    fail_with("(sort S]", ParseError)


def test_unterminated_string():
    error = fail_with('(check (= "abc', ParseError)
    assert "unterminated" in str(error)


def test_bad_string_escape():
    fail_with(r'(check (= "a\qb" "x"))', ParseError)


# -- parser shapes ------------------------------------------------------------


def test_unknown_command():
    error = fail_with("(sort S)\n  (frobnicate 1 2)", UnknownCommandError)
    assert error.line == 2 and error.col == 4
    assert "frobnicate" in str(error)


def test_unknown_option_rejected():
    fail_with("(function f (i64) i64 :frobnicate 3)", ParseError)


def test_option_without_value_rejected():
    fail_with("(function f (i64) i64 :merge)", ParseError)


def test_wrong_positional_count():
    fail_with("(sort)", ParseError)
    fail_with("(sort A B)", ParseError)
    fail_with("(extract)", ParseError)
    fail_with("(run)", ParseError)


def test_run_limit_must_be_positive_integer():
    fail_with("(run 0)", ParseError)
    fail_with('(run "lots")', ParseError)


def test_check_needs_a_fact():
    fail_with("(check)", ParseError)


def test_top_level_non_list_rejected():
    fail_with("42", ParseError)


# -- evaluator errors ---------------------------------------------------------


def test_arity_mismatch():
    error = fail_with("(relation edge (i64 i64))\n(edge 1)", ArityError)
    assert error.line == 2
    assert "expects 2 argument(s), got 1" in str(error)


def test_arity_mismatch_inside_rule():
    fail_with(
        "(relation edge (i64 i64))\n(rule ((edge x)) ((edge x x)))", ArityError
    )


def test_undeclared_sort():
    error = fail_with("(function f (NoSuch) i64)", SortError)
    assert "NoSuch" in str(error)
    fail_with("(relation r (Missing))", SortError)
    fail_with("(datatype D (Mk Missing))", SortError)


def test_literal_sort_mismatch():
    error = fail_with('(relation r (i64))\n(r "oops")', SortError)
    assert "expected a i64" in str(error)


def test_literal_coercion_int_to_f64_and_rational():
    lines = run_program(
        "(function f (f64) f64)\n(set (f 1) 2.5)\n(check (= (f 1.0) 2.5))\n"
        "(function g (Rational) Rational)\n(set (g 1) (rational 3 2))\n"
        "(check (= (g (rational 1 1)) (rational 3 2)))"
    )
    assert lines == ["check: ok (1 match(es))", "check: ok (1 match(es))"]


def test_unbound_symbol_in_ground_context():
    error = fail_with("(let a b)", UnboundSymbolError)
    assert "'b'" in str(error)
    fail_with("(extract nope)", UnboundSymbolError)


def test_unknown_function_in_expression():
    fail_with("(check (nosuchfn 1))", UnboundSymbolError)


def test_duplicate_global_rejected():
    fail_with("(let a 1)\n(let a 2)", EvalError)


def test_check_failure_has_location():
    error = fail_with("(relation r (i64))\n(check (r 1))", EvalError)
    assert error.line == 2
    assert "check failed" in str(error)


def test_rewrite_unbound_rhs_variable():
    fail_with("(sort S)\n(function f (S) S)\n(rewrite (f x) (f y))", EvalError)


def test_birewrite_checks_both_directions():
    # x appears only on the lhs, so the reversed direction is unbound.
    fail_with(
        "(sort S)\n(function f (S S) S)\n(function g (S) S)\n"
        "(birewrite (f x y) (g y))",
        EvalError,
    )


def test_merge_expression_must_be_primitive():
    fail_with(
        "(function f (i64) i64)\n(function g (i64) i64 :merge (f old))", EvalError
    )
    fail_with("(function f (i64) i64 :merge (min old wrong))", EvalError)


def test_default_expression_must_be_ground():
    fail_with("(function f (i64) i64 :default (+ x 1))", EvalError)


def test_pop_without_push():
    fail_with("(pop)", EvalError)
    fail_with("(push)\n(pop 2)", EvalError)


def test_set_on_primitive_rejected():
    fail_with("(set (+ 1 2) 3)", EvalError)


def test_unknown_ruleset_reported_with_location():
    error = fail_with("(run 1 :ruleset nope)", EvalError)
    assert "nope" in str(error)


# -- evaluator behavior -------------------------------------------------------


def test_function_default_used_on_lookup():
    lines = run_program(
        "(function count (String) i64 :default 0)\n"
        "(let c (count \"k\"))\n(check (= (count \"k\") 0))"
    )
    assert lines == ["check: ok (1 match(es))"]


def test_merge_expression_max():
    lines = run_program(
        "(function best (String) i64 :merge (max old new))\n"
        '(set (best "a") 1)\n(set (best "a") 5)\n(set (best "a") 3)\n'
        '(check (= (best "a") 5))'
    )
    assert lines == ["check: ok (1 match(es))"]


def test_delete_removes_row():
    evaluator = Evaluator()
    evaluator.run_program(
        "(relation r (i64))\n(r 1)\n(check (r 1))\n(delete (r 1))"
    )
    with pytest.raises(EvalError):
        evaluator.run_program("(check (r 1))")


def test_push_pop_restores_globals_and_rules():
    evaluator = Evaluator()
    evaluator.run_program(
        "(datatype N (Z) (S N))\n(push)\n(let one (S (Z)))\n(pop)"
    )
    assert "one" not in evaluator.globals
    assert not evaluator.egraph.rules or True
    # Rules added inside the scope are gone too:
    evaluator.run_program("(push)\n(rewrite (S x) x)\n(pop)")
    assert evaluator.egraph.rules == {}


def test_rulesets_run_independently():
    lines = run_program(
        "(relation r (i64))\n(relation s (i64))\n(r 1)\n"
        "(rule ((r x)) ((s x)) :ruleset aux)\n"
        "(run 5)\n(run 5 :ruleset aux)\n(check (s 1))"
    )
    assert lines[-1] == "check: ok (1 match(es))"


def test_datatype_costs_drive_extraction():
    lines = run_program(
        "(datatype E (Cheap) (Costly :cost 10))\n"
        "(union (Cheap) (Costly))\n(extract (Costly))"
    )
    assert lines == ["extract: (Cheap) (cost 1)"]


def test_panic_action():
    from repro.engine.errors import EGraphPanic

    # The panic surfaces as a located frontend error, chained to the engine's.
    error = fail_with(
        '(relation r (i64))\n(r 1)\n(rule ((r x)) ((panic "boom")))\n(run 1)',
        EvalError,
    )
    assert "boom" in str(error)
    assert isinstance(error.__cause__, EGraphPanic)


def test_format_term_round_trips_through_reader():
    lines = run_program(
        '(datatype M (Num i64) (Str String) (Pair M M))\n'
        '(let p (Pair (Num -3) (Str "a\\"b")))\n(extract p)'
    )
    assert lines == ['extract: (Pair (Num -3) (Str "a\\"b")) (cost 3)']
    # And the printed term parses back cleanly.
    (reparsed,) = parse_sexps('(Pair (Num -3) (Str "a\\"b"))')
    assert isinstance(reparsed, SList)


def test_format_value_rational_and_unit():
    assert format_value(rational(7, 2)) == "(rational 7 2)"
    from repro.core.values import UNIT_VALUE

    assert format_value(UNIT_VALUE) == "()"
    from repro.core.terms import App, L

    assert format_term(App("f", L(1), L("s"))) == '(f 1 "s")'


# -- CLI ----------------------------------------------------------------------


def test_cli_runs_file(tmp_path, capsys):
    program = tmp_path / "ok.egg"
    program.write_text("(relation r (i64))\n(r 7)\n(check (r 7))\n")
    assert cli_main([str(program)]) == 0
    captured = capsys.readouterr()
    assert "check: ok (1 match(es))" in captured.out


def test_cli_reports_error_with_position(tmp_path, capsys):
    program = tmp_path / "bad.egg"
    program.write_text("(sort S)\n(frobnicate)\n")
    assert cli_main([str(program)]) == 1
    captured = capsys.readouterr()
    assert f"{program}:2:2" in captured.err
    assert "frobnicate" in captured.err


def test_cli_missing_file(capsys):
    assert cli_main(["/no/such/file.egg"]) == 1
    assert "error:" in capsys.readouterr().err


def test_cli_stats_flag(tmp_path, capsys):
    program = tmp_path / "ok.egg"
    program.write_text("(relation r (i64))\n(r 1)\n(r 2)\n")
    assert cli_main(["--stats", str(program)]) == 0
    assert "r=2" in capsys.readouterr().out


def test_cli_stats_reports_rule_matches_and_phase_timings(tmp_path, capsys):
    program = tmp_path / "ok.egg"
    program.write_text(
        "(relation e (i64 i64))\n(e 1 2)\n(e 2 3)\n(relation p (i64 i64))\n"
        "(rule ((e x y)) ((p x y)) :name copy)\n(run 3)\n"
    )
    assert cli_main(["--stats", str(program)]) == 0
    out = capsys.readouterr().out
    assert "stats: phases: search" in out and "rebuild" in out
    assert "stats: rule matches: copy=2" in out


def test_cli_generic_strategy(tmp_path, capsys):
    program = tmp_path / "ok.egg"
    program.write_text(
        "(relation e (i64 i64))\n(e 1 2)\n(e 2 3)\n(relation p (i64 i64))\n"
        "(rule ((e x y) (e y z)) ((p x z)))\n(run 5)\n(check (p 1 3))\n"
    )
    assert cli_main(["--strategy", "generic", str(program)]) == 0
    assert "check: ok" in capsys.readouterr().out


# -- per-sort literal parsing / coercion (core/values.py) ---------------------


def test_parse_literal_per_sort():
    from fractions import Fraction

    from repro.core.values import (
        BOOL,
        F64,
        I64,
        RATIONAL,
        STRING,
        UNIT,
        UNIT_VALUE,
        parse_literal,
    )

    assert parse_literal(I64, "42") == i64(42)
    assert parse_literal(I64, "0x10") == i64(16)
    assert parse_literal(F64, "2.5") == f64(2.5)
    assert parse_literal(BOOL, "true") == boolean(True)
    assert parse_literal(BOOL, "false") == boolean(False)
    assert parse_literal(STRING, "hi") == string("hi")
    assert parse_literal(RATIONAL, "3/4").data == Fraction(3, 4)
    assert parse_literal(UNIT, "") == UNIT_VALUE
    with pytest.raises(ValueError):
        parse_literal(BOOL, "maybe")
    with pytest.raises(ValueError):
        parse_literal("NoSuchSort", "1")


def test_coerce_literal_widens_but_never_narrows():
    from repro.core.values import F64, I64, RATIONAL, coerce_literal

    assert coerce_literal(i64(3), F64) == f64(3.0)
    assert coerce_literal(i64(3), RATIONAL) == rational(3)
    assert coerce_literal(i64(3), I64) == i64(3)
    assert coerce_literal(f64(3.0), I64) is None       # no narrowing
    assert coerce_literal(string("3"), I64) is None    # no cross-kind guessing
    assert coerce_literal(i64(3), "SomeEqSort") is None


# -- review regressions -------------------------------------------------------


def test_set_value_coerced_to_output_sort():
    # An i64 literal in output position widens to the declared f64/Rational,
    # so a later merge over mixed writes cannot crash on mismatched sorts.
    lines = run_program(
        "(function h (i64) f64 :merge (min old new))\n"
        "(set (h 1) 2.5)\n(set (h 1) 2)\n(check (= (h 1) 2.0))"
    )
    assert lines == ["check: ok (1 match(es))"]
    # Inside rule actions too:
    lines = run_program(
        "(relation r (i64))\n(function p (i64) f64)\n"
        "(rule ((r x)) ((set (p x) 1)))\n(r 7)\n(run 2)\n(check (= (p 7) 1.0))"
    )
    assert lines[-1] == "check: ok (1 match(es))"
    # And a non-coercible output is rejected with a location:
    fail_with('(function q (i64) i64)\n(set (q 1) "no")', SortError)


def test_default_coerced_to_output_sort():
    lines = run_program(
        "(function d (i64) f64 :default 0)\n"
        "(let probe (d 1))\n(check (= (d 1) 0.0))"
    )
    assert lines == ["check: ok (1 match(es))"]
    fail_with('(function e (i64) i64 :default "no")', SortError)


def test_merge_old_new_not_shadowed_by_globals():
    # A global named `old` must not capture the reserved merge variable.
    lines = run_program(
        "(let old 1)\n(let new 2)\n"
        "(function f (i64) i64 :merge (max old new))\n"
        "(set (f 0) 5)\n(set (f 0) 3)\n(check (= (f 0) 5))"
    )
    assert lines == ["check: ok (1 match(es))"]


def test_run_program_returns_only_this_calls_lines():
    evaluator = Evaluator()
    first = evaluator.run_program("(check (= 1 1))")
    second = evaluator.run_program("(check (= 2 2))")
    assert first == ["check: ok (1 match(es))"]
    assert second == ["check: ok (1 match(es))"]
    assert evaluator.lines == first + second  # full transcript still kept


def test_sexp_literal_str_escapes_strings():
    (lit,) = parse_sexps(r'"a\"b"')
    assert str(lit) == r'"a\"b"'


# -- reader robustness (fuzz) -------------------------------------------------


def test_huge_integer_literal_is_a_parse_error():
    # CPython caps str->int conversion; the reader must surface the cap as
    # a located ParseError, not leak the bare ValueError.
    import sys

    digits = sys.int_info.default_max_str_digits + 100
    with pytest.raises(ParseError) as exc:
        parse_sexps("(f %s)" % ("9" * digits))
    assert "integer literal too large" in str(exc.value)
    assert f"{digits} digits" in str(exc.value)
    # Just under the cap still parses as a literal.
    ok_digits = sys.get_int_max_str_digits() - 1
    (node,) = parse_sexps("1".ljust(ok_digits, "0"))
    assert isinstance(node, Literal)


def _structure(node):
    if isinstance(node, SList):
        return ("list", tuple(_structure(item) for item in node.items))
    if isinstance(node, Literal):
        return ("lit", node.value)
    return ("sym", node.name)


try:
    from hypothesis import given, settings, strategies as st
except ImportError:  # pragma: no cover - hypothesis is in the dev toolchain
    pass
else:

    @given(st.text(max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_fuzz_reader_total_on_arbitrary_text(text):
        # The reader is total: any input either parses or raises ParseError
        # (never IndexError/ValueError/RecursionError), and every error
        # carries a location.
        try:
            parse_sexps(text)
        except ParseError as exc:
            assert exc.loc is not None
            assert exc.loc.line >= 1 and exc.loc.col >= 1

    _atom_texts = st.one_of(
        st.integers(min_value=-(2**70), max_value=2**70).map(str),
        st.from_regex(r"[a-zA-Z+*/<>=_.!?-][a-zA-Z0-9+*/<>=_.!?-]{0,8}", fullmatch=True),
        st.sampled_from(["true", "false", "3.5", "-0.25", "1e-3", '"hi"', '"a\\nb"']),
    )

    _sexp_texts = st.recursive(
        _atom_texts,
        lambda inner: st.lists(inner, max_size=5).map(
            lambda items: "(" + " ".join(items) + ")"
        ),
        max_leaves=25,
    )

    @given(st.lists(_sexp_texts, max_size=6))
    @settings(max_examples=75, deadline=None)
    def test_fuzz_reader_round_trips_well_formed_programs(forms):
        text = "\n".join(forms)
        nodes = parse_sexps(text)
        assert len(nodes) == len(forms)
        # Re-rendering each node and re-parsing preserves the structure.
        rendered = " ".join(str(node) for node in nodes)
        again = parse_sexps(rendered)
        assert [_structure(n) for n in again] == [_structure(n) for n in nodes]
