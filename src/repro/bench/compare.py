"""Bench regression gate: compare fresh BENCH_*.json against committed ones.

``python -m repro.bench.compare NEW_DIR [--against DIR] [--tolerance 1.5]``

For every ``BENCH_<name>.json`` present in both directories and measured
with the same workload parameters, the median ``run_s`` of each shared
variant is compared: the gate fails when a fresh median exceeds the
committed median by more than the tolerance factor.  Semantic drift
(different ``matches``/``iterations``/``saturated``) also fails — the
numbers are only comparable when the engine did the same work, and a PR
that legitimately changes workload semantics must refresh the committed
BENCH files in the same change.

Readers are tolerant of schema v1 documents (no ``run_s_stats``); see
:func:`repro.bench.runner.median_run_s`.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional

from .runner import median_run_s

#: Per-variant fields that must agree for run times to be comparable.
SEMANTIC_FIELDS = ("matches", "iterations", "saturated")

#: Committed medians below this are unusable as a regression baseline: the
#: ratio ``new / old`` degenerates (division by ~zero), so the gate demands
#: a re-measured committed file instead of silently passing.
MIN_BASELINE_S = 1e-9


def compare_documents(
    committed: Dict[str, object],
    fresh: Dict[str, object],
    tolerance: float,
) -> List[str]:
    """Problems found comparing one workload's documents (empty = pass)."""
    name = fresh.get("name", "?")
    problems: List[str] = []
    if committed.get("params") != fresh.get("params"):
        return [
            f"{name}: workload parameters changed "
            f"({committed.get('params')} -> {fresh.get('params')}); "
            f"refresh the committed BENCH file in this change"
        ]
    committed_variants = committed.get("variants")
    fresh_variants = fresh.get("variants")
    if not isinstance(committed_variants, dict) or not isinstance(fresh_variants, dict):
        return [f"{name}: malformed document (no variants block)"]
    # Every committed variant must still be measured — otherwise a variant
    # rename/removal would make the gate pass vacuously (new variants in
    # the fresh run are fine; they land on the next refresh).
    missing = sorted(set(committed_variants) - set(fresh_variants))
    if missing:
        problems.append(
            f"{name}: variant(s) {', '.join(missing)} missing from the fresh "
            f"run; refresh the committed BENCH file if this is intentional"
        )
    for variant in sorted(set(committed_variants) & set(fresh_variants)):
        old = committed_variants[variant]
        new = fresh_variants[variant]
        for field in SEMANTIC_FIELDS:
            if old.get(field) != new.get(field):
                problems.append(
                    f"{name}/{variant}: {field} changed "
                    f"({old.get(field)} -> {new.get(field)}); run times are "
                    f"not comparable — refresh the committed BENCH file"
                )
                break
        else:
            old_s = median_run_s(old)
            new_s = median_run_s(new)
            if old_s < MIN_BASELINE_S:
                problems.append(
                    f"{name}/{variant}: committed median run_s is "
                    f"zero/near-zero ({old_s!r}s) — no regression ratio "
                    f"exists; re-measure and refresh the committed BENCH file"
                )
            elif new_s > old_s * tolerance:
                problems.append(
                    f"{name}/{variant}: median run_s regressed "
                    f"{new_s / old_s:.2f}x ({old_s * 1000:.1f}ms -> "
                    f"{new_s * 1000:.1f}ms, tolerance {tolerance:.2f}x)"
                )
    # Cross-version context: BENCH documents stamp the engine version that
    # measured them (schema v2+); a failing comparison across different
    # versions often means the committed files predate an intentional
    # change and need a refresh, not that the engine regressed.
    old_version = committed.get("version")
    new_version = fresh.get("version")
    if problems and old_version != new_version:
        problems.append(
            f"{name}: note: committed file was measured by version "
            f"{old_version or 'unknown'}, fresh run by "
            f"{new_version or 'unknown'} — if the failures above reflect an "
            f"intentional change, refresh the committed BENCH files"
        )
    return problems


def compare_dirs(
    new_dir: Path,
    against_dir: Path,
    *,
    tolerance: float = 1.5,
    log: Callable[[str], None] = print,
) -> int:
    """Compare every matching BENCH file; returns a process exit code."""
    fresh_paths = sorted(new_dir.glob("BENCH_*.json"))
    if not fresh_paths:
        log(f"error: no BENCH_*.json files in {new_dir}")
        return 1
    compared = 0
    failures: List[str] = []
    for fresh_path in fresh_paths:
        committed_path = against_dir / fresh_path.name
        if not committed_path.exists():
            log(f"note: {fresh_path.name} has no committed counterpart; skipping")
            continue
        fresh = json.loads(fresh_path.read_text())
        committed = json.loads(committed_path.read_text())
        problems = compare_documents(committed, fresh, tolerance)
        compared += 1
        if problems:
            failures.extend(problems)
            for problem in problems:
                log(f"FAIL {problem}")
        else:
            summary = ", ".join(
                f"{variant}={median_run_s(entry) * 1000:.1f}ms"
                for variant, entry in fresh["variants"].items()
            )
            log(f"ok   {fresh['name']}: {summary}")
    if compared == 0:
        log("error: nothing to compare (no overlapping BENCH files)")
        return 1
    if failures:
        log(f"{len(failures)} regression problem(s) across {compared} workload(s)")
        return 1
    log(f"all {compared} workload(s) within {tolerance:.2f}x of committed medians")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.compare",
        description="Fail when fresh BENCH medians regress past committed ones.",
    )
    parser.add_argument("new_dir", metavar="NEW_DIR", help="directory of fresh BENCH_*.json")
    parser.add_argument(
        "--against",
        default=".",
        metavar="DIR",
        help="directory of committed BENCH_*.json (default: current directory)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=1.5,
        metavar="X",
        help="allowed slowdown factor before failing (default: 1.5)",
    )
    args = parser.parse_args(argv)
    if args.tolerance <= 0:
        print("error: --tolerance must be positive", file=sys.stderr)
        return 1
    return compare_dirs(
        Path(args.new_dir), Path(args.against), tolerance=args.tolerance
    )


if __name__ == "__main__":
    sys.exit(main())
