"""Diagnostics for the embedded DSL.

Every mistake the DSL catches is reported *before* the engine runs —
ideally at the line that made it — and the message carries the declaration
site of the handle involved (``declared at file:line``), so a wrong call in
one module points back at the ``eg.function(...)`` in another.

All errors derive from :class:`DslError`, which itself derives from the
package-wide :class:`repro.errors.ReproError`, so embedders catching engine
errors catch DSL errors too.
"""

from __future__ import annotations

from ..errors import ReproError


class DslError(ReproError):
    """Base class for all embedded-DSL errors."""


class UnknownSortError(DslError):
    """A declaration referenced a sort this engine has never seen.

    Raised for misspelled sort names and for :class:`~repro.dsl.Sort`
    handles that belong to a *different* ``EGraph`` instance.
    """


class SortMismatchError(DslError):
    """An expression of one sort was used where another sort was expected."""


class ArityError(DslError):
    """A function handle was called with the wrong number of arguments."""


class UnboundVariableError(DslError):
    """A rule's right-hand side used a variable its body never binds."""


class DuplicateDeclarationError(DslError):
    """A sort, function, or operator was declared twice under one name."""


class StaleHandleError(DslError):
    """A handle outlived its declaration (e.g. the declaring push was popped)."""
