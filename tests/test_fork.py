"""Fork and budget tests: the session service's engine-level foundations.

``EGraph.fork()`` (engine and DSL surfaces) must produce *deeply* isolated
copies — no shared tables, union-find, rulesets, or handle state — while
intentionally sharing the primitive registry so the process-level compiled
plan cache stays hot across forks.  Run budgets (``deadline_s`` /
``max_nodes``) must stop the scheduler cleanly *between* iterations with a
partial report whose ``stopped_reason`` names the exhausted budget, and a
budget-stopped run must never claim saturation.
"""

import pytest

from repro import EGraph as DslEGraph
from repro.core.terms import App, V
from repro.dsl import UnknownSortError, i64, vars_
from repro.engine import EGraph, Rule
from repro.engine.actions import Expr as ActExpr
from repro.engine.budget import STOP_DEADLINE, STOP_MAX_NODES, Budget
from repro.engine.compilecache import CACHE
from repro.engine.schedule import Run, Saturate, Seq


def chain_engine(n=6):
    """edge/path transitive closure over an n-edge chain."""
    eg = EGraph()
    eg.relation("edge", ("i64", "i64"))
    eg.relation("path", ("i64", "i64"))
    eg.add_rules(
        Rule(name="base", facts=[App("edge", V("x"), V("y"))],
             actions=[ActExpr(App("path", V("x"), V("y")))]),
        Rule(name="trans",
             facts=[App("path", V("x"), V("y")), App("edge", V("y"), V("z"))],
             actions=[ActExpr(App("path", V("x"), V("z")))]),
    )
    for i in range(1, n + 1):
        eg.add(App("edge", i, i + 1))
    return eg


# ---------------------------------------------------------------------------
# Engine-level fork
# ---------------------------------------------------------------------------


def test_engine_fork_is_deeply_isolated():
    parent = chain_engine()
    child = parent.fork()
    # No shared mutable engine state.
    assert child is not parent
    assert child.tables is not parent.tables
    for name in parent.tables:
        assert child.tables[name] is not parent.tables[name]
    assert child.uf is not parent.uf
    # Running the child to saturation leaves the parent untouched.
    child.run(100)
    assert child.check(App("path", 1, 7)) == 1
    with pytest.raises(Exception):
        parent.check(App("path", 1, 7))
    assert parent.node_count() == 6
    # And vice versa: new facts in the parent never appear in the child.
    parent.add(App("edge", 100, 200))
    assert child.lookup(App("edge", 100, 200)) is None


def test_engine_fork_carries_run_state_forward():
    parent = chain_engine()
    parent.run(2)
    mid = parent.fork()
    parent.run(100)
    # The fork resumes from the partial state, not from scratch: closure
    # over a 6-edge chain takes 6 iterations cold, fewer after 2 are done.
    resumed = mid.run(100)
    assert resumed.saturated and resumed.iterations < 6
    assert mid.check(App("path", 1, 7)) == parent.check(App("path", 1, 7)) == 1


def test_engine_fork_shares_registry_and_plan_cache():
    parent = chain_engine()
    child = parent.fork()
    assert child.registry is parent.registry
    CACHE.clear()
    parent.run(100)
    stats = CACHE.stats()
    assert stats["misses"] >= 2 and stats["hits"] == 0
    # The fork compiles nothing new: same rules, same registry -> cache hits.
    child.run(100)
    after = CACHE.stats()
    assert after["misses"] == stats["misses"]
    assert after["hits"] >= 2


def test_engine_fork_matches_document_round_trip_byte_for_byte():
    # fork() is a structural copy, but it must be indistinguishable from the
    # slow path: serialize the parent, decode it into a fresh engine.  Pin
    # that equivalence at the byte level, for a partial (mid-run) state.
    from repro.serialize.snapshot import dumps_document, engine_document

    parent = chain_engine()
    parent.run(2)
    before = dumps_document(engine_document(parent))
    child = parent.fork()
    assert dumps_document(engine_document(child)) == before
    # Forking and then running the fork leaves the parent's bytes intact.
    child.run(100)
    assert dumps_document(engine_document(parent)) == before


def test_engine_fork_can_switch_strategy():
    parent = chain_engine()
    child = parent.fork(strategy="generic")
    child.run(100)
    assert child.check(App("path", 1, 7)) == 1
    assert parent.strategy == "indexed" and child.strategy == "generic"


# ---------------------------------------------------------------------------
# DSL-level fork
# ---------------------------------------------------------------------------


def dsl_math():
    eg = DslEGraph()
    math = eg.sort("Math")
    num = eg.constructor("Num", (i64,), math)
    add = eg.constructor("Add", (math, math), math, op="+")
    a, b = vars_("a b", math)
    eg.register((a + b).to(b + a, name="comm"))
    eg.add(num(1) + num(2))
    return eg, math, num, add


def test_dsl_fork_rehydrates_fresh_handles():
    eg, math, num, add = dsl_math()
    fork = eg.fork()
    # The fork answers through its own re-hydrated handles...
    fnum = fork.function_handle("Num")
    fork.run(5)
    assert fork.are_equal(fnum(1) + fnum(2), fnum(2) + fnum(1))
    # ...and the parent — which never ran — is untouched.
    assert not eg.are_equal(num(1) + num(2), num(2) + num(1))
    # Parent handles are rejected where ownership is checked: declaring
    # on the fork with the parent's sort handle names the foreign owner.
    with pytest.raises(UnknownSortError, match="different EGraph"):
        fork.function("Neg", (math,), math)


def test_dsl_fork_is_isolated_both_ways():
    eg, math, num, add = dsl_math()
    fork = eg.fork()
    fork.run(5)
    assert eg.engine.timestamp < fork.engine.timestamp
    # Declarations after the fork point stay on their own side.
    fork.relation("seen", i64)
    assert "seen" not in eg.engine.decls
    eg.relation("only-parent", i64)
    assert "only-parent" not in fork.engine.decls
    # Parent keeps working normally after the fork mutates.
    eg.run(5)
    assert str(eg.extract(num(1) + num(2)).expr) in (
        "Add(Num(1), Num(2))", "Add(Num(2), Num(1))"
    )


def test_dsl_fork_operator_bindings_survive():
    eg, math, num, add = dsl_math()
    fork = eg.fork()
    fork_math = fork._sorts["Math"]
    # Fresh handle state: operator table is rebuilt, not aliased.
    assert fork_math._ops is not math._ops
    fx, fy = vars_("x y", fork_math)
    assert repr(fx + fy) == "Add(x, y)"


# ---------------------------------------------------------------------------
# Budgets
# ---------------------------------------------------------------------------


def test_budget_of_returns_none_when_unset():
    assert Budget.of(deadline_s=None, max_nodes=None) is None
    assert Budget.of(deadline_s=1.0, max_nodes=None) is not None


def test_budget_rejects_negative_caps():
    with pytest.raises(Exception):
        Budget(deadline_s=-1.0)
    with pytest.raises(Exception):
        Budget(max_nodes=-1)


def test_zero_deadline_stops_before_first_iteration():
    eg = chain_engine()
    report = eg.run(100, deadline_s=0.0)
    assert report.iterations == 0
    assert report.stopped_reason == STOP_DEADLINE
    assert not report.saturated
    assert eg.node_count() == 6  # nothing derived


def test_max_nodes_yields_partial_then_resumable_run():
    eg = chain_engine()
    partial = eg.run(100, max_nodes=10)
    assert partial.stopped_reason == STOP_MAX_NODES
    assert 0 < partial.iterations < 6
    assert not partial.saturated
    assert eg.check(App("path", 1, 2)) == 1
    # The budget is checked between iterations, so one iteration may
    # overshoot the cap — but the database is still a sound partial state.
    assert eg.node_count() >= 10
    # An unbudgeted run picks up exactly where the stopped one left off.
    rest = eg.run(100)
    assert rest.saturated and rest.stopped_reason == ""
    assert eg.check(App("path", 1, 7)) == 1


def test_zero_max_nodes_stops_everything():
    eg = chain_engine()
    report = eg.run(100, max_nodes=0)
    assert report.iterations == 0 and report.stopped_reason == STOP_MAX_NODES


def test_budget_stops_inside_schedules():
    eg = chain_engine()
    report = eg.run_schedule(Seq((Saturate((Run(1),)), Run(5))), max_nodes=0)
    assert report.stopped_reason == STOP_MAX_NODES
    assert report.iterations == 0
    # A saturate pass cut short by a budget must not report saturation.
    assert not report.saturated


def test_budget_report_summary_names_the_reason():
    eg = chain_engine()
    report = eg.run(100, max_nodes=0)
    assert "stopped: max-nodes" in report.summary()


def test_dsl_run_accepts_budgets():
    eg, math, num, add = dsl_math()
    report = eg.run(100, max_nodes=0)
    assert report.stopped_reason == STOP_MAX_NODES
    report = eg.run(100, deadline_s=60.0)
    assert report.stopped_reason == "" and report.saturated
