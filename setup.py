"""Legacy setuptools shim.

All metadata lives in ``pyproject.toml``; this file only enables editable
installs (``pip install -e . --no-use-pep517``) in environments without the
``wheel`` package, where PEP 660 editable builds are unavailable.
"""

from setuptools import setup

setup()
