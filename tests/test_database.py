"""Functional database: rows, timestamps, deltas, and lazy indexes."""

from repro.core.database import Table
from repro.core.schema import FunctionDecl
from repro.core.values import UNIT, UNIT_VALUE, i64


def make_table(name="edge", arity=2, out=UNIT):
    return Table(FunctionDecl(name, tuple("i64" for _ in range(arity)), out))


def key(*nums):
    return tuple(i64(n) for n in nums)


def test_put_get_remove_roundtrip():
    table = make_table()
    assert len(table) == 0
    table.put(key(1, 2), UNIT_VALUE, timestamp=0)
    assert len(table) == 1
    assert key(1, 2) in table
    assert table.get(key(1, 2)) == UNIT_VALUE
    assert table.get(key(2, 1)) is None
    removed = table.remove(key(1, 2))
    assert removed is not None and removed.value == UNIT_VALUE
    assert table.remove(key(1, 2)) is None
    assert len(table) == 0


def test_timestamps_are_stored_and_overwritten():
    table = make_table("f", 1, "i64")
    table.put(key(1), i64(10), timestamp=0)
    assert table.get_row(key(1)).timestamp == 0
    table.put(key(1), i64(20), timestamp=3)
    row = table.get_row(key(1))
    assert row.timestamp == 3 and row.value == i64(20)


def test_new_keys_is_an_inclusive_timestamp_filter():
    table = make_table()
    table.put(key(1, 2), UNIT_VALUE, timestamp=0)
    table.put(key(2, 3), UNIT_VALUE, timestamp=1)
    table.put(key(3, 4), UNIT_VALUE, timestamp=2)
    assert set(table.new_keys(0)) == {key(1, 2), key(2, 3), key(3, 4)}
    assert set(table.new_keys(1)) == {key(2, 3), key(3, 4)}
    assert table.new_keys(2) == [key(3, 4)]
    assert table.new_keys(3) == []


def test_index_groups_by_projection_and_covers_output_column():
    table = make_table("f", 2, "i64")
    table.put(key(1, 2), i64(10), 0)
    table.put(key(1, 3), i64(10), 0)
    table.put(key(2, 3), i64(20), 0)
    by_first = table.index((0,))
    assert set(by_first[(i64(1),)]) == {key(1, 2), key(1, 3)}
    assert list(by_first[(i64(2),)]) == [key(2, 3)]
    # Column `arity` is the output.
    by_out = table.index((2,))
    assert set(by_out[(i64(10),)]) == {key(1, 2), key(1, 3)}
    column = table.column_values(1)
    assert set(column[i64(3)]) == {key(1, 3), key(2, 3)}


def test_new_keys_handles_updates_removals_and_compaction():
    table = make_table("f", 1, "i64")
    # Many overwrites of the same key trigger log compaction without
    # corrupting the delta.
    for ts in range(300):
        table.put(key(1), i64(ts), ts)
    table.put(key(2), i64(0), 299)
    table.put(key(3), i64(0), 300)
    table.remove(key(3))
    assert set(table.new_keys(299)) == {key(1), key(2)}
    assert table.new_keys(301) == []
    # Out-of-order timestamps degrade gracefully to the scan path.
    table.put(key(4), i64(0), 5)
    assert set(table.new_keys(299)) == {key(1), key(2)}
    assert key(4) in set(table.new_keys(0))


def test_index_is_maintained_incrementally_on_write():
    table = make_table()
    table.put(key(1, 2), UNIT_VALUE, 0)
    first = table.index((0,))
    # The index is a live structure: the same object absorbs later writes.
    assert table.index((0,)) is first
    table.put(key(5, 6), UNIT_VALUE, 1)
    assert table.index((0,)) is first
    assert (i64(5),) in first
    table.remove(key(5, 6))
    assert (i64(5),) not in first
    # Overwriting an output updates projections that cover the output column.
    out_table = make_table("f", 1, "i64")
    out_table.put(key(1), i64(10), 0)
    by_out = out_table.index((1,))
    out_table.put(key(1), i64(20), 1)
    assert (i64(10),) not in by_out and set(by_out[(i64(20),)]) == {key(1)}


def test_rows_and_tuples_iteration():
    table = make_table("f", 1, "i64")
    table.put(key(7), i64(70), 4)
    assert list(table.rows()) == [(key(7), i64(70), 4)]
    assert list(table.tuples()) == [(i64(7), i64(70))]
