"""Server bench: warm-base session forking versus cold program loads.

The service's reason to exist is that forking a session from a warm base —
an in-memory snapshot decode that reuses the base's primitive registry and
therefore the process-level compiled-plan cache — is much cheaper than
rebuilding the same e-graph from source.  This bench pins that claim as a
``BENCH_server.json`` the regression gate can diff:

* ``fork-warm`` — one :class:`~repro.session.SessionManager` holds a
  saturated ``tc_chain`` base; the timed loop forks N sessions from it and
  answers one run + one check on each.
* ``cold-load`` — the timed loop creates N empty sessions and feeds each
  the full ``.egg`` program (parse, declare, insert, saturate), then
  answers the same run + check.

Both variants end every session in the identical saturated state and
answer the identical query, so the run-time delta is purely the serving
path.  The document shape matches :mod:`repro.bench.runner`'s v2 schema —
``run_s_stats`` medians, semantic fields per variant — so
``repro.bench.compare`` gates it like any engine workload.
"""

from __future__ import annotations

import statistics
import sys
import time
from typing import Callable, Dict, List, Tuple

from .._version import package_version
from ..session import SessionManager
from .runner import SCHEMA, _run_s_stats

#: Workload name: the document lands in ``BENCH_server.json``.
SERVER_BENCH_NAME = "server"

_BASE = "tc_chain"


def _chain_program(n: int) -> str:
    """Transitive closure over an ``n``-node chain, facts only (no run)."""
    lines = [
        "(relation edge (i64 i64))",
        "(relation path (i64 i64))",
        '(rule ((edge x y)) ((path x y)) :name "base")',
        '(rule ((path x y) (edge y z)) ((path x z)) :name "trans")',
    ]
    lines.extend(f"(edge {i} {i + 1})" for i in range(1, n))
    return "\n".join(lines)


def _observe(session, n: int) -> Tuple[int, int, bool]:
    """The per-session query both variants answer: saturate + end-to-end check."""
    results = session.run_program(
        [
            {"op": "run", "limit": 4 * n},
            {
                "op": "check",
                "facts": [["a", "path", [["l", ["i64", 1]], ["l", ["i64", n]]]]],
            },
        ]
    )
    report = results[0]["report"]
    if not results[1]["ok"]:  # pragma: no cover - both paths saturate
        raise AssertionError(f"path(1, {n}) missing after run")
    return report["iterations"], report["matches"], report["saturated"]


def _fork_warm(n: int, sessions: int, strategy: str) -> Dict[str, object]:
    """One timed pass: N forks from a single pre-saturated base."""
    manager = SessionManager(strategy=strategy, max_sessions=sessions + 1)
    start = time.perf_counter()
    manager.add_base_from_program(_BASE, _chain_program(n) + f"\n(run {4 * n})")
    setup_s = time.perf_counter() - start
    iterations = matches = 0
    saturated = True
    start = time.perf_counter()
    for _ in range(sessions):
        session = manager.create_session(_BASE)
        i, m, s = _observe(session, n)
        iterations += i
        matches += m
        saturated = saturated and s
    run_s = time.perf_counter() - start
    return {
        "setup_s": setup_s,
        "run_s": run_s,
        "iterations": iterations,
        "matches": matches,
        "saturated": saturated,
    }


def _cold_load(n: int, sessions: int, strategy: str) -> Dict[str, object]:
    """One timed pass: N sessions each built from program source, cold."""
    manager = SessionManager(strategy=strategy, max_sessions=sessions + 1)
    program = _chain_program(n)
    iterations = matches = 0
    saturated = True
    start = time.perf_counter()
    for _ in range(sessions):
        session = manager.create_session()
        session.run_egg(program)
        i, m, s = _observe(session, n)
        iterations += i
        matches += m
        saturated = saturated and s
    run_s = time.perf_counter() - start
    return {"setup_s": 0.0, "run_s": run_s,
            "iterations": iterations, "matches": matches, "saturated": saturated}


_VARIANTS: Dict[str, Callable[[int, int, str], Dict[str, object]]] = {
    "fork-warm": _fork_warm,
    "cold-load": _cold_load,
}


def server_document(
    *,
    quick: bool = False,
    repeats: int = 3,
    strategy: str = "indexed",
) -> Dict[str, object]:
    """Measure both serving paths; returns the BENCH document (v2 schema)."""
    n = 28 if quick else 72
    sessions = 20 if quick else 100
    measured: Dict[str, object] = {}
    for variant, runner in _VARIANTS.items():
        runs = [runner(n, sessions, strategy) for _ in range(repeats)]
        runs_s: List[float] = [run["run_s"] for run in runs]
        median = runs[runs_s.index(statistics.median_low(runs_s))]
        measured[variant] = {
            "strategy": strategy,
            "repeats": repeats,
            "run_s": median["run_s"],
            "run_s_stats": _run_s_stats(runs_s),
            "runs_s": runs_s,
            "setup_s": median["setup_s"],
            "sessions": sessions,
            "per_session_ms": median["run_s"] * 1000.0 / sessions,
            "iterations": median["iterations"],
            "matches": median["matches"],
            "saturated": median["saturated"],
        }
    baseline = measured["cold-load"]
    candidate = measured["fork-warm"]
    baseline_s = baseline["run_s_stats"]["median"]
    candidate_s = candidate["run_s_stats"]["median"]
    return {
        "schema": SCHEMA,
        "name": SERVER_BENCH_NAME,
        "family": "server",
        "params": {"n": n, "sessions": sessions, "strategy": strategy},
        "python": ".".join(str(part) for part in sys.version_info[:3]),
        "version": package_version(),
        "proofs": True,
        "variants": measured,
        "comparison": {
            "baseline": "cold-load",
            "candidate": "fork-warm",
            "baseline_run_s": baseline_s,
            "candidate_run_s": candidate_s,
            "baseline_run_s_stats": baseline["run_s_stats"],
            "candidate_run_s_stats": candidate["run_s_stats"],
            "speedup": (baseline_s / candidate_s) if candidate_s > 0 else None,
        },
    }
