"""Persistent, incrementally-maintained column-trie indexes.

The per-execution nested-dict tries that generic join used to build
(``repro.core.genericjoin``) cost O(|table|) per atom per rule execution —
every iteration re-projected and re-hashed rows that had not changed.  This
module makes those tries *persistent*: a :class:`TrieIndex` is owned by a
:class:`~repro.core.database.Table`, registered once per column ordering,
and maintained incrementally on every insert, delete, and canonicalizing
rewrite performed during rebuilding.

Two ideas carry the subsystem:

* **Column-order tries.**  A trie over a permutation of *all* columns
  (arguments then output) is exactly the structure generic join descends:
  level ``k`` maps the value of column ``order[k]`` to the sub-trie of rows
  sharing that prefix, and the last level maps to ``True``.  An atom whose
  constant columns come first in the ordering is answered by descending the
  constants and handing the remaining sub-trie to the join.

* **Timestamp buckets.**  Rows are additionally partitioned into one trie
  per timestamp (the iteration that last wrote them).  The semi-naïve
  delta restriction of Section 4.3 — "rows stamped at or after the rule's
  watermark" — is then an *index slice*: the merge of the buckets at or
  after the watermark, built in O(|delta|) instead of filtering the table.

Query planning lives here too (:func:`plan_query`): it fixes a
*deterministic, structural* global variable order per query so that the
orderings a compiled rule needs are stable across iterations and can be
registered with the tables up front by the scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, TYPE_CHECKING

from .values import Value

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .query import Query, TableAtom

RowTuple = Tuple[Value, ...]  # full row: (args..., output)
Order = Tuple[int, ...]


class TrieIndex:
    """A nested-dict trie over one column ordering, maintained incrementally.

    ``order`` must be a permutation of all columns ``0 .. arity`` (column
    ``arity`` is the output).  ``root`` holds every live row; ``buckets``
    partitions the same rows by their current timestamp.  A row lives in
    exactly one bucket — an overwrite moves it from its old stamp's bucket
    to the new one — so the "new since ``since``" view is the disjoint
    merge of the buckets at or after ``since``.

    ``stale`` marks an index whose table was restored from a snapshot
    (``pop``); the owning table rebuilds it from the surviving rows on the
    next access, so restores stay cheap and the cost lands only on indexes
    actually used afterwards.
    """

    __slots__ = ("order", "root", "buckets", "stale", "_mutations", "_delta_cache")

    def __init__(self, order: Order) -> None:
        self.order = tuple(order)
        self.root: Dict = {}
        self.buckets: Dict[int, Dict] = {}
        self.stale = False
        self._mutations = 0
        self._delta_cache: Optional[Tuple[int, int, Dict]] = None

    def __len__(self) -> int:
        """Number of values at the first trie level (cheap size signal)."""
        return len(self.root)

    # -- maintenance ---------------------------------------------------------

    def insert(self, row: RowTuple, timestamp: int) -> None:
        """Add ``row`` (stamped ``timestamp``) to the trie and its bucket."""
        self._insert_into(self.root, row)
        self._insert_into(self.buckets.setdefault(timestamp, {}), row)
        self._mutations += 1

    def remove(self, row: RowTuple, timestamp: int) -> None:
        """Remove ``row`` (previously stamped ``timestamp``); prunes empty nodes."""
        self._remove_from(self.root, row)
        bucket = self.buckets.get(timestamp)
        if bucket is not None:
            self._remove_from(bucket, row)
            if not bucket:
                del self.buckets[timestamp]
        self._mutations += 1

    def _insert_into(self, node: Dict, row: RowTuple) -> None:
        order = self.order
        for col in order[:-1]:
            node = node.setdefault(row[col], {})
        node[row[order[-1]]] = True

    def _remove_from(self, node: Dict, row: RowTuple) -> None:
        order = self.order
        path: List[Tuple[Dict, Value]] = []
        for col in order[:-1]:
            child = node.get(row[col])
            if child is None:
                return
            path.append((node, row[col]))
            node = child
        node.pop(row[order[-1]], None)
        for parent, value in reversed(path):
            if parent[value]:
                break
            del parent[value]

    def rebuild_from(self, rows: Iterable[Tuple[RowTuple, int]]) -> None:
        """Reconstruct the trie and its buckets from scratch (restore path)."""
        self.root = {}
        self.buckets = {}
        self._delta_cache = None
        self._mutations += 1
        for row, timestamp in rows:
            self._insert_into(self.root, row)
            self._insert_into(self.buckets.setdefault(timestamp, {}), row)
        self.stale = False

    # -- views ---------------------------------------------------------------

    def delta_root(self, since: int) -> Dict:
        """Trie of rows stamped at or after ``since`` — the semi-naïve slice.

        The common case (one bucket at or after the watermark, i.e. only the
        previous iteration wrote) returns that bucket directly with no
        copying; multiple buckets are merged once and cached until the next
        mutation.
        """
        cached = self._delta_cache
        if (
            cached is not None
            and cached[0] == since
            and cached[1] == self._mutations
        ):
            return cached[2]
        live = [bucket for ts, bucket in self.buckets.items() if ts >= since]
        if not live:
            merged: Dict = {}
        elif len(live) == 1:
            merged = live[0]
        else:
            merged = {}
            for bucket in live:
                _merge_tries(merged, bucket)
        self._delta_cache = (since, self._mutations, merged)
        return merged


def _merge_tries(dst: Dict, src: Dict) -> None:
    """Merge trie ``src`` into ``dst`` (rows are disjoint, prefixes shared)."""
    for value, child in src.items():
        if child is True:
            dst[value] = True
            continue
        node = dst.get(value)
        if not isinstance(node, dict):
            dst[value] = node = {}
        _merge_tries(node, child)


#: Sentinel sub-trie for a fully-constant atom that matched: non-empty but
#: never descended (the atom binds no variables).
NONEMPTY = {"__nonempty__": True}


def descend_constants(node: Dict, values: Tuple[Value, ...]) -> Optional[Dict]:
    """Walk ``node`` down the constant prefix of an ordering.

    Returns the sub-trie keyed by the atom's variable columns, the
    :data:`NONEMPTY` sentinel when every column was constant and the row
    exists, or None when the constants match nothing.
    """
    for value in values:
        if node is True or not node:
            return None
        node = node.get(value)
        if node is None:
            return None
    if node is True:
        return NONEMPTY
    return node if node else None


# ---------------------------------------------------------------------------
# Query planning: structural variable order + per-atom index orderings
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AtomIndexSpec:
    """The persistent-index access plan for one table atom.

    ``order`` is the column ordering the atom's table must be indexed on:
    constant columns first (in column order), then the atom's distinct
    variable columns sorted by the query's global variable rank.
    ``const_values`` are descended first; ``var_names`` name the trie levels
    that remain, in global order.  Atoms with repeated variables get no
    spec — equality between trie levels cannot be enforced by descent — and
    fall back to the ad-hoc projection path.
    """

    order: Order
    const_values: Tuple[Value, ...]
    var_names: Tuple[str, ...]


@dataclass(frozen=True)
class QueryPlan:
    """A query's deterministic variable order plus per-atom index specs."""

    var_order: Tuple[str, ...]
    var_rank: Dict[str, int]
    specs: Tuple[Optional[AtomIndexSpec], ...]


def structural_var_order(atoms: Iterable["TableAtom"]) -> List[str]:
    """Global variable order from query *structure* only.

    Variables occurring in more atoms come first (they constrain the join
    most), ties broken by first occurrence.  Unlike a cardinality-based
    tie-break this is stable across iterations, which is what lets compiled
    rules register their index orderings once, up front.
    """
    from .query import QVar  # local import: query.py imports this module

    occurrence: Dict[str, int] = {}
    first_seen: Dict[str, int] = {}
    position = 0
    for atom in atoms:
        seen_here = set()
        for col in atom.columns():
            if isinstance(col, QVar):
                if col.name not in first_seen:
                    first_seen[col.name] = position
                    position += 1
                if col.name not in seen_here:
                    seen_here.add(col.name)
                    occurrence[col.name] = occurrence.get(col.name, 0) + 1
    return sorted(occurrence, key=lambda v: (-occurrence[v], first_seen[v]))


def plan_atom(
    atom: "TableAtom", var_rank: Dict[str, int]
) -> Optional[AtomIndexSpec]:
    """Index spec for one atom, or None when only the ad-hoc path applies."""
    from .query import QVar  # local import: query.py imports this module

    columns = atom.columns()
    const_cols: List[int] = []
    var_cols: List[Tuple[int, str]] = []
    seen_vars = set()
    for position, col in enumerate(columns):
        if isinstance(col, QVar):
            if col.name in seen_vars:
                return None  # repeated variable: trie descent cannot equate levels
            seen_vars.add(col.name)
            var_cols.append((position, col.name))
        else:
            const_cols.append(position)
    var_cols.sort(key=lambda entry: var_rank[entry[1]])
    order = tuple(const_cols) + tuple(position for position, _name in var_cols)
    return AtomIndexSpec(
        order=order,
        const_values=tuple(columns[position] for position in const_cols),
        var_names=tuple(name for _position, name in var_cols),
    )


def plan_query(query: "Query") -> QueryPlan:
    """Plan a conjunctive query: variable order and per-atom index specs.

    Deterministic in the query's structure, so calling this at rule
    registration time and again at search time yields identical orderings.
    The plan is cached on the query, keyed by its atoms (frozen records),
    so the per-iteration delta searches of a compiled rule re-plan nothing.
    """
    key = tuple(query.atoms)
    cached = getattr(query, "_plan_cache", None)
    if cached is not None and cached[0] == key:
        return cached[1]
    var_order = tuple(structural_var_order(query.atoms))
    var_rank = {name: rank for rank, name in enumerate(var_order)}
    specs = tuple(plan_atom(atom, var_rank) for atom in query.atoms)
    plan = QueryPlan(var_order=var_order, var_rank=var_rank, specs=specs)
    query._plan_cache = (key, plan)
    return plan
