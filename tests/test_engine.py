"""End-to-end engine tests: fixpoints, rebuilding, merges, actions, extraction."""

import pytest

from repro.core.terms import App, L, V
from repro.core.values import I64, STRING, i64
from repro.engine import (
    CheckError,
    Delete,
    EGraph,
    EGraphError,
    EGraphPanic,
    Expr,
    Let,
    MergeError,
    Panic,
    Rule,
    Set,
    eq,
    rewrite,
)
from repro.engine.actions import run_actions


def path_engine(strategy="indexed"):
    eg = EGraph(strategy=strategy)
    eg.relation("edge", (I64, I64))
    eg.function("path", (I64, I64), I64, merge="min")
    eg.add_rule(
        Rule(
            name="base",
            facts=[App("edge", V("x"), V("y"))],
            actions=[Set(App("path", V("x"), V("y")), L(1))],
        )
    )
    eg.add_rule(
        Rule(
            name="step",
            facts=[eq(V("d"), App("path", V("x"), V("y"))), App("edge", V("y"), V("z"))],
            actions=[Set(App("path", V("x"), V("z")), App("+", V("d"), L(1)))],
        )
    )
    return eg


@pytest.mark.parametrize("strategy", ["indexed", "generic"])
def test_path_reaches_fixpoint_with_min_merge(strategy):
    eg = path_engine(strategy)
    for a, b in [(1, 2), (2, 3), (3, 4), (1, 3)]:
        eg.add(App("edge", a, b))
    report = eg.run(limit=50)
    assert report.saturated
    assert report.iterations < 50
    # min merge: the 1->3 shortcut beats 1->2->3->4.
    assert eg.lookup(App("path", 1, 4)) == i64(2)
    assert eg.lookup(App("path", 1, 3)) == i64(1)
    assert eg.lookup(App("path", 1, 5)) is None
    # Re-running a saturated engine changes nothing.
    again = eg.run(limit=5)
    assert again.saturated and again.iterations == 1


def test_strategies_compute_identical_path_tables():
    results = []
    for strategy in ("indexed", "generic"):
        eg = path_engine(strategy)
        for a, b in [(1, 2), (2, 3), (3, 4), (1, 3), (4, 1)]:
            eg.add(App("edge", a, b))
        eg.run(limit=50)
        results.append(
            sorted(
                ((k[0].data, k[1].data), v.data) for k, v in eg.table_rows("path")
            )
        )
    assert results[0] == results[1]


def math_engine():
    eg = EGraph()
    eg.declare_sort("Math")
    eg.constructor("Num", (I64,), "Math")
    eg.constructor("Var", (STRING,), "Math")
    eg.constructor("Mul", ("Math", "Math"), "Math", cost=4)
    eg.constructor("Shl", ("Math", "Math"), "Math", cost=1)
    eg.add_rules(
        rewrite(App("Mul", V("x"), V("y")), App("Mul", V("y"), V("x")), name="comm"),
        rewrite(
            App("Mul", V("x"), App("Num", 2)),
            App("Shl", V("x"), App("Num", 1)),
            name="shl",
        ),
    )
    return eg


def test_rewrite_proves_equivalence_via_check():
    eg = math_engine()
    expr = App("Mul", App("Num", 2), App("Var", "a"))
    target = App("Shl", App("Var", "a"), App("Num", 1))
    eg.add(expr)
    with pytest.raises(CheckError):
        eg.check_equal(expr, target)  # not yet proven
    report = eg.run(limit=10)
    assert report.saturated
    assert eg.check_equal(expr, target)
    assert eg.are_equal(expr, App("Mul", App("Var", "a"), App("Num", 2)))


def test_extraction_returns_the_cheaper_term():
    eg = math_engine()
    expr = App("Mul", App("Num", 2), App("Var", "a"))
    eg.add(expr)
    eg.run(limit=10)
    cost, best = eg.extract_with_cost(expr)
    assert best == App("Shl", App("Var", "a"), App("Num", 1))
    assert cost == 3  # Shl + Var + Num at cost 1 each; the Mul form costs 6
    # Extracting a primitive value is trivial.
    assert eg.extract(L(5)) == L(5)


def test_rebuild_restores_congruence():
    eg = EGraph()
    eg.declare_sort("S")
    eg.constructor("A", (), "S")
    eg.constructor("B", (), "S")
    eg.constructor("f", ("S",), "S")
    fa = eg.add(App("f", App("A")))
    fb = eg.add(App("f", App("B")))
    assert not eg.are_equal(App("f", App("A")), App("f", App("B")))
    eg.union(App("A"), App("B"))
    rounds = eg.rebuild()
    assert rounds >= 1
    # Congruence: a = b  ==>  f(a) = f(b); the two rows collapse into one.
    assert eg.check_equal(App("f", App("A")), App("f", App("B")))
    assert len(eg.tables["f"]) == 1
    assert eg.canonicalize(fa) == eg.canonicalize(fb)
    # Rebuilding again is a no-op.
    assert eg.rebuild() == 0


def test_rebuild_only_touches_dirty_rows():
    eg = EGraph()
    eg.declare_sort("S")
    eg.constructor("A", (), "S")
    eg.constructor("B", (), "S")
    eg.constructor("C", (), "S")
    eg.constructor("f", ("S",), "S")
    eg.add(App("f", App("A")))
    eg.add(App("f", App("B")))
    untouched = eg.add(App("f", App("C")))
    before = eg.tables["f"].get_row((eg.lookup(App("C")),))
    eg.union(App("A"), App("B"))
    eg.timestamp = 7  # repairs must stamp with the current timestamp...
    eg.rebuild()
    # ...but the row in the untouched class keeps its original one.
    after = eg.tables["f"].get_row((eg.canonicalize(eg.lookup(App("C"))),))
    assert after is before and after.timestamp == 0
    assert eg.canonicalize(untouched) == eg.canonicalize(eg.lookup(App("f", App("C"))))
    assert len(eg.tables["f"]) == 2  # f(A)/f(B) merged, f(C) intact


def test_wrong_arity_primitive_fact_fails_match_not_crash():
    eg = EGraph()
    eg.relation("p", (I64,))
    eg.add(App("p", 1))
    eg.add_rule(
        Rule(
            name="bad-arity",
            facts=[App("p", V("x")), App("!=", V("x"), L(1), L(2))],
            actions=[Panic("should never fire")],
        )
    )
    report = eg.run(limit=3)  # must not raise TypeError
    assert report.per_rule_matches["bad-arity"] == 0


def test_rebuild_cascades_through_nested_terms():
    eg = EGraph()
    eg.declare_sort("S")
    eg.constructor("A", (), "S")
    eg.constructor("B", (), "S")
    eg.constructor("f", ("S",), "S")
    eg.add(App("f", App("f", App("A"))))
    eg.add(App("f", App("f", App("B"))))
    eg.union(App("A"), App("B"))
    eg.rebuild()
    assert eg.check_equal(App("f", App("f", App("A"))), App("f", App("f", App("B"))))


def test_merge_error_raises_on_conflict():
    eg = EGraph()
    eg.function("g", (I64,), I64, merge="error")
    run_actions(eg, [Set(App("g", L(1)), L(10))], {})
    # Same value: no conflict.
    run_actions(eg, [Set(App("g", L(1)), L(10))], {})
    with pytest.raises(MergeError):
        run_actions(eg, [Set(App("g", L(1)), L(20))], {})


def test_min_merge_keeps_smaller_value_and_bumps_timestamp():
    eg = EGraph()
    eg.function("g", (I64,), I64, merge="min")
    run_actions(eg, [Set(App("g", L(1)), L(10))], {})
    eg.timestamp = 5
    run_actions(eg, [Set(App("g", L(1)), L(3))], {})
    row = eg.tables["g"].get_row((i64(1),))
    assert row.value == i64(3)
    assert row.timestamp == 5  # updated rows look new to semi-naïve search
    run_actions(eg, [Set(App("g", L(1)), L(7))], {})
    assert eg.tables["g"].get((i64(1),)) == i64(3)


def test_let_delete_and_panic_actions():
    eg = EGraph()
    eg.function("g", (I64,), I64, merge="min")
    subst = run_actions(
        eg,
        [Let("v", App("+", L(2), L(3))), Set(App("g", L(1)), V("v"))],
        {},
    )
    assert subst["v"] == i64(5)
    assert eg.lookup(App("g", 1)) == i64(5)
    run_actions(eg, [Delete(App("g", L(1)))], {})
    assert eg.lookup(App("g", 1)) is None
    with pytest.raises(EGraphPanic, match="impossible"):
        run_actions(eg, [Panic("impossible state")], {})


def test_rulesets_run_independently():
    eg = EGraph()
    eg.relation("p", (I64,))
    eg.relation("q", (I64,))
    eg.relation("r", (I64,))
    eg.add_rule(
        Rule(
            name="p-to-q",
            facts=[App("p", V("x"))],
            actions=[Expr(App("q", V("x")))],
            ruleset="copy-q",
        )
    )
    eg.add_rule(
        Rule(
            name="p-to-r",
            facts=[App("p", V("x"))],
            actions=[Expr(App("r", V("x")))],
            ruleset="copy-r",
        )
    )
    eg.add(App("p", 1))
    eg.run(limit=5, ruleset="copy-q")
    assert eg.lookup(App("q", 1)) is not None
    assert eg.lookup(App("r", 1)) is None  # the other ruleset never ran
    eg.run(limit=5, ruleset="copy-r")
    assert eg.lookup(App("r", 1)) is not None
    with pytest.raises(EGraphError):
        eg.run(ruleset="no-such-ruleset")


def test_check_and_query_on_facts():
    eg = path_engine()
    for a, b in [(1, 2), (2, 3)]:
        eg.add(App("edge", a, b))
    eg.run(limit=10)
    assert eg.check(App("edge", L(1), V("y"))) == 1
    matches = eg.query(eq(V("d"), App("path", V("x"), V("y"))))
    assert {(m["x"].data, m["y"].data, m["d"].data) for m in matches} == {
        (1, 2, 1),
        (2, 3, 1),
        (1, 3, 2),
    }
    with pytest.raises(CheckError):
        eg.check(App("edge", L(9), V("y")))
    # A typo'd function name is an error, not an empty result.
    with pytest.raises(EGraphError, match="unknown symbol"):
        eg.check(App("edgez", L(1), V("y")))
    with pytest.raises(EGraphError, match="unknown symbol"):
        eg.query(App("edgez", V("x"), V("y")))


def test_typoed_symbols_in_actions_rejected_at_registration():
    eg = EGraph()
    eg.relation("edge", (I64, I64))
    with pytest.raises(EGraphError, match="unknown symbol"):
        eg.add_rule(
            Rule(
                name="typo-expr",
                facts=[App("edge", V("x"), V("y"))],
                actions=[Expr(App("egde", V("y"), V("x")))],
            )
        )
    with pytest.raises(EGraphError, match="targets unknown function"):
        eg.add_rule(
            Rule(
                name="typo-set",
                facts=[App("edge", V("x"), V("y"))],
                actions=[Set(App("pathz", V("x"), V("y")), L(1))],
            )
        )
    assert eg.rules == {}  # nothing half-registered


def test_saturation_report_statistics():
    eg = path_engine()
    eg.add(App("edge", 1, 2))
    report = eg.run(limit=10)
    assert report.saturated
    assert report.num_matches >= 1
    assert "base" in report.per_rule_matches
    assert report.total_time >= 0.0
    assert "saturated" in report.summary()


# -- push / pop context snapshots --------------------------------------------


def test_push_pop_restores_tables_unions_and_rules():
    eg = path_engine()
    for a, b in [(1, 2), (2, 3)]:
        eg.add(App("edge", a, b))
    eg.run(10)
    rows_before = dict(eg.table_rows("path"))
    rules_before = set(eg.rules)

    eg.push()
    eg.add(App("edge", 3, 4))
    eg.add_rule(
        Rule(name="extra", facts=[App("edge", V("x"), V("y"))], actions=[])
    )
    eg.run(10)
    assert (i64(1), i64(4)) in dict(eg.table_rows("path"))
    assert "extra" in eg.rules

    eg.pop()
    assert dict(eg.table_rows("path")) == rows_before
    assert set(eg.rules) == rules_before
    # The engine keeps working after a pop: rerunning stays saturated.
    assert eg.run(10).saturated


def test_push_pop_undoes_unions_and_new_declarations():
    eg = EGraph()
    eg.declare_sort("S")
    eg.constructor("A", (), "S")
    eg.constructor("B", (), "S")
    eg.add(App("A"))
    eg.add(App("B"))

    eg.push()
    eg.declare_sort("T")
    eg.constructor("C", (), "S")
    eg.union(App("A"), App("B"))
    eg.rebuild()
    assert eg.are_equal(App("A"), App("B"))

    eg.pop()
    assert not eg.are_equal(App("A"), App("B"))
    assert "T" not in eg.sorts
    assert "C" not in eg.decls and "C" not in eg.tables


def test_snapshot_restore_is_repeatable():
    # Restoring a snapshot must not hand the engine the snapshot's own
    # containers: mutations after the first restore would then corrupt the
    # capture and a second restore of it (e.g. a push-stack entry pinned
    # across an aborted transactional batch) would resurrect them.
    eg = EGraph()
    eg.declare_sort("S")
    eg.constructor("A", ("i64",), "S")
    snap = eg.snapshot_state()

    eg.restore_state(snap)
    eg.add(App("A", 1))
    eg.declare_sort("T")
    eg.constructor("B", (), "S")
    eg.add_rule(Rule(name="r", facts=[App("A", V("x"))], actions=[]))

    eg.restore_state(snap)  # the capture survived the first restore intact
    assert len(eg.tables["A"]) == 0
    assert "T" not in eg.sorts
    assert "B" not in eg.decls and "r" not in eg.rules


def test_pop_inside_snapshot_scope_keeps_stack_entry_pristine():
    # A pop *between* snapshot_state and restore_state installs a stack
    # entry; rows added afterwards must not leak into that entry.
    eg = EGraph()
    eg.declare_sort("S")
    eg.constructor("A", ("i64",), "S")
    eg.push()
    eg.add(App("A", 1))
    stack = list(eg._snapshots)

    snap = eg.snapshot_state()
    eg.pop()  # installs the pinned stack entry's containers
    eg.add(App("A", 7))  # mutation after the restore
    eg.restore_state(snap)
    eg._snapshots = stack  # what the session layer's rollback does

    eg.pop()  # the client's own pop: back to the empty pre-push state
    assert len(eg.tables["A"]) == 0


def test_pop_counts_and_errors():
    eg = EGraph()
    assert eg.push() == 1
    assert eg.push() == 2
    assert eg.pop(2) == 0
    with pytest.raises(EGraphError):
        eg.pop()
    eg.push()
    with pytest.raises(EGraphError):
        eg.pop(2)
    with pytest.raises(EGraphError):
        eg.pop(0)


def test_pop_restores_seminaive_watermarks():
    eg = path_engine()
    eg.add(App("edge", 1, 2))
    eg.run(10)
    watermarks = {name: rule.last_run for name, rule in eg.rules.items()}
    eg.push()
    eg.add(App("edge", 2, 3))
    eg.run(10)
    assert {n: r.last_run for n, r in eg.rules.items()} != watermarks
    eg.pop()
    assert {n: r.last_run for n, r in eg.rules.items()} == watermarks
    # New facts after the pop are still picked up from the restored watermark.
    eg.add(App("edge", 2, 5))
    eg.run(10)
    assert (i64(1), i64(5)) in dict(eg.table_rows("path"))


def test_pop_error_messages_and_state_survival():
    # Regression guard: over-deep pops must raise the precise diagnostic
    # (not IndexError) and leave every intact snapshot poppable.
    eg = EGraph()
    with pytest.raises(EGraphError, match=r"pop 1 without matching push \(stack depth 0\)"):
        eg.pop()
    eg.push()
    eg.declare_sort("S")
    with pytest.raises(EGraphError, match=r"pop 3 without matching push \(stack depth 1\)"):
        eg.pop(3)
    with pytest.raises(EGraphError, match="pop count must be positive"):
        eg.pop(-1)
    # The failed pops consumed nothing: the one real snapshot still works.
    assert "S" in eg.sorts
    assert eg.pop() == 0
    assert "S" not in eg.sorts
