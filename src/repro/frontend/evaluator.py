"""Evaluator: lowers parsed .egg commands onto the :class:`EGraph` engine.

The evaluator owns the pieces the parser cannot know: the engine's
declarations.  It lowers raw s-expressions into engine terms (checking
arities, sorts, and symbol bindings with source locations), maintains the
global ``let`` environment, mirrors the engine's ``push``/``pop`` stack for
that environment, and captures the deterministic output lines that
``run``/``check``/``extract``/``query-extract`` produce — the text the
golden-file tests diff.

Binding rules, following the paper's language:

* In *pattern* positions (rule facts, ``check`` facts, rewrite sides, rule
  actions) a bare symbol is a variable — unless it names a global ``let``
  binding, which is inlined as a literal at lowering time.
* In *ground* positions (top-level ``let``/``union``/``set``/``delete``/
  ``extract`` and ground facts) a bare symbol must name a global binding.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.schema import RunReport
from ..core.terms import Term, TermApp, TermLit, TermVar
from ..core.values import Value, coerce_literal
from ..engine import EGraph, Rule
from ..engine.actions import Action, Delete, Expr, Let, Panic, Set, Union, run_actions
from ..engine.errors import CheckError, EGraphError
from ..engine.rule import EqFact, Fact
from ..engine.schedule import Repeat, Run, Saturate, Schedule, Seq
from .errors import (
    ArityError,
    EvalError,
    Loc,
    SortError,
    UnboundSymbolError,
    UnknownCommandError,
)
from ..serialize import SnapshotError
from ..serialize.encode import decode_values, encode_values
from ..testing.faults import trip
from .parser import (
    CheckCmd,
    Command,
    DatatypeCmd,
    DeleteCmd,
    ExplainCmd,
    ExtractCmd,
    FunctionCmd,
    LetCmd,
    LoadCmd,
    PopCmd,
    PushCmd,
    QueryExtractCmd,
    RelationCmd,
    RewriteCmd,
    RuleCmd,
    RunCmd,
    RunScheduleCmd,
    SaveCmd,
    SetCmd,
    SortCmd,
    TopAction,
    UnionCmd,
    parse_program,
)
from .printer import format_fact, format_term
from .sexp import Literal, Sexp, SList, Symbol


class Evaluator:
    """Executes parsed .egg commands against one engine instance."""

    def __init__(
        self,
        egraph: Optional[EGraph] = None,
        *,
        strategy: str = "indexed",
        sink: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.egraph = egraph if egraph is not None else EGraph(strategy=strategy)
        self.globals: Dict[str, Value] = {}
        self._globals_stack: List[Dict[str, Value]] = []
        #: Ambient run budgets applied to ``run``/``run-schedule`` commands
        #: that do not carry their own — the session service sets these to
        #: enforce per-request deadlines over the ``.egg`` surface.
        self.default_deadline_s: Optional[float] = None
        self.default_max_nodes: Optional[int] = None
        self._sink = sink
        self.lines: List[str] = []
        self.filename: Optional[str] = None
        #: Accumulated statistics over every run/run-schedule this session
        #: executed (per-rule match counts, phase timings); see ``--stats``.
        self.report = RunReport()

    # -- entry points ---------------------------------------------------------

    def run_program(self, text: str, filename: Optional[str] = None) -> List[str]:
        """Parse and execute a whole program; returns the lines *it* printed.

        ``self.lines`` keeps accumulating across calls (the full session
        transcript); the return value covers only this call.
        """
        previous = self.filename
        self.filename = filename
        start = len(self.lines)
        try:
            for index, command in enumerate(parse_program(text, filename)):
                trip("egg.command", tag=index)
                self.execute(command)
        finally:
            self.filename = previous
        return self.lines[start:]

    def execute(self, command: Command) -> None:
        """Execute one command, translating engine errors to located ones."""
        handler = self._HANDLERS.get(type(command))
        if handler is None:  # pragma: no cover - parser emits only known commands
            raise EvalError(f"no handler for {command!r}", command.loc, self.filename)
        try:
            handler(self, command)
        except EGraphError as error:
            raise EvalError(str(error), command.loc, self.filename) from error

    def emit(self, line: str) -> None:
        self.lines.append(line)
        if self._sink is not None:
            self._sink(line)

    # -- lowering: s-expressions to terms -------------------------------------

    def _lower_expr(self, sexp: Sexp, pattern: bool) -> Term:
        if isinstance(sexp, Literal):
            return TermLit(sexp.value)
        if isinstance(sexp, Symbol):
            value = self.globals.get(sexp.name)
            if value is not None:
                return TermLit(self.egraph.canonicalize(value))
            if pattern:
                return TermVar(sexp.name)
            raise UnboundSymbolError(
                f"unbound symbol {sexp.name!r} (not a global let binding)",
                sexp.loc,
                self.filename,
            )
        if isinstance(sexp, SList):
            return self._lower_call(sexp, pattern)
        raise EvalError(f"cannot evaluate {sexp}", sexp.loc, self.filename)

    def _lower_call(self, sexp: SList, pattern: bool) -> TermApp:
        if not sexp.items or not isinstance(sexp.items[0], Symbol):
            raise EvalError(
                f"expected a function application, got {sexp}", sexp.loc, self.filename
            )
        head = sexp.items[0]
        args = tuple(self._lower_expr(item, pattern) for item in sexp.items[1:])
        decl = self.egraph.decls.get(head.name)
        if decl is not None:
            if len(args) != decl.arity:
                raise ArityError(
                    f"{head.name!r} expects {decl.arity} argument(s), got {len(args)}",
                    sexp.loc,
                    self.filename,
                )
            args = tuple(
                self._coerce(arg, sort, sexp.items[1 + index])
                for index, (arg, sort) in enumerate(zip(args, decl.arg_sorts))
            )
            return TermApp(head.name, args)
        if head.name in self.egraph.registry:
            return TermApp(head.name, args)
        raise UnboundSymbolError(
            f"unknown function or primitive {head.name!r}", head.loc, self.filename
        )

    def _coerce(self, term: Term, sort_name: str, origin: Sexp) -> Term:
        """Adapt a literal argument to the declared sort; reject mismatches."""
        if not isinstance(term, TermLit):
            return term  # variables and applications are checked by the engine
        coerced = coerce_literal(term.value, sort_name)
        if coerced is None:
            raise SortError(
                f"expected a {sort_name} here, got a {term.value.sort}",
                origin.loc,
                self.filename,
            )
        return TermLit(coerced)

    def _lower_fact(self, sexp: Sexp) -> Fact:
        if (
            isinstance(sexp, SList)
            and len(sexp.items) == 3
            and isinstance(sexp.items[0], Symbol)
            and sexp.items[0].name == "="
        ):
            return EqFact(
                self._lower_expr(sexp.items[1], pattern=True),
                self._lower_expr(sexp.items[2], pattern=True),
            )
        term = self._lower_expr(sexp, pattern=True)
        if not isinstance(term, TermApp):
            raise EvalError(
                f"a fact must be an application or (= a b), got {sexp}",
                sexp.loc,
                self.filename,
            )
        return term

    def _lower_action(self, sexp: Sexp, pattern: bool) -> Action:
        if isinstance(sexp, SList) and sexp.items and isinstance(sexp.items[0], Symbol):
            head = sexp.items[0].name
            items = sexp.items
            if head == "let":
                self._need(sexp, 3, "(let name expr)")
                name = self._need_symbol(items[1], "a name")
                return Let(name, self._lower_expr(items[2], pattern))
            if head == "union":
                self._need(sexp, 3, "(union a b)")
                return Union(
                    self._lower_expr(items[1], pattern),
                    self._lower_expr(items[2], pattern),
                )
            if head == "set":
                self._need(sexp, 3, "(set (f args) value)")
                target = self._lower_target(items[1], pattern)
                value = self._lower_expr(items[2], pattern)
                # Output position gets the same literal widening as arguments.
                out_sort = self.egraph.decls[target.func].out_sort
                return Set(target, self._coerce(value, out_sort, items[2]))
            if head == "delete":
                self._need(sexp, 2, "(delete (f args))")
                return Delete(self._lower_target(items[1], pattern))
            if head == "panic":
                self._need(sexp, 2, '(panic "message")')
                if not isinstance(items[1], Literal) or items[1].value.sort != "String":
                    raise EvalError(
                        "panic expects a string message", items[1].loc, self.filename
                    )
                return Panic(str(items[1].value.data))
        term = self._lower_expr(sexp, pattern)
        if not isinstance(term, TermApp):
            raise EvalError(
                f"an action must be let/union/set/delete/panic or an application, "
                f"got {sexp}",
                sexp.loc,
                self.filename,
            )
        return Expr(term)

    def _lower_target(self, sexp: Sexp, pattern: bool) -> TermApp:
        """Lower the ``(f args...)`` target of a set/delete; must be a table."""
        if not isinstance(sexp, SList):
            raise EvalError(
                f"expected a function call like (f x ...), got {sexp}",
                sexp.loc,
                self.filename,
            )
        call = self._lower_call(sexp, pattern)
        if call.func not in self.egraph.decls:
            raise EvalError(
                f"{call.func!r} is a primitive; set/delete need a declared function",
                sexp.loc,
                self.filename,
            )
        return call

    def _need(self, sexp: SList, count: int, usage: str) -> None:
        if len(sexp.items) != count:
            raise EvalError(f"malformed action, want {usage}", sexp.loc, self.filename)

    def _need_symbol(self, sexp: Sexp, what: str) -> str:
        if not isinstance(sexp, Symbol):
            raise EvalError(f"expected {what}, got {sexp}", sexp.loc, self.filename)
        return sexp.name

    def _check_sorts(self, sorts: Sequence[str], loc: Loc) -> None:
        for name in sorts:
            if name not in self.egraph.sorts:
                raise SortError(f"undeclared sort {name!r}", loc, self.filename)

    # -- merge / default expressions ------------------------------------------

    def _lower_merge(self, sexp: Sexp) -> Callable[[Value, Value], Value]:
        """Compile a ``:merge`` expression over ``old``/``new`` into a callable."""
        # ``old``/``new`` are reserved here: a global of the same name must
        # not be inlined in their place, so mask the globals while lowering.
        masked = {
            name: self.globals.pop(name) for name in ("old", "new") if name in self.globals
        }
        try:
            term = self._lower_expr(sexp, pattern=True)
        finally:
            self.globals.update(masked)
        self._require_primitive_term(
            term, sexp, allowed_vars=("old", "new"), context=":merge"
        )
        egraph = self.egraph

        def merge_fn(old: Value, new: Value) -> Value:
            return egraph.eval_term(term, {"old": old, "new": new})

        # The lowered term rides on the closure so snapshots can serialize
        # the merge as an expression and reconstruct it on load.
        merge_fn.__repro_term__ = term  # type: ignore[attr-defined]
        return merge_fn

    def _lower_default(self, sexp: Sexp, out_sort: str) -> Value:
        """Evaluate a ``:default`` expression (ground, primitives only)."""
        term = self._lower_expr(sexp, pattern=True)
        self._require_primitive_term(term, sexp, allowed_vars=(), context=":default")
        value = self.egraph.eval_term(term, {})
        coerced = coerce_literal(value, out_sort)
        if coerced is None:
            raise SortError(
                f":default must produce a {out_sort}, got a {value.sort}",
                sexp.loc,
                self.filename,
            )
        return coerced

    def _require_primitive_term(
        self, term: Term, origin: Sexp, allowed_vars: Tuple[str, ...], context: str
    ) -> None:
        """Merge/default expressions may only use primitives and allowed vars."""
        if isinstance(term, TermVar):
            if term.name not in allowed_vars:
                allowed = " and ".join(repr(v) for v in allowed_vars) or "no variables"
                raise EvalError(
                    f"{context} expressions may reference {allowed}, "
                    f"not {term.name!r}",
                    origin.loc,
                    self.filename,
                )
            return
        if isinstance(term, TermApp):
            if term.func in self.egraph.decls:
                raise EvalError(
                    f"{context} expressions may only call primitives, "
                    f"not the function {term.func!r}",
                    origin.loc,
                    self.filename,
                )
            for arg in term.args:
                self._require_primitive_term(arg, origin, allowed_vars, context)

    # -- command handlers -----------------------------------------------------

    def _do_sort(self, cmd: SortCmd) -> None:
        self.egraph.declare_sort(cmd.name)

    def _do_datatype(self, cmd: DatatypeCmd) -> None:
        self.egraph.declare_sort(cmd.name)
        for variant in cmd.variants:
            self._check_sorts(variant.arg_sorts, variant.loc)
            self.egraph.constructor(
                variant.name, variant.arg_sorts, cmd.name, cost=variant.cost
            )

    def _do_function(self, cmd: FunctionCmd) -> None:
        self._check_sorts(cmd.arg_sorts + (cmd.out_sort,), cmd.loc)
        merge = self._lower_merge(cmd.merge) if cmd.merge is not None else None
        default = (
            self._lower_default(cmd.default, cmd.out_sort)
            if cmd.default is not None
            else None
        )
        self.egraph.function(
            cmd.name,
            cmd.arg_sorts,
            cmd.out_sort,
            merge=merge,
            default=default,
            cost=cmd.cost,
            unextractable=cmd.unextractable,
        )

    def _do_relation(self, cmd: RelationCmd) -> None:
        self._check_sorts(cmd.arg_sorts, cmd.loc)
        self.egraph.relation(cmd.name, cmd.arg_sorts)

    def _do_rule(self, cmd: RuleCmd) -> None:
        facts = [self._lower_fact(sexp) for sexp in cmd.facts]
        actions = [self._lower_action(sexp, pattern=True) for sexp in cmd.actions]
        self.egraph.add_rule(
            Rule(facts=facts, actions=actions, name=cmd.name, ruleset=cmd.ruleset)
        )

    def _do_rewrite(self, cmd: RewriteCmd) -> None:
        lhs = self._lower_expr(cmd.lhs, pattern=True)
        rhs = self._lower_expr(cmd.rhs, pattern=True)
        conditions = [self._lower_fact(sexp) for sexp in cmd.conditions]
        self._check_rewrite_vars(lhs, rhs, conditions, cmd)
        if cmd.bidirectional:
            self._check_rewrite_vars(rhs, lhs, conditions, cmd)
        self.egraph.add_rewrite(
            lhs,
            rhs,
            conditions=conditions,
            name=cmd.name,
            ruleset=cmd.ruleset,
            bidirectional=cmd.bidirectional,
        )

    def _check_rewrite_vars(
        self, lhs: Term, rhs: Term, conditions: List[Fact], cmd: RewriteCmd
    ) -> None:
        bound = set(lhs.variables())
        for fact in conditions:
            if isinstance(fact, EqFact):
                bound.update(fact.lhs.variables())
                bound.update(fact.rhs.variables())
            else:
                bound.update(fact.variables())
        free = sorted(set(rhs.variables()) - bound)
        if free:
            raise EvalError(
                f"rewrite right-hand side uses unbound variable(s): {', '.join(free)}",
                cmd.loc,
                self.filename,
            )

    def _do_let(self, cmd: LetCmd) -> None:
        if cmd.name in self.globals:
            raise EvalError(
                f"global {cmd.name!r} is already bound", cmd.loc, self.filename
            )
        term = self._lower_expr(cmd.expr, pattern=False)
        self.globals[cmd.name] = self.egraph.add(term)

    def _do_union(self, cmd: UnionCmd) -> None:
        self.egraph.union(
            self._lower_expr(cmd.lhs, pattern=False),
            self._lower_expr(cmd.rhs, pattern=False),
        )

    def _do_set(self, cmd: SetCmd) -> None:
        target = self._lower_target(cmd.call, pattern=False)
        value = self._lower_expr(cmd.value, pattern=False)
        out_sort = self.egraph.decls[target.func].out_sort
        action = Set(target, self._coerce(value, out_sort, cmd.value))
        run_actions(self.egraph, [action], {})

    def _do_delete(self, cmd: DeleteCmd) -> None:
        action = Delete(self._lower_target(cmd.call, pattern=False))
        run_actions(self.egraph, [action], {})

    def _do_top_action(self, cmd: TopAction) -> None:
        head = cmd.sexp.items[0]
        assert isinstance(head, Symbol)
        if head.name not in self.egraph.decls and head.name not in self.egraph.registry:
            raise UnknownCommandError(
                f"unknown command or function {head.name!r}", head.loc, self.filename
            )
        action = self._lower_action(cmd.sexp, pattern=False)
        run_actions(self.egraph, [action], {})

    def _do_run(self, cmd: RunCmd) -> None:
        report = self.egraph.run(
            cmd.limit,
            ruleset=cmd.ruleset,
            deadline_s=(
                cmd.deadline_ms / 1000.0
                if cmd.deadline_ms is not None
                else self.default_deadline_s
            ),
            max_nodes=(
                cmd.max_nodes if cmd.max_nodes is not None else self.default_max_nodes
            ),
        )
        self.report.merge_with(report)
        if report.stopped_reason:
            status = f"stopped: {report.stopped_reason}"
        elif report.saturated:
            status = "saturated"
        else:
            status = "iteration limit"
        self.emit(
            f"run: {report.iterations} iteration(s), "
            f"{report.num_matches} match(es), {status}"
        )

    # -- run-schedule ---------------------------------------------------------

    def _do_run_schedule(self, cmd: RunScheduleCmd) -> None:
        schedules = tuple(self._lower_schedule(sexp) for sexp in cmd.schedules)
        report = self.egraph.run_schedule(
            *schedules,
            deadline_s=self.default_deadline_s,
            max_nodes=self.default_max_nodes,
        )
        self.report.merge_with(report)
        status = "saturated" if report.saturated else "done"
        self.emit(
            f"run-schedule: {report.iterations} iteration(s), "
            f"{report.num_matches} match(es), {status}"
        )

    def _lower_schedule(self, sexp: Sexp) -> Schedule:
        """Lower a schedule s-expression into engine combinators.

        Grammar (mirroring egglog's surface language):
        ``sched ::= ruleset-name | (run [n] [:ruleset r]) | (saturate sched...)
        | (seq sched...) | (repeat n sched...)``
        """
        if isinstance(sexp, Symbol):
            # A bare ruleset name runs that ruleset for one iteration.
            self._check_ruleset(sexp.name, sexp.loc)
            return Run(1, sexp.name)
        if not isinstance(sexp, SList) or not sexp.items or not isinstance(
            sexp.items[0], Symbol
        ):
            raise EvalError(
                f"expected a schedule like (saturate ...) or a ruleset name, "
                f"got {sexp}",
                sexp.loc,
                self.filename,
            )
        head = sexp.items[0]
        rest = sexp.items[1:]
        if head.name == "saturate":
            return Saturate(tuple(self._lower_schedule(s) for s in rest) or (Run(),))
        if head.name == "seq":
            return Seq(tuple(self._lower_schedule(s) for s in rest))
        if head.name == "repeat":
            if not rest:
                raise EvalError(
                    "'repeat' expects a count and sub-schedules", sexp.loc, self.filename
                )
            times = self._schedule_int(rest[0], "a repeat count")
            body = tuple(self._lower_schedule(s) for s in rest[1:]) or (Run(),)
            return Repeat(times, body)
        if head.name == "run":
            limit = 1
            ruleset = ""
            items = list(rest)
            if items and isinstance(items[0], Literal):
                limit = self._schedule_int(items[0], "an iteration limit")
                items = items[1:]
            if items:
                if (
                    len(items) != 2
                    or not isinstance(items[0], Symbol)
                    or items[0].name != ":ruleset"
                ):
                    raise EvalError(
                        "malformed schedule, want (run [n] [:ruleset r])",
                        sexp.loc,
                        self.filename,
                    )
                ruleset = self._need_symbol(items[1], "a ruleset name")
                self._check_ruleset(ruleset, items[1].loc)
            return Run(limit, ruleset)
        raise EvalError(
            f"unknown schedule combinator {head.name!r} "
            f"(want saturate/seq/repeat/run)",
            head.loc,
            self.filename,
        )

    def _schedule_int(self, sexp: Sexp, what: str) -> int:
        if not isinstance(sexp, Literal) or sexp.value.sort != "i64":
            raise EvalError(
                f"expected {what} (an integer), got {sexp}", sexp.loc, self.filename
            )
        count = int(sexp.value.data)
        if count < 1:
            raise EvalError(f"{what} must be positive, got {count}", sexp.loc, self.filename)
        return count

    def _check_ruleset(self, name: str, loc: Loc) -> None:
        if name not in self.egraph.rulesets:
            raise EvalError(f"unknown ruleset {name!r}", loc, self.filename)

    def _do_check(self, cmd: CheckCmd) -> None:
        self.egraph.rebuild()  # globals must be inlined at canonical ids
        facts = [self._lower_fact(sexp) for sexp in cmd.facts]
        try:
            count = self.egraph.check(*facts)
        except CheckError:
            rendered = " ".join(format_fact(fact) for fact in facts)
            raise EvalError(
                f"check failed: no matches for {rendered}", cmd.loc, self.filename
            ) from None
        self.emit(f"check: ok ({count} match(es))")

    def _do_extract(self, cmd: ExtractCmd) -> None:
        self.egraph.rebuild()
        term = self._lower_expr(cmd.expr, pattern=False)
        cost, best = self.egraph.extract_with_cost(term)
        self.emit(f"extract: {format_term(best)} (cost {cost})")

    def _do_query_extract(self, cmd: QueryExtractCmd) -> None:
        self.egraph.rebuild()
        expr = self._lower_expr(cmd.expr, pattern=True)
        facts = [self._lower_fact(sexp) for sexp in cmd.facts]
        matches = self.egraph.query(*facts)
        results = set()
        for match in matches:
            value = self.egraph.eval_term(expr, match, insert=False)
            if value is None:
                continue
            _cost, best = self.egraph.extract_with_cost(value)
            results.add(format_term(best))
        self.emit(f"query-extract: {len(results)} result(s)")
        for line in sorted(results):
            self.emit(f"  {line}")

    def _do_explain(self, cmd: ExplainCmd) -> None:
        """Print the proof chain for ``(explain <e1> <e2>)``.

        One line per step naming its justification (``rule <name>``,
        ``congruence <func>``, or ``union``); terms hash-consed to the same
        e-node print a zero-step reflexive chain.
        """
        self.egraph.rebuild()
        lhs = self._lower_expr(cmd.lhs, pattern=False)
        rhs = self._lower_expr(cmd.rhs, pattern=False)
        explanation = self.egraph.explain(lhs, rhs)
        self.emit(
            f"explain: {format_term(lhs)} = {format_term(rhs)}: "
            f"{len(explanation.steps)} step(s)"
        )
        for index, step in enumerate(explanation.steps, start=1):
            self.emit(f"  {index}. {step.justification.describe()}")

    def _do_push(self, cmd: PushCmd) -> None:
        for _ in range(cmd.count):
            self.egraph.push()
            self._globals_stack.append(dict(self.globals))

    def _do_pop(self, cmd: PopCmd) -> None:
        if cmd.count > len(self._globals_stack):
            raise EvalError(
                f"pop {cmd.count} without matching push "
                f"(stack depth {len(self._globals_stack)})",
                cmd.loc,
                self.filename,
            )
        self.egraph.pop(cmd.count)
        for _ in range(cmd.count):
            self.globals = self._globals_stack.pop()

    # -- persistence ----------------------------------------------------------

    def session_snapshot(self) -> tuple:
        """Capture the evaluator-owned session state (the global ``let``
        environment and its push/pop stack) for a later
        :meth:`session_restore`.  The engine is *not* captured — pair this
        with :meth:`EGraph.snapshot_state` for a full transactional
        snapshot (the session layer's atomic batches do exactly that).
        """
        return (
            dict(self.globals),
            [dict(scope) for scope in self._globals_stack],
        )

    def session_restore(self, snap: tuple) -> None:
        """Reinstall a :meth:`session_snapshot` capture."""
        self.globals = dict(snap[0])
        self._globals_stack = [dict(scope) for scope in snap[1]]

    def save_snapshot(self, path: str) -> None:
        """Snapshot the engine plus this session's global ``let`` bindings.

        The bindings travel in the document's ``surfaces.egg`` section
        (insertion order preserved); engines loaded by other surfaces
        simply ignore it.
        """
        surfaces = {"egg": {"globals": encode_values(self.globals)}}
        self.egraph.save(path, surfaces=surfaces)

    def load_snapshot(self, path: str) -> None:
        """Replace the session state — engine and globals — with a snapshot.

        The engine keeps its configured join strategy rather than adopting
        the saved session's.  The push/pop stack empties: pops cannot cross
        a load (there is no earlier in-session state to return to).
        """
        document = self.egraph.load(path)
        surfaces = document.get("surfaces")
        egg = surfaces.get("egg", {}) if isinstance(surfaces, dict) else {}
        self.globals = decode_values(egg.get("globals", []), "egg globals")
        self._globals_stack.clear()

    def _do_save(self, cmd: SaveCmd) -> None:
        try:
            self.save_snapshot(cmd.path)
        except (OSError, SnapshotError) as error:
            raise EvalError(f"save failed: {error}", cmd.loc, self.filename) from error
        self.emit(f"save: {cmd.path}")

    def _do_load(self, cmd: LoadCmd) -> None:
        try:
            self.load_snapshot(cmd.path)
        except (OSError, SnapshotError) as error:
            raise EvalError(f"load failed: {error}", cmd.loc, self.filename) from error
        self.emit(f"load: {cmd.path}")

    _HANDLERS = {
        SortCmd: _do_sort,
        DatatypeCmd: _do_datatype,
        FunctionCmd: _do_function,
        RelationCmd: _do_relation,
        RuleCmd: _do_rule,
        RewriteCmd: _do_rewrite,
        LetCmd: _do_let,
        UnionCmd: _do_union,
        SetCmd: _do_set,
        DeleteCmd: _do_delete,
        TopAction: _do_top_action,
        RunCmd: _do_run,
        RunScheduleCmd: _do_run_schedule,
        CheckCmd: _do_check,
        ExtractCmd: _do_extract,
        QueryExtractCmd: _do_query_extract,
        ExplainCmd: _do_explain,
        PushCmd: _do_push,
        PopCmd: _do_pop,
        SaveCmd: _do_save,
        LoadCmd: _do_load,
    }


def run_program(
    text: str,
    filename: Optional[str] = None,
    *,
    strategy: str = "indexed",
) -> List[str]:
    """Run one .egg program on a fresh engine; return its output lines."""
    return Evaluator(strategy=strategy).run_program(text, filename)
