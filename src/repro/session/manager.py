"""Named e-graph sessions forked from warm bases, under an LRU capacity cap.

The :class:`SessionManager` is the service's state: a registry of **bases**
(template engines built once — by running an ``.egg`` program or decoding a
``repro.snapshot/v1`` file — then kept warm in memory) and a table of live
**sessions** (engines forked from those templates).  Forking never touches
disk or JSON: :meth:`EGraph.fork` copies the template structurally, and the
fork *shares* the template's primitive registry, so the process-level
compile cache (:mod:`repro.engine.compilecache`) serves every sibling the
same compiled query plans.

Concurrency model: the manager takes one re-entrant lock for table surgery
(create/evict/remove), and each session carries its own mutex held for the
duration of a batch.  A session whose mutex is held is *busy* and immune to
eviction; capacity pressure evicts the least-recently-used idle session
instead, or fails with :class:`CapacityError` when every session is busy.

Two rules keep the two lock kinds honest:

* **Disk I/O never runs under the manager lock.**  Checkpoint saves and
  restores happen under the affected session's own mutex with the manager
  lock released, so one slow passivation or re-hydration cannot stall every
  other request's session lookup.  (The manager lock is only ever taken
  *inside* a held session mutex via non-blocking attempts or short
  bookkeeping sections, so the ordering cannot deadlock.)
* **Retirement is published under the session mutex.**  :meth:`~SessionManager._retire`
  checkpoints a victim and marks it ``retired`` while holding its mutex;
  batch entry points re-check that flag after acquiring the mutex
  (:meth:`Session._acquire_live`) and chase the live incarnation through
  ``manager.get`` — so a session passivated between lookup and lock
  acquisition transparently restores instead of swallowing the batch.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from ..core.values import Value
from ..engine.compilecache import CACHE
from ..engine.egraph import EGraph
from ..frontend.errors import FrontendError
from ..frontend.evaluator import Evaluator
from ..serialize.encode import decode_values
from ..serialize.snapshot import engine_from_document, read_document
from .errors import (
    CapacityError,
    CheckpointError,
    DuplicateNameError,
    ProgramError,
    UnknownBaseError,
    UnknownSessionError,
)
from .program import Json, run_ops
from .store import CheckpointStore


def _egg_globals(document: Dict[str, Any]) -> List[Any]:
    surfaces = document.get("surfaces")
    egg = surfaces.get("egg", {}) if isinstance(surfaces, dict) else {}
    return egg.get("globals", []) if isinstance(egg, dict) else []


@dataclass
class BaseInfo:
    """One named base: a warm template engine every session forks from.

    The template is never run after installation — every mutation happens
    on forks — so concurrent forking (serialized by the manager lock) reads
    a stable structure.
    """

    name: str
    engine: EGraph
    globals_values: Dict[str, Value]
    source: str  # "egg" | "snapshot"
    created_at: float = field(default_factory=time.monotonic)
    forks: int = 0

    def info(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "source": self.source,
            "forks": self.forks,
            "functions": len(self.engine.tables),
            "rows": self.engine.node_count(),
        }


class Session:
    """One live engine plus its ``.egg`` evaluator, guarded by a mutex.

    All entry points serialize on :attr:`lock`: a session is a
    single-threaded engine that many clients may *own* but only one may
    *drive* at a time.  The manager checks the same mutex to decide whether
    a session is evictable.
    """

    def __init__(self, session_id: str, base: Optional[str], evaluator: Evaluator) -> None:
        self.id = session_id
        self.base = base
        self.evaluator = evaluator
        self.engine: EGraph = evaluator.egraph
        self.lock = threading.Lock()
        self.created_at = time.monotonic()
        self.last_used = self.created_at
        self.batches = 0
        #: Set by :meth:`SessionManager._admit`; ``None`` for unmanaged use.
        self.manager: Optional["SessionManager"] = None
        #: Written only under :attr:`lock` by :meth:`SessionManager._retire`.
        #: Once True this object is an orphan: its durable state lives in
        #: the checkpoint store and the live incarnation (if any) is a
        #: different object under the same id.
        self.retired = False

    def touch(self) -> None:
        self.last_used = time.monotonic()
        self.batches += 1

    def _acquire_live(self) -> "Session":
        """Acquire the mutex of the *live* incarnation of this session.

        Closes the lookup-to-lock race with passivation: a session that was
        retired (checkpointed and dropped from the table) between
        ``manager.get`` and this acquisition is re-fetched through the
        manager — transparently restoring it from its checkpoint — instead
        of silently running the batch on an orphan whose effects the next
        restore would discard.  Returns the session whose lock the caller
        now holds (and must release); without a store, a retirement lost
        race surfaces as the manager's :class:`UnknownSessionError`.
        """
        session = self
        while True:
            session.lock.acquire()
            if not session.retired or session.manager is None:
                return session
            manager = session.manager
            session.lock.release()
            session = manager.get(session.id)

    @contextmanager
    def _transaction(self, atomic: bool) -> Iterator[None]:
        """All-or-nothing batch scope: roll back on any failure.

        The snapshot is *out of band* — :meth:`EGraph.snapshot_state`
        rather than ``push()`` — so client-visible ``(push)``/``(pop)``
        pairing across batches is untouched: a ``(pop)`` in a later batch
        still restores the client's own ``(push)``, never a transaction
        marker.  Rollback reinstalls the engine state, the engine's
        push/pop stack as it stood at batch entry (pushes made by the
        failed batch vanish), and the evaluator's global environment.

        Side effects outside the engine — a ``(save)`` that wrote a file,
        a ``(load)`` that replaced the whole session state mid-batch —
        are not unwound; the rollback restores the pre-batch state on a
        best-effort basis even then (tables are recreated as needed).
        """
        if not atomic:
            yield
            return
        engine = self.engine
        state = engine.snapshot_state()
        # A shallow list copy pins the pre-batch push/pop stack: entries
        # stay pristine even if the batch pops them, because
        # ``restore_state`` installs defensive copies rather than the
        # snapshot's own containers.
        stack = list(engine._snapshots)
        frontend = self.evaluator.session_snapshot()
        try:
            yield
        except BaseException:
            engine.restore_state(state)
            engine._snapshots = stack
            self.evaluator.session_restore(frontend)
            raise

    @contextmanager
    def _budgets(self, deadline_ms: Optional[int], max_nodes: Optional[int]) -> Iterator[None]:
        """Apply per-request default budgets to the ``.egg`` surface."""
        evaluator = self.evaluator
        evaluator.default_deadline_s = (
            deadline_ms / 1000.0 if deadline_ms is not None else None
        )
        evaluator.default_max_nodes = max_nodes
        try:
            yield
        finally:
            evaluator.default_deadline_s = None
            evaluator.default_max_nodes = None

    def run_egg(
        self,
        text: str,
        *,
        atomic: bool = True,
        deadline_ms: Optional[int] = None,
        max_nodes: Optional[int] = None,
    ) -> List[str]:
        """Run a batch of ``.egg`` commands; returns the lines it printed.

        With ``atomic`` (the default) a failing command rolls the session
        back to its pre-batch state; ``deadline_ms``/``max_nodes`` are
        default budgets for ``run``/``run-schedule`` commands that carry
        none of their own.  The batch runs on the live incarnation of the
        session (see :meth:`_acquire_live`), which may be a restored copy
        if this object was passivated since lookup.
        """
        session = self._acquire_live()
        try:
            session.touch()
            with session._transaction(atomic), session._budgets(deadline_ms, max_nodes):
                try:
                    return session.evaluator.run_program(text, f"<session {session.id}>")
                except FrontendError as error:
                    raise ProgramError(str(error)) from error
        finally:
            session.lock.release()

    def run_program(
        self,
        ops: Json,
        *,
        atomic: bool = True,
        deadline_ms: Optional[int] = None,
        max_nodes: Optional[int] = None,
    ) -> List[Json]:
        """Run a JSON-encoded program (see :mod:`repro.session.program`).

        Same transactional semantics as :meth:`run_egg`: by default a
        program failing at op *k* leaves the session byte-identical to its
        pre-batch state instead of keeping ops ``1..k-1`` applied.
        """
        session = self._acquire_live()
        try:
            session.touch()
            with session._transaction(atomic):
                return run_ops(
                    session.engine,
                    ops,
                    session.evaluator.globals,
                    default_deadline_ms=deadline_ms,
                    default_max_nodes=max_nodes,
                )
        finally:
            session.lock.release()

    def info(self) -> Dict[str, Any]:
        now = time.monotonic()
        return {
            "id": self.id,
            "base": self.base,
            "busy": self.lock.locked(),
            "batches": self.batches,
            "age_s": round(now - self.created_at, 3),
            "idle_s": round(now - self.last_used, 3),
            "nodes": self.engine.node_count(),
        }


class SessionManager:
    """Owns every base and session; all public methods are thread-safe."""

    def __init__(
        self,
        *,
        strategy: str = "indexed",
        max_sessions: int = 64,
        idle_ttl_s: Optional[float] = None,
        state_dir: Optional[str] = None,
    ) -> None:
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions}")
        self.strategy = strategy
        self.max_sessions = max_sessions
        self.idle_ttl_s = idle_ttl_s
        self._lock = threading.RLock()
        self._bases: Dict[str, BaseInfo] = {}
        self._sessions: "OrderedDict[str, Session]" = OrderedDict()
        self.evictions = 0
        #: Durability: with a state dir, evicted/expired sessions are
        #: *passivated* (checkpointed to disk, restored on next touch)
        #: instead of destroyed, and the session table survives restarts.
        self.store = CheckpointStore(state_dir) if state_dir is not None else None
        #: Single-flight guard for checkpoint restores: ids currently being
        #: re-hydrated (disk I/O runs with ``_lock`` released, so without
        #: this two threads could restore the same session into two
        #: objects, orphaning one thread's batches).
        self._restoring: set = set()
        self._restored = threading.Condition(self._lock)
        self.passivations = 0
        self.checkpoints = 0
        self.restores = 0
        self.checkpoint_failures = 0
        self.restore_failures = 0
        # Resume id allocation past any checkpointed ids so a restarted
        # server never mints an id that collides with a passivated session.
        next_id = 1
        if self.store is not None:
            for sid in self.store.ids():
                if sid.startswith("s") and sid[1:].isdigit():
                    next_id = max(next_id, int(sid[1:]) + 1)
        self._ids = itertools.count(next_id)

    # -- bases ----------------------------------------------------------------

    def add_base_from_program(self, name: str, text: str) -> Dict[str, Any]:
        """Build a base by running an ``.egg`` program on a fresh engine.

        The evaluator's engine becomes the template directly: it is warm —
        its compiled query plans already sit in the process cache under its
        registry — so every fork starts with the cache hot.
        """
        self._check_base_name(name)
        evaluator = Evaluator(strategy=self.strategy)
        try:
            evaluator.run_program(text, f"<base {name}>")
        except FrontendError as error:
            raise ProgramError(str(error)) from error
        return self._install_base(
            name, evaluator.egraph, dict(evaluator.globals), "egg"
        )

    def add_base_from_snapshot(self, name: str, path: str) -> Dict[str, Any]:
        """Register a ``repro.snapshot/v1`` file as a base.

        The document is decoded exactly once, here; every session then forks
        the resulting template engine without touching the file again.
        """
        self._check_base_name(name)
        document = read_document(path)
        engine = engine_from_document(document, strategy=self.strategy)
        globals_values = decode_values(_egg_globals(document), "egg globals")
        return self._install_base(name, engine, globals_values, "snapshot")

    def _check_base_name(self, name: str) -> None:
        if not name or not isinstance(name, str):
            raise ProgramError(f"base name must be a non-empty string, got {name!r}")
        with self._lock:
            if name in self._bases:
                raise DuplicateNameError(f"base {name!r} already exists")

    def _install_base(
        self, name: str, engine: EGraph, globals_values: Dict[str, Value], source: str
    ) -> Dict[str, Any]:
        base = BaseInfo(
            name=name, engine=engine, globals_values=globals_values, source=source
        )
        with self._lock:
            if name in self._bases:
                raise DuplicateNameError(f"base {name!r} already exists")
            self._bases[name] = base
        return base.info()

    def remove_base(self, name: str) -> None:
        with self._lock:
            if name not in self._bases:
                raise UnknownBaseError(f"no base named {name!r}")
            del self._bases[name]

    def bases(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [base.info() for base in self._bases.values()]

    # -- sessions -------------------------------------------------------------

    def create_session(self, base: Optional[str] = None) -> Session:
        """Create a session — empty, or forked in memory from a named base."""
        with self._lock:
            if base is not None:
                if base not in self._bases:
                    raise UnknownBaseError(f"no base named {base!r}")
                info = self._bases[base]
                session = self._new_session(
                    base, info.engine.fork(strategy=self.strategy), info.globals_values
                )
                info.forks += 1
            else:
                session = Session(self._next_id(), None, Evaluator(strategy=self.strategy))
        self._admit(session)
        return session

    def fork_session(self, session_id: str) -> Session:
        """Clone a live session: structural engine fork plus its globals."""
        parent = self.get(session_id)._acquire_live()
        try:
            engine = parent.engine.fork()
            globals_values = parent.evaluator.globals
        finally:
            parent.lock.release()
        with self._lock:
            session = self._new_session(parent.base, engine, globals_values)
        self._admit(session)
        return session

    def _new_session(
        self, base: Optional[str], engine: EGraph, globals_values: Dict[str, Value]
    ) -> Session:
        evaluator = Evaluator(engine)
        evaluator.globals = dict(globals_values)
        return Session(self._next_id(), base, evaluator)

    def _next_id(self) -> str:
        return f"s{next(self._ids)}"

    def _admit(self, session: Session) -> None:
        """Insert under the capacity cap, evicting idle LRU sessions first.

        Must be called *without* the manager lock held: capacity pressure
        may passivate a victim, and that disk write runs under the victim's
        own mutex with the table lock released so unrelated lookups never
        stall behind an fsync.  The capacity check and the insert happen
        under one lock hold per attempt, so concurrent admissions cannot
        overshoot the cap.
        """
        self._sweep_idle()
        session.manager = self
        while True:
            with self._lock:
                if len(self._sessions) < self.max_sessions:
                    self._sessions[session.id] = session
                    return
                victim = next(
                    (s for s in self._sessions.values() if not s.lock.locked()),
                    None,
                )
                if victim is None:
                    raise CapacityError(
                        f"all {self.max_sessions} sessions are busy; try again later"
                    )
            if not self._retire(victim):
                continue  # the victim turned busy under us; rescan

    def _retire(self, victim: Session) -> bool:
        """Passivate a session and drop it from the live table.

        Called without the manager lock.  The victim's mutex is taken
        non-blocking: a session that turned busy since the eviction scan is
        immune — return False so the caller rescans.  With a store the
        victim is checkpointed first; a checkpoint failure raises
        :class:`CheckpointError` and keeps the victim live: durable
        eviction must never silently destroy state it could not save.
        ``retired`` is published under the victim's mutex *after* a
        successful save, so any batch that subsequently wins the mutex sees
        the flag and chases the live incarnation (:meth:`Session._acquire_live`).
        The final table drop checks identity, not just the id — a
        concurrent restore may already have installed a fresh incarnation.
        """
        if not victim.lock.acquire(blocking=False):
            return False
        try:
            if self.store is not None:
                try:
                    self.store.save(victim)
                except Exception as error:
                    with self._lock:
                        self.checkpoint_failures += 1
                    raise CheckpointError(
                        f"cannot passivate session {victim.id!r}: {error}"
                    ) from error
            victim.retired = True
        finally:
            victim.lock.release()
        with self._lock:
            if self._sessions.get(victim.id) is victim:
                del self._sessions[victim.id]
            self.evictions += 1
            if self.store is not None:
                self.checkpoints += 1
                self.passivations += 1
        return True

    def _sweep_idle(self) -> None:
        if self.idle_ttl_s is None:
            return
        now = time.monotonic()
        with self._lock:
            expired = [
                s
                for s in self._sessions.values()
                if not s.lock.locked() and now - s.last_used > self.idle_ttl_s
            ]
        for session in expired:
            try:
                self._retire(session)
            except CheckpointError:
                pass  # unsavable: keep it live rather than destroy it

    def get(self, session_id: str) -> Session:
        """Look up a session and mark it most-recently-used.

        A session that was passivated (evicted/expired into the store, or
        checkpointed by a previous server process) is transparently
        restored from its checkpoint — callers cannot tell the difference.
        The restore's disk read and engine rebuild run with the manager
        lock released, so re-hydrating one large session never stalls
        lookups of the others.
        """
        session = self._lookup_live(session_id)
        if session is None:
            session = self._restore(session_id)
        if session is None:
            raise UnknownSessionError(
                f"no session {session_id!r} (evicted or never created)"
            )
        return session

    def _lookup_live(self, session_id: str) -> Optional[Session]:
        """Fast path: the session is in the table (and not a retirement
        orphan awaiting its final drop); touch its LRU slot and return it."""
        with self._lock:
            session = self._sessions.get(session_id)
            if session is None or session.retired:
                return None
            self._sessions.move_to_end(session_id)
            session.last_used = time.monotonic()
            return session

    def _restore(self, session_id: str) -> Optional[Session]:
        """Re-activate a passivated session from the store; None if absent.

        Single-flight per id: concurrent callers for the same session wait
        on one thread's restore (disk I/O runs without the manager lock)
        and then pick up the incarnation it admitted, so one session can
        never be re-hydrated into two rival objects.
        """
        if self.store is None:
            return None
        with self._restored:
            while session_id in self._restoring:
                self._restored.wait()
            session = self._sessions.get(session_id)
            if session is not None and not session.retired:
                self._sessions.move_to_end(session_id)
                session.last_used = time.monotonic()
                return session
            if not self.store.contains(session_id):
                return None
            self._restoring.add(session_id)
        try:
            try:
                evaluator, meta = self.store.load(session_id, strategy=self.strategy)
            except CheckpointError:
                with self._lock:
                    self.restore_failures += 1
                raise
            base = meta.get("base")
            session = Session(
                session_id, base if isinstance(base, str) else None, evaluator
            )
            batches = meta.get("batches")
            if isinstance(batches, int):
                session.batches = batches
            self._admit(session)
            with self._lock:
                self.restores += 1
            return session
        finally:
            with self._restored:
                self._restoring.discard(session_id)
                self._restored.notify_all()

    def checkpoint_session(self, session_id: str) -> Dict[str, Any]:
        """Checkpoint one session to the store now (it stays live)."""
        if self.store is None:
            raise CheckpointError(
                "no state dir configured; start the manager with state_dir= "
                "(repro-serve --state-dir) to enable checkpoints"
            )
        session = self.get(session_id)._acquire_live()
        try:
            try:
                document = self.store.save(session)
            except Exception as error:
                with self._lock:
                    self.checkpoint_failures += 1
                raise CheckpointError(
                    f"cannot checkpoint session {session_id!r}: {error}"
                ) from error
            with self._lock:
                self.checkpoints += 1
        finally:
            session.lock.release()
        return {
            "id": session_id,
            "path": self.store.path(session_id),
            "digest": document["digest"],
        }

    def checkpoint_all(self) -> int:
        """Checkpoint every live session (graceful shutdown); returns the
        number written.  Failures are counted, not raised — shutdown must
        save everything it still can."""
        if self.store is None:
            return 0
        with self._lock:
            sessions = list(self._sessions.values())
        written = 0
        for session in sessions:
            with session.lock:
                if session.retired:
                    continue  # already checkpointed on its way out
                try:
                    self.store.save(session)
                except Exception:
                    with self._lock:
                        self.checkpoint_failures += 1
                    continue
                with self._lock:
                    self.checkpoints += 1
                written += 1
        return written

    def remove_session(self, session_id: str) -> None:
        """Delete a session — live, passivated, or both (durably)."""
        with self._lock:
            live = self._sessions.pop(session_id, None)
            stored = (
                self.store.discard(session_id) if self.store is not None else False
            )
            if live is None and not stored:
                raise UnknownSessionError(f"no session {session_id!r}")

    def _passivated_ids(self) -> List[str]:
        if self.store is None:
            return []
        return [sid for sid in self.store.ids() if sid not in self._sessions]

    def sessions(self) -> List[Dict[str, Any]]:
        with self._lock:
            infos = [session.info() for session in self._sessions.values()]
            infos.extend(
                {"id": sid, "passivated": True} for sid in self._passivated_ids()
            )
            return infos

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            durability: Optional[Dict[str, Any]] = None
            if self.store is not None:
                durability = {
                    "state_dir": self.store.root,
                    "passivated": len(self._passivated_ids()),
                    "passivations": self.passivations,
                    "checkpoints": self.checkpoints,
                    "restores": self.restores,
                    "checkpoint_failures": self.checkpoint_failures,
                    "restore_failures": self.restore_failures,
                }
            return {
                "sessions": len(self._sessions),
                "max_sessions": self.max_sessions,
                "bases": len(self._bases),
                "evictions": self.evictions,
                "strategy": self.strategy,
                "idle_ttl_s": self.idle_ttl_s,
                "durability": durability,
                "compile_cache": CACHE.stats(),
            }
