"""Module entry point: ``python -m repro program.egg``."""

import sys

from .frontend.cli import main

if __name__ == "__main__":
    sys.exit(main())
