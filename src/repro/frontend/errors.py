"""Errors raised by the .egg text frontend.

Every frontend error carries a source location (1-based line and column)
and, when known, the file name, so the CLI can print
``file.egg:3:7: message`` and tests can assert on positions.  All of them
are :class:`repro.errors.ReproError` subclasses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ReproError


@dataclass(frozen=True)
class Loc:
    """A 1-based source position."""

    line: int
    col: int

    def __str__(self) -> str:
        return f"{self.line}:{self.col}"


class FrontendError(ReproError):
    """Base class for text-language errors; knows its source location."""

    def __init__(
        self,
        message: str,
        loc: Optional[Loc] = None,
        filename: Optional[str] = None,
    ) -> None:
        self.message = message
        self.loc = loc
        self.filename = filename
        self.line = loc.line if loc is not None else None
        self.col = loc.col if loc is not None else None
        prefix = ""
        if filename is not None:
            prefix += f"{filename}:"
        if loc is not None:
            prefix += f"{loc}: "
        elif prefix:
            prefix += " "
        super().__init__(prefix + message)


class ParseError(FrontendError):
    """Malformed surface syntax: unbalanced parens, bad literals, bad shapes."""


class UnknownCommandError(ParseError):
    """A top-level form whose head is neither a command nor a known symbol."""


class EvalError(FrontendError):
    """A well-formed command that fails against the engine's declarations."""


class ArityError(EvalError):
    """An application with the wrong number of arguments for its function."""


class SortError(EvalError):
    """A sort that is undeclared, or a literal of the wrong sort."""


class UnboundSymbolError(EvalError):
    """A bare symbol used where no binding (global or variable) exists."""
