"""Tests for the embedded DSL (``repro.dsl``): the typed public surface.

Covers the handle-based declaration API, operator-overloaded expressions,
rule/rewrite builders, rulesets and schedules, the typed run/check/extract
facade, and — crucially — the *error paths*: every diagnostic the DSL
promises (wrong arity, unknown sort, sort mismatch, unbound right-hand
variable, duplicate declarations, stale handles) is asserted by message.

The hypothesis property at the bottom checks the DSL round-trip: any
expression built through handles lowers to a core term that re-types
(``EGraph.expr_of``) to an equal term with an identical DSL rendering.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import EGraph, rule, set_, union, vars_
from repro.dsl import (
    ArityError,
    CheckError,
    DslError,
    DuplicateDeclarationError,
    Eq,
    SortMismatchError,
    StaleHandleError,
    String,
    UnboundVariableError,
    UnknownSortError,
    eq,
    f64,
    i64,
    lit,
    saturate,
    seq,
    var,
)
from repro.core.terms import TermApp, TermLit, TermVar
from repro.engine import EGraph as EngineEGraph


def math_engine():
    """The shared fixture: the README's Math datatype plus rewrite handles."""
    eg = EGraph()
    math = eg.sort("Math")
    num = eg.constructor("Num", (i64,), math)
    sym = eg.constructor("Var", (String,), math)
    add = eg.constructor("Add", (math, math), math, cost=2, op="+")
    mul = eg.constructor("Mul", (math, math), math, cost=4, op="*")
    shl = eg.constructor("Shl", (math, math), math, cost=1, op="<<")
    return eg, math, num, sym, add, mul, shl


# ---------------------------------------------------------------------------
# Declarations return handles
# ---------------------------------------------------------------------------


def test_sort_and_function_handles():
    eg, math, num, sym, add, mul, shl = math_engine()
    assert math.name == "Math" and math.is_eq_sort
    assert num.name == "Num" and num.arity == 1
    assert num.out_sort is math
    assert "Num(i64) -> Math" == num.signature()
    # The engine-level declaration carries the DSL declaration site.
    assert "test_dsl.py" in eg.engine.decls["Num"].decl_site


def test_builtin_sort_handles_are_shared():
    eg1, eg2 = EGraph(), EGraph()
    r1 = eg1.relation("edge", i64, i64)
    r2 = eg2.relation("edge", i64, i64)
    assert r1.arg_sorts == r2.arg_sorts == (i64, i64)


def test_declarations_accept_sort_names_as_strings():
    eg = EGraph()
    eg.sort("T")
    f = eg.function("f", ("T",), "T")
    assert f.out_sort.name == "T"


def test_expr_building_and_repr():
    eg, math, num, sym, add, mul, shl = math_engine()
    e = mul(num(2), sym("a"))
    assert isinstance(e.term, TermApp)
    assert repr(e) == "Mul(Num(2), Var('a'))"
    assert e.sort is math
    # Operators dispatch through the declared op bindings.
    x, y = vars_("x y", math)
    assert repr(x * y) == "Mul(x, y)"
    assert repr(x + y) == "Add(x, y)"
    assert repr(x << num(1)) == "Shl(x, Num(1))"


def test_primitive_operator_expressions():
    (d,) = vars_("d", i64)
    e = d + 1
    assert repr(e) == "+(d, 1)"
    assert e.sort.name == "i64"
    guard = d < 10
    assert guard.sort.name == "bool"
    refl = 1 + d
    assert repr(refl) == "+(1, d)"


def test_literal_widening_coercion():
    eg = EGraph()
    f = eg.function("f", (f64,), f64, merge="error")
    e = f(1)  # i64 literal widens to f64
    arg = e.term.args[0]
    assert isinstance(arg, TermLit) and arg.value.sort == "f64"
    assert lit(1, f64).term.value.data == 1.0


# ---------------------------------------------------------------------------
# Error paths (the satellite checklist: each asserts the diagnostic)
# ---------------------------------------------------------------------------


def test_arity_mismatch_diagnostic():
    eg, math, num, *_ = math_engine()
    with pytest.raises(ArityError) as exc:
        num(1, 2)
    msg = str(exc.value)
    assert "Num expects 1 argument(s)" in msg
    assert "Num(i64) -> Math" in msg
    assert "got 2" in msg
    assert "declared at" in msg and "test_dsl.py" in msg


def test_unknown_sort_diagnostic():
    eg = EGraph()
    eg.sort("Math")
    with pytest.raises(UnknownSortError) as exc:
        eg.function("F", ("Matth",), "Math")
    msg = str(exc.value)
    assert "declaration of 'F'" in msg
    assert "unknown sort 'Matth'" in msg
    assert "Math" in msg  # known sorts are listed


def test_foreign_sort_handle_diagnostic():
    eg1, eg2 = EGraph(), EGraph()
    foreign = eg1.sort("Math")
    with pytest.raises(UnknownSortError) as exc:
        eg2.function("F", (foreign,), foreign)
    assert "belongs to a different EGraph" in str(exc.value)
    assert "test_dsl.py" in str(exc.value)


def test_duplicate_function_declaration_diagnostic():
    eg, math, num, *_ = math_engine()
    with pytest.raises(DuplicateDeclarationError) as exc:
        eg.constructor("Num", (i64,), math)
    msg = str(exc.value)
    assert "'Num' already declared" in msg
    assert "test_dsl.py" in msg  # points at the original declaration


def test_duplicate_sort_declaration_diagnostic():
    eg = EGraph()
    eg.sort("Math")
    with pytest.raises(DuplicateDeclarationError) as exc:
        eg.sort("Math")
    assert "'Math' already declared" in str(exc.value)


def test_sort_mismatch_on_call_diagnostic():
    eg, math, num, sym, add, mul, shl = math_engine()
    with pytest.raises(SortMismatchError) as exc:
        mul(num(1), 2)  # plain int where a Math expression is needed
    msg = str(exc.value)
    assert "Mul argument 2" in msg
    assert "'Math'" in msg and "int" in msg
    with pytest.raises(SortMismatchError):
        num(sym("a"))  # Math expression where i64 is needed


def test_unbound_rhs_variable_in_rewrite_diagnostic():
    eg, math, *_ = math_engine()
    x, y, z = vars_("x y z", math)
    with pytest.raises(UnboundVariableError) as exc:
        (x * y).to(x * z)
    msg = str(exc.value)
    assert "'z'" in msg
    assert "not bound" in msg
    assert "x, y" in msg  # says what IS bound


def test_unbound_variable_in_rule_action_diagnostic():
    eg, math, num, sym, add, mul, shl = math_engine()
    x, y, z = vars_("x y z", math)
    with pytest.raises(UnboundVariableError) as exc:
        rule(name="bad").when(eq(x, mul(x, y))).then(union(x, z))
    msg = str(exc.value)
    assert "rule 'bad'" in msg and "'z'" in msg
    # let-bound names become available to later actions
    from repro import let

    r = (
        rule(name="ok")
        .when(eq(x, mul(x, y)))
        .then(let("w", mul(y, y)), union(x, var("w", math)))
    )
    assert len(r.actions) == 2


def test_rewrite_requires_eq_sorted_application():
    eg = EGraph()
    f = eg.function("f", (i64,), i64, merge="error")
    (x,) = vars_("x", i64)
    with pytest.raises(SortMismatchError) as exc:
        f(x).to(x)
    assert "eq-sorted" in str(exc.value)
    with pytest.raises(DslError):
        x.to(x)  # a bare variable is not an application


def test_equality_fact_sort_check_and_no_truth_value():
    eg, math, num, *_ = math_engine()
    (d,) = vars_("d", i64)
    with pytest.raises(SortMismatchError):
        Eq(num(1), d)
    fact = num(1) == num(1)
    assert isinstance(fact, Eq)
    with pytest.raises(DslError):
        bool(fact)  # == builds a fact, not a comparison


def test_operator_without_binding_diagnostic():
    eg = EGraph()
    t = eg.sort("T")
    mk = eg.constructor("Mk", (i64,), t)
    with pytest.raises(DslError) as exc:
        mk(1) + mk(2)
    assert "has no '+' operator" in str(exc.value)
    assert "op='+'" in str(exc.value)


def test_duplicate_operator_binding_diagnostic():
    eg, math, *_ = math_engine()
    with pytest.raises(DuplicateDeclarationError) as exc:
        eg.constructor("Mul2", (math, math), math, op="*")
    msg = str(exc.value)
    assert "already binds operator '*'" in msg and "'Mul'" in msg
    # The failed binding must not leave Mul2 half-declared: the corrected
    # retry (without the clashing op) works.
    mul2 = eg.constructor("Mul2", (math, math), math)
    assert mul2.arity == 2


def test_operator_binding_rejected_on_primitive_and_unsupported():
    eg = EGraph()
    t = eg.sort("T")
    # Primitive handles are shared across EGraphs; a binding there would
    # be global and unreachable (primitives always dispatch built-ins).
    with pytest.raises(DslError) as exc:
        eg.function("myadd", (i64, i64), i64, merge="error", op="+")
    assert "eq-sort" in str(exc.value)
    # ...and the failed declaration left no trace on the engine.
    eg.function("myadd", (i64, i64), i64, merge="error")
    with pytest.raises(DslError) as exc:
        eg.constructor("Weird", (t, t), t, op="**")
    assert "supported operators" in str(exc.value)
    eg.constructor("Weird", (t, t), t)  # retry clean


def test_register_literal_coercion_hook():
    from repro.core.values import (
        _LITERAL_COERCIONS,
        Value,
        register_literal_coercion,
    )

    with pytest.raises(ValueError):
        register_literal_coercion("i64", "i64", lambda d: d)
    # Teach the core a bool -> i64 widening; DSL literal lifting uses it.
    register_literal_coercion("bool", "i64", lambda d: Value("i64", int(d)))
    try:
        eg = EGraph()
        f = eg.function("f", (i64,), i64, merge="error")
        arg = f(True).term.args[0]
        assert isinstance(arg, TermLit)
        assert arg.value.sort == "i64" and arg.value.data == 1
    finally:
        del _LITERAL_COERCIONS[("bool", "i64")]


def test_comparison_exprs_have_no_truth_value():
    (x,) = vars_("x", i64)
    for guard in (x != 5, x < 5, x >= 5):
        with pytest.raises(DslError):
            bool(guard)  # `if x != y:` must fail loudly, like `==`


def test_pop_rolls_back_operator_bindings_and_ruleset_bookkeeping():
    eg = EGraph()
    math = eg.sort("Math")
    eg.push()
    mul = eg.constructor("Mul", (math, math), math, op="*")
    x, y = vars_("x y", math)
    rs = eg.ruleset("opt")
    rs.register((x * y).to(y * x))
    assert len(rs) == 1
    eg.pop()
    # The operator binding rolled back with the declaration: re-declaring
    # the same op-bound constructor works (no spurious duplicate).
    mul2 = eg.constructor("Mul", (math, math), math, op="*")
    assert repr(x * y) == "Mul(x, y)"
    assert mul2(x, y).sort is math
    # Ruleset bookkeeping rolled back too.
    assert len(eg.ruleset("opt")) == 0


def test_stale_handle_after_pop_diagnostic():
    eg, math, *_ = math_engine()
    eg.push()
    inner = eg.constructor("Inner", (i64,), math)
    eg.pop()
    with pytest.raises(StaleHandleError) as exc:
        inner(1)
    msg = str(exc.value)
    assert "'Inner'" in msg and "popped" in msg
    # The sort survives the pop; re-declaring the function works again.
    again = eg.constructor("Inner", (i64,), math)
    assert repr(again(1)) == "Inner(1)"


def test_add_rejects_non_ground_expressions():
    eg, math, num, sym, add, mul, shl = math_engine()
    (x,) = vars_("x", math)
    with pytest.raises(UnboundVariableError) as exc:
        eg.add(mul(x, num(1)))
    assert "free variable" in str(exc.value) and "x" in str(exc.value)


# ---------------------------------------------------------------------------
# End-to-end behaviour through the typed facade
# ---------------------------------------------------------------------------


def test_equality_saturation_end_to_end():
    eg, math, num, sym, add, mul, shl = math_engine()
    x, y = vars_("x y", math)
    eg.register(
        (x * y).to(y * x, name="mul-comm"),
        (x * num(2)).to(x << num(1), name="mul2-to-shl"),
    )
    expr = mul(num(2), sym("a"))
    target = shl(sym("a"), num(1))
    eg.add(expr)
    report = eg.run(10)
    assert report.saturated
    assert eg.check(expr == target) >= 1
    best = eg.extract(expr)
    assert best.cost == 3
    assert best.term == target.term
    assert repr(best.expr) == "Shl(Var('a'), Num(1))"
    assert str(best) == "(Shl (Var 'a') (Num 1))"


def test_datalog_min_merge_end_to_end():
    eg = EGraph()
    edge = eg.relation("edge", i64, i64)
    path = eg.function("path", (i64, i64), i64, merge="min")
    x, y, z = vars_("x y z", i64)
    (d,) = vars_("d", i64)
    eg.register(
        rule(name="edge-is-path").when(edge(x, y)).then(set_(path(x, y), 1)),
        rule(name="extend-path")
        .when(d == path(x, y), edge(y, z))
        .then(set_(path(x, z), d + 1)),
    )
    for a, b in [(1, 2), (2, 3), (3, 4), (1, 3)]:
        eg.add(edge(a, b))
    assert eg.run(50).saturated
    lengths = {(k[0].data, k[1].data): v.data for k, v in path.rows()}
    assert lengths[(1, 4)] == 2  # via the 1->3 shortcut, not 3 hops
    assert len(path) == len(lengths)


def test_primitive_guard_facts():
    eg = EGraph()
    edge = eg.relation("edge", i64, i64)
    big = eg.relation("big", i64)
    x, y = vars_("x y", i64)
    eg.register(rule(name="big").when(edge(x, y), y > x).then(big(y)))
    eg.add(edge(1, 5))
    eg.add(edge(5, 2))
    eg.run(5)
    assert eg.check(big(lit(5))) == 1
    with pytest.raises(CheckError):
        eg.check(big(lit(2)))


def test_disequality_guard():
    eg = EGraph()
    edge = eg.relation("edge", i64, i64)
    loopless = eg.relation("loopless", i64, i64)
    x, y = vars_("x y", i64)
    eg.register(rule(name="nl").when(edge(x, y), x != y).then(loopless(x, y)))
    eg.add(edge(1, 1))
    eg.add(edge(1, 2))
    eg.run(5)
    assert eg.check(loopless(lit(1), lit(2))) == 1
    with pytest.raises(CheckError):
        eg.check(loopless(lit(1), lit(1)))


def test_ruleset_objects_and_schedules():
    eg, math, num, sym, add, mul, shl = math_engine()
    opt = eg.ruleset("opt")
    fold = eg.ruleset("fold")

    @opt.register
    def mul_comm():
        a, b = vars_("a b", math)
        return (a * b).to(b * a)

    @fold.register
    def fold_rules():
        a, b = vars_("a b", math)
        return [
            (a * num(1)).to(a),
            (a + num(0)).to(a),
        ]

    assert opt.rule_names == ["mul_comm"]
    assert len(fold.rule_names) == 2
    expr = mul(num(1), sym("v"))
    eg.add(expr)
    # Phase 1: only commutativity; phase 2: folding to the bare symbol.
    report = eg.run(seq(opt.saturate(), fold.repeat(3)))
    assert report.iterations >= 2
    assert eg.extract(expr).term == sym("v").term
    # A default-ruleset run must not fire the named rulesets' rules.
    before = eg.stats()["updates"]
    eg.run(3)
    assert eg.stats()["updates"] == before


def test_register_on_named_ruleset_via_keyword():
    eg, math, num, sym, add, mul, shl = math_engine()
    x, y = vars_("x y", math)
    names = eg.register((x * y).to(y * x), ruleset="opt")
    assert names and eg.ruleset("opt").rule_names == names
    assert eg.engine.rulesets["opt"] == names


def test_run_argument_validation():
    eg, *_ = math_engine()
    with pytest.raises(DslError):
        eg.run(saturate(), limit=3)
    with pytest.raises(DslError):
        eg.run(10, limit=5)  # contradictory spellings of the limit
    with pytest.raises(DslError):
        eg.run("fast")
    report = eg.run()  # default: one iteration
    assert report.iterations <= 1


def test_default_ruleset_handle_tracks_registrations():
    eg, math, *_ = math_engine()
    default = eg.ruleset()
    x, y = vars_("x y", math)
    names = eg.register((x * y).to(y * x))
    assert default.rule_names == names and len(default) == 1


def test_scoped_snapshot_context_manager():
    eg, math, num, sym, add, mul, shl = math_engine()
    a2 = mul(num(2), sym("a"))
    eg.add(a2)
    with eg.scoped():
        x, y = vars_("x y", math)
        eg.register((x * y).to(y * x))
        eg.run(5)
        assert eg.check(a2 == mul(sym("a"), num(2)))
    # The union (and the rule) vanish with the scope.
    with pytest.raises(CheckError):
        eg.check(a2 == mul(sym("a"), num(2)))
    assert eg.engine.rules == {}


def test_union_and_are_equal():
    eg, math, num, sym, add, mul, shl = math_engine()
    eg.union(num(1), add(num(1), num(0)))
    assert eg.are_equal(num(1), add(num(1), num(0)))
    with pytest.raises(SortMismatchError):
        eg.union(lit(1), lit(2))  # primitives cannot be unioned


def test_query_returns_substitutions():
    eg = EGraph()
    edge = eg.relation("edge", i64, i64)
    eg.add(edge(1, 2))
    eg.add(edge(2, 3))
    x, y = vars_("x y", i64)
    matches = eg.query(edge(x, y))
    assert {(m["x"].data, m["y"].data) for m in matches} == {(1, 2), (2, 3)}


def test_engine_escape_hatch_accepts_dsl_exprs():
    """Exprs implement __term__, so the string-level engine takes them raw."""
    eg, math, num, sym, add, mul, shl = math_engine()
    engine: EngineEGraph = eg.engine
    value = engine.add(num(7))  # Expr passed where TermLike is expected
    assert value.sort == "Math"
    engine.union(num(7), add(num(7), num(0)))
    assert engine.are_equal(num(7), add(num(7), num(0)))


# ---------------------------------------------------------------------------
# Round-trip property: DSL -> core terms -> DSL
# ---------------------------------------------------------------------------

_rt_engine = math_engine()


def _rt_exprs():
    eg, math, num, sym, add, mul, shl = _rt_engine
    leaves = st.one_of(
        st.integers(min_value=-8, max_value=8).map(num),
        st.sampled_from("abc").map(sym),
        st.sampled_from(["x", "y", "z"]).map(lambda n: var(n, math)),
    )
    return st.recursive(
        leaves,
        lambda sub: st.one_of(
            st.tuples(sub, sub).map(lambda p: add(p[0], p[1])),
            st.tuples(sub, sub).map(lambda p: mul(p[0], p[1])),
            st.tuples(sub, sub).map(lambda p: shl(p[0], p[1])),
        ),
        max_leaves=12,
    )


@settings(max_examples=120, deadline=None)
@given(_rt_exprs())
def test_roundtrip_dsl_terms_dsl(expr):
    """Lowering to core terms and re-typing preserves term and rendering."""
    eg, math, *_ = _rt_engine
    term = expr.__term__()
    rebuilt = eg.expr_of(term, expected=math)
    assert rebuilt.term == term
    assert repr(rebuilt) == repr(expr)
    assert rebuilt.sort.name == "Math"


def test_expr_of_rejects_ill_typed_terms():
    eg, math, num, sym, add, mul, shl = math_engine()
    with pytest.raises(ArityError):
        eg.expr_of(TermApp("Num", ()))
    with pytest.raises(DslError):
        eg.expr_of(TermApp("Nope", (TermVar("x"),)))
    with pytest.raises(SortMismatchError):
        eg.expr_of(TermApp("Num", (sym("a").term,)))
    with pytest.raises(DslError):
        eg.expr_of(TermVar("x"))  # no expected sort to adopt


def test_pop_beyond_depth_raises_dsl_error_and_preserves_scope():
    eg = EGraph()
    with pytest.raises(DslError, match=r"pop 1 without matching push \(stack depth 0\)"):
        eg.pop()
    eg.push()
    s = eg.sort("Scoped")
    with pytest.raises(DslError, match=r"pop 2 without matching push \(stack depth 1\)"):
        eg.pop(2)
    # The failed pop neither consumed the snapshot nor staled the handle.
    c = eg.constructor("C", (), s)
    eg.add(c())
    assert eg.pop() == 0
    with pytest.raises(StaleHandleError):
        c()
