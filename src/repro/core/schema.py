"""Function schemas: declarations of egglog functions and relations.

An egglog function (Section 3.2 of the paper) is a map from argument tuples
to a single output value, with a *merge expression* that says how to repair a
functional-dependency violation when the same (canonicalized) arguments end
up with two different outputs, and a *default expression* used when a term is
evaluated before the function is defined on it ("get-or-default").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Tuple

from .values import UNIT, Value

# A merge function combines the old and the new output value into the value
# that should be stored.  The engine takes care of performing the union when
# the output sort is an eq-sort and no merge function is given.
MergeFn = Callable[[Value, Value], Value]

# A default function produces the output value for a not-yet-defined key.  It
# receives the argument tuple (canonicalized) so defaults may depend on it.
DefaultFn = Callable[[Tuple[Value, ...]], Value]

MERGE_UNION = "union"
MERGE_ERROR = "error"


@dataclass
class FunctionDecl:
    """Declaration of an egglog function.

    Attributes:
        name: unique function symbol.
        arg_sorts: names of the argument sorts.
        out_sort: name of the output sort.
        merge: how to resolve functional-dependency conflicts.  One of the
            strings ``"union"`` (only valid for eq-sort outputs) or
            ``"error"``, or a callable ``(old, new) -> merged``.
        default: output for missing keys.  ``None`` means: fresh id for
            eq-sort outputs (the "make-set" default from the paper), unit for
            Unit outputs, and an error for other primitive outputs.  A
            constant :class:`Value` or a callable over the argument tuple may
            be supplied instead.
        cost: per-node cost used by extraction.
        unextractable: if True, extraction never picks this function.
        is_datatype_constructor: marks constructors introduced by
            ``datatype`` sugar (used by extraction and pretty printing).
        decl_site: where the declaration came from — a ``file:line`` string
            for embedded-DSL declarations, a source location for .egg
            programs, or empty when unknown.  Surfaced in diagnostics so a
            bad *use* can point back at its *declaration*.
    """

    name: str
    arg_sorts: Tuple[str, ...]
    out_sort: str
    merge: object = None
    default: object = None
    cost: int = 1
    unextractable: bool = False
    is_datatype_constructor: bool = False
    decl_site: str = ""

    def __post_init__(self) -> None:
        self.arg_sorts = tuple(self.arg_sorts)
        if self.merge is None:
            # The paper's defaults: union for eq-sorted outputs (set by the
            # engine, which knows the sort kinds); error otherwise.  We leave
            # None here and let the engine normalize it at declaration time.
            pass

    @property
    def arity(self) -> int:
        return len(self.arg_sorts)

    @property
    def is_relation(self) -> bool:
        """A relation is a function whose output sort is Unit."""
        return self.out_sort == UNIT

    def signature(self) -> str:
        args = " ".join(self.arg_sorts)
        return f"({self.name} ({args}) {self.out_sort})"


@dataclass
class RunReport:
    """Statistics about one call to ``EGraph.run``.

    One report covers one or more search → apply → rebuild iterations of the
    semi-naïve scheduler (Section 4.3).  ``saturated`` means the last
    iteration changed nothing — the fixpoint was reached.
    """

    iterations: int = 0
    saturated: bool = False
    search_time: float = 0.0
    apply_time: float = 0.0
    rebuild_time: float = 0.0
    num_matches: int = 0
    updated: bool = False
    per_rule_matches: dict = field(default_factory=dict)
    #: Delta searches skipped because the atom's table had no rows newer
    #: than the rule's watermark (the scheduler's zero-delta short-circuit).
    delta_skips: int = 0
    #: Why the run stopped early, if a budget cut it short: ``"deadline"``
    #: (wall-clock budget exhausted) or ``"max-nodes"`` (node-count cap
    #: reached).  Empty when the run completed normally (saturation or the
    #: iteration limit).  Budgets are checked *between* iterations, so the
    #: report always describes a consistent database — the run never stops
    #: mid-iteration.
    stopped_reason: str = ""

    @property
    def total_time(self) -> float:
        """Total wall-clock time across all three phases."""
        return self.search_time + self.apply_time + self.rebuild_time

    def summary(self) -> str:
        """One-line human-readable digest, for examples and logs."""
        if self.stopped_reason:
            status = f"stopped: {self.stopped_reason}"
        elif self.saturated:
            status = "saturated"
        else:
            status = "iteration limit"
        return (
            f"{self.iterations} iteration(s), {self.num_matches} match(es), "
            f"{status}, {self.total_time * 1000:.1f} ms "
            f"(search {self.search_time * 1000:.1f} / apply {self.apply_time * 1000:.1f} "
            f"/ rebuild {self.rebuild_time * 1000:.1f})"
        )

    def merge_with(self, other: "RunReport") -> None:
        """Accumulate another report (e.g. one iteration) into this one."""
        self.iterations += other.iterations
        self.saturated = other.saturated
        self.search_time += other.search_time
        self.apply_time += other.apply_time
        self.rebuild_time += other.rebuild_time
        self.num_matches += other.num_matches
        self.updated = self.updated or other.updated
        self.delta_skips += other.delta_skips
        self.stopped_reason = other.stopped_reason or self.stopped_reason
        for name, count in other.per_rule_matches.items():
            self.per_rule_matches[name] = self.per_rule_matches.get(name, 0) + count
