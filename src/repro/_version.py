"""Single source of the package version.

``__version__`` is the in-tree fallback; :func:`package_version` prefers
the installed distribution's metadata (``pip install -e .`` keeps the two
in sync via ``pyproject.toml``) so ``--version`` flags and snapshot/BENCH
metadata report what is actually installed, while source checkouts run
from ``PYTHONPATH`` still get a sensible answer.
"""

from __future__ import annotations

__version__ = "0.1.0"

#: The distribution name declared in pyproject.toml.
DISTRIBUTION = "egglog-repro"


def package_version() -> str:
    """The installed version of this package, or the in-tree fallback."""
    try:
        from importlib import metadata

        return metadata.version(DISTRIBUTION)
    except Exception:
        return __version__
