"""Named fault-injection points for durability testing.

The crash-safety claims this repo makes — a failed batch rolls the session
back byte-identically, a crashed checkpoint never corrupts the on-disk
snapshot — are only worth anything if the failure paths actually run.
This module plants named **injection points** on those paths; each is a
:func:`trip` call that does nothing until a test (or an operator doing a
game-day drill) **arms** it.

Registered injection points:

============================  =====================================================
point                         where it fires
============================  =====================================================
``snapshot.write``            mid temp-file write in ``write_snapshot`` (after a
                              partial prefix of the document is on disk)
``snapshot.rename``           after the temp file is written and fsynced, before
                              the atomic ``os.replace`` onto the destination
``batch.op``                  before op *k* of a JSON session program
                              (``tag`` is the op index)
``egg.command``               before command *k* of an ``.egg`` program
                              (``tag`` is the command index)
``checkpoint``                entry of a checkpoint-store save
                              (``tag`` is the session id)
``restore``                   entry of a checkpoint-store load
                              (``tag`` is the session id)
============================  =====================================================

Arming is programmatic (:meth:`FaultPlan.arm`) or via the ``REPRO_FAULTS``
environment variable, read lazily — once, at the first injection-point
trip (or :meth:`FaultPlan.armed`/:meth:`FaultPlan.reset` call), never at
import, so a malformed spec surfaces as one clear ``ValueError`` naming
the variable instead of a confusing import-time traceback from whichever
module happened to import this one first::

    REPRO_FAULTS="snapshot.rename:1:exit"   repro-serve ...   # crash once
    REPRO_FAULTS="batch.op:2,checkpoint:1"  pytest ...        # raise faults

Each spec is ``point[:times[:action]]`` — *times* defaults to 1, *action*
is ``raise`` (an :class:`InjectedFault`) or ``exit`` (``os._exit(70)``,
simulating a hard crash with no cleanup, not even ``finally`` blocks).
The fast path is one falsy check on an empty dict, so production traffic
pays nothing for the hooks.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Optional

#: Process exit status used by ``action="exit"`` faults (EX_SOFTWARE).
CRASH_EXIT_CODE = 70


class InjectedFault(Exception):
    """The failure a tripped ``raise`` fault throws at its injection point."""

    def __init__(self, point: str, tag: object = None) -> None:
        at = f" (tag {tag!r})" if tag is not None else ""
        super().__init__(f"injected fault at {point!r}{at}")
        self.point = point
        self.tag = tag


class _Armed:
    __slots__ = ("remaining", "action", "tag")

    def __init__(self, remaining: int, action: str, tag: object) -> None:
        self.remaining = remaining
        self.action = action
        self.tag = tag


class FaultPlan:
    """A thread-safe registry of armed faults, keyed by injection point."""

    def __init__(self, env_var: Optional[str] = None) -> None:
        self._lock = threading.Lock()
        self._armed: Dict[str, _Armed] = {}
        #: Environment variable consulted lazily for a fault spec; the
        #: process-wide plan binds ``REPRO_FAULTS``, bare test plans none.
        self._env_var = env_var
        self._env_checked = env_var is None
        self._env_lock = threading.Lock()

    def _check_env(self) -> None:
        """Arm faults from the bound env var once, on first use.

        Deliberately lazy (not at import): a malformed spec raises one
        clear ``ValueError`` naming the variable at the first injection
        point, instead of breaking every ``import repro.*`` with a
        traceback that points nowhere near the real mistake.  ``_env_lock``
        never nests inside ``_lock`` (only the reverse, via
        :meth:`load_spec`), so the two locks cannot deadlock.
        """
        with self._env_lock:
            if self._env_checked:
                return
            try:
                spec = os.environ.get(self._env_var, "")
                if spec:
                    try:
                        self.load_spec(spec)
                    except (TypeError, ValueError) as error:
                        raise ValueError(
                            f"malformed {self._env_var}={spec!r}: {error}"
                        ) from None
            finally:
                # Checked even on failure: report the bad spec once,
                # loudly, rather than on every subsequent trip.
                self._env_checked = True

    def arm(
        self,
        point: str,
        *,
        times: int = 1,
        action: str = "raise",
        tag: object = None,
    ) -> None:
        """Make the next ``times`` trips of ``point`` fail.

        ``action`` is ``"raise"`` (throw :class:`InjectedFault`) or
        ``"exit"`` (hard process exit — simulates a crash).  A non-``None``
        ``tag`` restricts the fault to trips carrying that tag (e.g. one
        specific op index or session id); untagged arming matches every
        trip of the point.
        """
        if times < 1:
            raise ValueError(f"times must be >= 1, got {times}")
        if action not in ("raise", "exit"):
            raise ValueError(f"unknown fault action {action!r} (raise|exit)")
        with self._lock:
            self._armed[point] = _Armed(times, action, tag)

    def reset(self) -> None:
        """Disarm everything (test teardown), env-armed faults included."""
        with self._env_lock:
            self._env_checked = True  # a reset plan never re-arms from env
        with self._lock:
            self._armed.clear()

    def armed(self) -> Dict[str, int]:
        """Remaining trip counts per armed point (introspection/tests)."""
        if not self._env_checked:
            self._check_env()
        with self._lock:
            return {point: fault.remaining for point, fault in self._armed.items()}

    def trip(self, point: str, tag: object = None) -> None:
        """Fire ``point``; fails iff a matching fault is armed.

        The no-fault fast path is two falsy attribute checks — injection
        sites are essentially free in production.
        """
        if not self._env_checked:
            self._check_env()
        if not self._armed:
            return
        with self._lock:
            fault = self._armed.get(point)
            if fault is None or (fault.tag is not None and fault.tag != tag):
                return
            fault.remaining -= 1
            if fault.remaining <= 0:
                del self._armed[point]
            action = fault.action
        if action == "exit":
            os._exit(CRASH_EXIT_CODE)
        raise InjectedFault(point, tag)

    def load_spec(self, spec: str) -> None:
        """Arm faults from a ``point[:times[:action]],...`` spec string."""
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            fields = part.split(":")
            if len(fields) > 3 or not fields[0]:
                raise ValueError(f"malformed fault spec {part!r}")
            times = int(fields[1]) if len(fields) > 1 and fields[1] else 1
            action = fields[2] if len(fields) > 2 else "raise"
            self.arm(fields[0], times=times, action=action)


#: The process-wide plan every injection site consults; arms lazily from
#: ``REPRO_FAULTS`` on first use.
FAULTS = FaultPlan(env_var="REPRO_FAULTS")


def trip(point: str, tag: object = None) -> None:
    """Module-level shorthand for ``FAULTS.trip`` (the injection-site call)."""
    FAULTS.trip(point, tag)
