"""Rules, rewrites, actions, and rulesets for the embedded DSL.

The DSL's rule layer is a thin, *validating* front over the engine's rule
IR (:mod:`repro.engine.rule` / :mod:`repro.engine.actions`):

* facts are :class:`~repro.dsl.expr.Expr` applications (relation atoms,
  primitive guards) or :class:`Eq` equalities built by ``lhs == rhs``;
* actions are built by :func:`union`, :func:`set_`, :func:`delete`,
  :func:`let`, :func:`panic`, or a bare expression (inserted for effect);
* ``rule(...).when(...).then(...)`` assembles a :class:`DslRule`;
  ``lhs.to(rhs)`` assembles a :class:`Rewrite`;
* :class:`Ruleset` groups registered rules under a name and yields
  schedule fragments (``rs.saturate()``, ``rs.run(n)``, ``rs.repeat(n)``)
  that compose with ``seq(...)`` and friends.

Validation happens at *construction* time: sort mismatches, non-application
facts, and right-hand-side variables the body never binds are all reported
before the engine sees the rule.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..core.terms import Term, TermApp
from ..engine.actions import Action
from ..engine.actions import Delete as DeleteAction
from ..engine.actions import Expr as ExprAction
from ..engine.actions import Let as LetAction
from ..engine.actions import Panic as PanicAction
from ..engine.actions import Set as SetAction
from ..engine.actions import Union as UnionAction
from ..engine.rule import EqFact, Fact
from ..engine.rule import Rule as EngineRule
from ..engine.rule import birewrite as engine_birewrite
from ..engine.rule import rewrite as engine_rewrite
from ..engine.schedule import Repeat, Run, Saturate
from .errors import DslError, SortMismatchError, UnboundVariableError
from .expr import Expr, Function, expr_repr, lift

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .egraph import EGraph


class Eq:
    """An equality fact ``lhs == rhs`` between same-sorted expressions."""

    __slots__ = ("lhs", "rhs")

    def __init__(self, lhs: Expr, rhs: Expr) -> None:
        if lhs.sort.name != rhs.sort.name:
            raise SortMismatchError(
                f"cannot equate sort {lhs.sort.name!r} with {rhs.sort.name!r}: "
                f"{lhs!r} == {rhs!r}"
            )
        self.lhs = lhs
        self.rhs = rhs

    def lower(self) -> EqFact:
        return EqFact(self.lhs.term, self.rhs.term)

    def variables(self):
        yield from self.lhs.variables()
        yield from self.rhs.variables()

    def __bool__(self) -> bool:
        raise DslError(
            f"an equality fact ({self!r}) has no truth value; pass it to "
            f"check()/when()/conditions instead of using it in a boolean context"
        )

    def __repr__(self) -> str:
        return f"{self.lhs!r} == {self.rhs!r}"


def eq(lhs: Expr, rhs: object) -> Eq:
    """Explicit spelling of ``lhs == rhs`` (useful in comprehensions)."""
    if not isinstance(lhs, Expr):
        raise DslError(f"eq() needs a DSL expression on the left, got {lhs!r}")
    return Eq(lhs, lift(rhs, lhs.sort, "eq right-hand side"))


FactLike = Union[Expr, Eq]


def lower_fact(fact: FactLike) -> Fact:
    """Lower a DSL fact to the engine's fact representation."""
    if isinstance(fact, Eq):
        return fact.lower()
    if isinstance(fact, Expr):
        if not isinstance(fact.term, TermApp):
            raise DslError(
                f"a fact must be a function application or an equality, "
                f"got {fact!r}"
            )
        return fact.term
    raise DslError(f"expected a DSL fact (expression or equality), got {fact!r}")


# ---------------------------------------------------------------------------
# Actions
# ---------------------------------------------------------------------------


def _require_call(expr: Expr, what: str) -> TermApp:
    if not isinstance(expr, Expr) or not isinstance(expr.term, TermApp):
        raise DslError(f"{what} needs a function application, got {expr!r}")
    return expr.term


def union(lhs: Expr, rhs: object) -> UnionAction:
    """Action: merge the e-classes of two same-sorted eq expressions."""
    if not isinstance(lhs, Expr):
        raise DslError(f"union() needs a DSL expression on the left, got {lhs!r}")
    if not lhs.sort.is_eq_sort:
        raise SortMismatchError(
            f"union() needs eq-sorted expressions, got sort {lhs.sort.name!r} "
            f"in {lhs!r} [sort declared at {lhs.sort.decl_site}]"
        )
    rhs_expr = lift(rhs, lhs.sort, "union right-hand side")
    return UnionAction(lhs.term, rhs_expr.term)


def set_(call: Expr, value: object) -> SetAction:
    """Action: write ``f(args...) = value`` (merge resolves conflicts)."""
    app = _require_call(call, "set_()")
    value_expr = lift(value, call.sort, f"set_ value for {app.func}")
    return SetAction(app, value_expr.term)


def delete(call: Expr) -> DeleteAction:
    """Action: remove the row for ``f(args...)`` if present."""
    return DeleteAction(_require_call(call, "delete()"))


def let(name: str, expr: Expr) -> LetAction:
    """Action: bind ``name`` to ``expr``'s value for the following actions.

    Refer to the binding later in the same rule with ``var(name, sort)``.
    """
    if not isinstance(expr, Expr):
        raise DslError(f"let() needs a DSL expression, got {expr!r}")
    return LetAction(name, expr.term)


def panic(message: str) -> PanicAction:
    """Action: abort the run (signals an impossible state)."""
    return PanicAction(message)


ActionLike = Union[Action, Expr]


def lower_action(action: ActionLike) -> Action:
    if isinstance(action, Action):
        return action
    if isinstance(action, Expr):
        return ExprAction(_require_call(action, "an expression action"))
    raise DslError(f"expected a DSL action or expression, got {action!r}")


def _action_reads(action: Action) -> List[Term]:
    """Terms an action evaluates (whose variables must be bound)."""
    if isinstance(action, LetAction):
        return [action.expr]
    if isinstance(action, UnionAction):
        return [action.lhs, action.rhs]
    if isinstance(action, SetAction):
        return list(action.call.args) + [action.value]
    if isinstance(action, DeleteAction):
        return list(action.call.args)
    if isinstance(action, ExprAction):
        return [action.expr]
    return []


def _fact_variables(fact: Fact) -> Set[str]:
    if isinstance(fact, EqFact):
        return set(fact.lhs.variables()) | set(fact.rhs.variables())
    return set(fact.variables())


def check_bound_variables(
    context: str, facts: Sequence[Fact], actions: Sequence[Action]
) -> None:
    """Reject actions that read variables the rule body never binds.

    Every variable matched by the body facts is bound; ``let`` extends the
    bound set as actions execute in order.  Without this check the engine
    only fails at *fire* time — or never, if the body happens not to match.
    """
    bound: Set[str] = set()
    for fact in facts:
        bound |= _fact_variables(fact)
    for action in actions:
        for term in _action_reads(action):
            for name in term.variables():
                if name not in bound:
                    bound_desc = ", ".join(sorted(bound)) if bound else "nothing"
                    raise UnboundVariableError(
                        f"{context}: variable {name!r} is not bound by the rule "
                        f"body (the body binds: {bound_desc})"
                    )
        if isinstance(action, LetAction):
            bound.add(action.name)


# ---------------------------------------------------------------------------
# Rules and rewrites
# ---------------------------------------------------------------------------


class DslRule:
    """A validated rule, ready to be registered on an egraph or ruleset."""

    __slots__ = ("name", "facts", "actions")

    def __init__(
        self,
        name: Optional[str],
        facts: Tuple[Fact, ...],
        actions: Tuple[Action, ...],
    ) -> None:
        self.name = name
        self.facts = facts
        self.actions = actions

    def to_engine(self, *, ruleset: str, name: Optional[str] = None) -> List[EngineRule]:
        return [
            EngineRule(
                facts=list(self.facts),
                actions=list(self.actions),
                name=self.name or name,
                ruleset=ruleset,
            )
        ]

    def __repr__(self) -> str:
        label = self.name or "<anonymous>"
        return f"<Rule {label}: {len(self.facts)} fact(s) => {len(self.actions)} action(s)>"


class RuleBuilder:
    """Fluent rule assembly: ``rule(name=...).when(*facts).then(*actions)``."""

    __slots__ = ("_name", "_facts")

    def __init__(self, facts: Sequence[FactLike], name: Optional[str]) -> None:
        self._name = name
        self._facts: List[Fact] = [lower_fact(f) for f in facts]

    def when(self, *facts: FactLike) -> "RuleBuilder":
        """Add body facts; may be chained."""
        self._facts.extend(lower_fact(f) for f in facts)
        return self

    def then(self, *actions: ActionLike) -> DslRule:
        """Finish the rule with its actions (validates variable binding)."""
        if not actions:
            raise DslError("a rule needs at least one action")
        lowered = tuple(lower_action(a) for a in actions)
        context = f"rule {self._name!r}" if self._name else "rule"
        check_bound_variables(context, self._facts, lowered)
        return DslRule(self._name, tuple(self._facts), lowered)

    def __repr__(self) -> str:
        label = self._name or "<anonymous>"
        return f"<RuleBuilder {label}: {len(self._facts)} fact(s), awaiting .then()>"


def rule(*facts: FactLike, name: Optional[str] = None) -> RuleBuilder:
    """Start a rule. Facts may be given here or via ``.when(...)``."""
    return RuleBuilder(facts, name)


class Rewrite:
    """``lhs.to(rhs, *conditions)``: union the matched class with ``rhs``.

    Validated at construction: the left-hand side must be an eq-sorted
    application, the right-hand side must have the same sort, and every
    right-hand-side variable must be bound by the left-hand side or a
    condition.
    """

    __slots__ = ("lhs", "rhs", "conditions", "name", "bidirectional")

    def __init__(
        self,
        lhs: Expr,
        rhs: object,
        conditions: Sequence[FactLike] = (),
        *,
        name: Optional[str] = None,
        bidirectional: bool = False,
    ) -> None:
        if not isinstance(lhs, Expr) or not isinstance(lhs.term, TermApp):
            raise DslError(
                f"a rewrite's left-hand side must be a function application, "
                f"got {lhs!r}"
            )
        if not lhs.sort.is_eq_sort:
            raise SortMismatchError(
                f"a rewrite needs an eq-sorted left-hand side, got sort "
                f"{lhs.sort.name!r} in {lhs!r}"
            )
        self.lhs = lhs
        self.rhs = lift(rhs, lhs.sort, "rewrite right-hand side")
        self.conditions: Tuple[Fact, ...] = tuple(lower_fact(c) for c in conditions)
        self.name = name
        self.bidirectional = bidirectional

        bound = set(self.lhs.term.variables())
        for cond in self.conditions:
            bound |= _fact_variables(cond)
        for var_name in self.rhs.term.variables():
            if var_name not in bound:
                raise UnboundVariableError(
                    f"rewrite {self!r}: right-hand side variable {var_name!r} is "
                    f"not bound by the left-hand side or a condition "
                    f"(bound: {', '.join(sorted(bound)) or 'nothing'})"
                )
        if bidirectional:
            # The reverse direction swaps the binding roles.
            rbound = set(self.rhs.term.variables())
            for cond in self.conditions:
                rbound |= _fact_variables(cond)
            if not isinstance(self.rhs.term, TermApp):
                raise DslError(
                    f"a bidirectional rewrite needs applications on both sides, "
                    f"got {self.rhs!r}"
                )
            for var_name in self.lhs.term.variables():
                if var_name not in rbound:
                    raise UnboundVariableError(
                        f"birewrite {self!r}: left-hand side variable {var_name!r} "
                        f"is not bound when rewriting right-to-left"
                    )

    def to_engine(self, *, ruleset: str, name: Optional[str] = None) -> List[EngineRule]:
        label = self.name or name
        if self.bidirectional:
            return list(
                engine_birewrite(
                    self.lhs.term,
                    self.rhs.term,
                    conditions=self.conditions,
                    name=label,
                    ruleset=ruleset,
                )
            )
        return [
            engine_rewrite(
                self.lhs.term,
                self.rhs.term,
                conditions=self.conditions,
                name=label,
                ruleset=ruleset,
            )
        ]

    def __repr__(self) -> str:
        arrow = "<=>" if self.bidirectional else "->"
        return f"{expr_repr(self.lhs.term)} {arrow} {expr_repr(self.rhs.term)}"


RegistrableRule = Union[DslRule, Rewrite, EngineRule]


class Ruleset:
    """A named, first-class group of rules on one egraph.

    Obtained from :meth:`repro.dsl.EGraph.ruleset`.  Register rules either
    directly (``rs.register(rw1, rw2)``) or with the decorator form::

        @rs.register
        def mul_comm():
            x, y = vars_("x y", Math)
            return (x * y).to(y * x)

    The decorated function runs once; the rule(s) it returns are registered
    under the ruleset (an unnamed single rule inherits the function's
    name).  Schedule fragments compose with the engine's combinators:
    ``eg.run(seq(rs.saturate(), other.run(2)))``.
    """

    __slots__ = ("_egraph", "name", "decl_site", "rule_names")

    def __init__(self, egraph: "EGraph", name: str, decl_site: str) -> None:
        self._egraph = egraph
        self.name = name
        self.decl_site = decl_site
        self.rule_names: List[str] = []

    def register(self, *items):
        """Register rules/rewrites; usable directly or as a decorator."""
        if len(items) == 1 and callable(items[0]) and not isinstance(
            items[0], (DslRule, Rewrite, EngineRule, Function)
        ):
            fn = items[0]
            produced = fn()
            if produced is None:
                raise DslError(
                    f"@{self.name or 'ruleset'}.register: {fn.__name__!r} returned "
                    f"nothing — return a rule, a rewrite, or a list of them"
                )
            rules: Iterable[RegistrableRule] = (
                produced if isinstance(produced, (list, tuple)) else [produced]
            )
            self.rule_names.extend(
                self._egraph._register_items(
                    rules, ruleset=self.name, default_name=fn.__name__
                )
            )
            return fn
        names = self._egraph._register_items(items, ruleset=self.name)
        self.rule_names.extend(names)
        return names

    def replace(self, item: RegistrableRule, *, name: Optional[str] = None) -> str:
        """Swap a registered rule of this ruleset with a new definition.

        ``name`` defaults to the item's own name; the item must lower to
        exactly one engine rule whose name is already registered here.  The
        engine recompiles the rule and drops every cached query plan and
        action program of the old definition (its semi-naïve watermark
        resets too: an edited body re-searches the full database).
        """
        if isinstance(item, (DslRule, Rewrite)):
            lowered = item.to_engine(ruleset=self.name, name=name)
        elif isinstance(item, EngineRule):
            # Copy rather than mutate: if the engine rejects the replace
            # (e.g. a ruleset move), the caller's rule object must be intact.
            lowered = [dataclasses.replace(item, ruleset=self.name)]
        else:
            raise DslError(
                f"cannot replace with {item!r}: expected a rule, a rewrite, "
                f"or an engine rule"
            )
        if len(lowered) != 1:
            raise DslError(
                "replace() needs exactly one rule; bidirectional rewrites "
                "lower to two — replace each direction separately"
            )
        engine_rule = lowered[0]
        if name is not None:
            engine_rule.name = name
        replaced = self._egraph.engine.replace_rule(engine_rule)
        if replaced not in self.rule_names:
            # replace_rule already verified the ruleset matches; keep the
            # handle's bookkeeping consistent for rules registered before
            # this Ruleset object existed (e.g. across scoped() restores).
            self.rule_names.append(replaced)
        return replaced

    # -- schedule fragments --------------------------------------------------

    def run(self, limit: int = 1) -> Run:
        """Schedule fragment: up to ``limit`` iterations of this ruleset."""
        return Run(limit, self.name)

    def saturate(self) -> Saturate:
        """Schedule fragment: run this ruleset until nothing changes."""
        return Saturate((Run(1, self.name),))

    def repeat(self, times: int) -> Repeat:
        """Schedule fragment: run this ruleset as a pass, ``times`` times."""
        return Repeat(times, (Run(1, self.name),))

    def __len__(self) -> int:
        return len(self.rule_names)

    def __repr__(self) -> str:
        label = self.name or "<default>"
        return f"<Ruleset {label}: {len(self.rule_names)} rule(s)>"
