"""Benchmark subsystem: workload determinism, runner schema, CLI."""

import json

import pytest

from repro.bench import SCHEMA, default_workloads, run_suite, run_workload
from repro.bench.__main__ import main as bench_main
from repro.bench.runner import write_document
from repro.bench.workloads import (
    congruence_stress,
    math_rewriting,
    transitive_closure,
)

TINY_VARIANTS = {"generic-index": "generic", "generic-adhoc": "generic-adhoc"}


def tiny_tc():
    return transitive_closure("chain", n=6)


# -- workload generators ------------------------------------------------------


def test_generators_are_deterministic_per_seed():
    first = transitive_closure("random", n=8, m=12, seed=3)
    second = transitive_closure("random", n=8, m=12, seed=3)
    assert first.params == second.params
    from repro.engine import EGraph

    engines = []
    for workload in (first, second):
        egraph = EGraph()
        workload.setup(egraph)
        engines.append(sorted((k[0].data, k[1].data) for k, _v in egraph.table_rows("edge")))
    assert engines[0] == engines[1]
    assert len(engines[0]) == 12


def test_grid_edges_shape():
    workload = transitive_closure("grid", n=3)
    from repro.engine import EGraph

    egraph = EGraph()
    workload.setup(egraph)
    # A 3x3 grid has 2*3*2 = 12 directed right/down edges.
    assert len(egraph.tables["edge"]) == 12


def test_unknown_graph_kind_rejected():
    with pytest.raises(ValueError, match="unknown graph kind"):
        transitive_closure("torus", n=4)


def test_default_workloads_cover_three_families():
    families = {w.family for w in default_workloads(quick=True)}
    assert families == {"transitive-closure", "math-rewriting", "congruence-closure"}


# -- runner -------------------------------------------------------------------


def test_run_workload_document_schema():
    document = run_workload(tiny_tc(), TINY_VARIANTS, repeats=1)
    assert document["schema"] == SCHEMA
    assert document["name"] == "tc_chain"
    assert set(document["variants"]) == set(TINY_VARIANTS)
    for entry in document["variants"].values():
        for field in (
            "strategy",
            "run_s",
            "runs_s",
            "setup_s",
            "search_s",
            "apply_s",
            "rebuild_s",
            "iterations",
            "matches",
            "delta_skips",
            "saturated",
            "table_rows",
        ):
            assert field in entry
        assert entry["saturated"] is True
        assert entry["table_rows"]["path"] == 15  # closure of a 6-chain
    comparison = document["comparison"]
    assert comparison["baseline"] == "generic-adhoc"
    assert comparison["candidate"] == "generic-index"
    assert comparison["speedup"] > 0


def test_variants_agree_on_results():
    workloads = [
        tiny_tc(),
        math_rewriting(depth=3, iterations=3),
        congruence_stress(leaves=8, height=3),
    ]
    for workload in workloads:
        document = run_workload(workload, TINY_VARIANTS, repeats=1)
        sizes = {
            variant: entry["table_rows"]
            for variant, entry in document["variants"].items()
        }
        assert sizes["generic-index"] == sizes["generic-adhoc"], workload.name


def test_write_document_and_run_suite(tmp_path):
    paths = run_suite(
        [tiny_tc()],
        variants=TINY_VARIANTS,
        repeats=1,
        out_dir=tmp_path,
        log=lambda line: None,
    )
    assert paths == [tmp_path / "BENCH_tc_chain.json"]
    document = json.loads(paths[0].read_text())
    assert document["schema"] == SCHEMA
    # write_document round-trips to the same file name.
    assert write_document(document, tmp_path) == paths[0]


# -- CLI ----------------------------------------------------------------------


def test_cli_list(capsys):
    assert bench_main(["--quick", "--list"]) == 0
    out = capsys.readouterr().out
    assert "tc_chain" in out and "congruence" in out


def test_cli_only_filter_writes_single_file(tmp_path, capsys):
    assert (
        bench_main(
            [
                "--quick",
                "--only",
                "tc_chain",
                "--out",
                str(tmp_path),
                "--variants",
                "generic-index,generic-adhoc",
            ]
        )
        == 0
    )
    assert sorted(p.name for p in tmp_path.glob("BENCH_*.json")) == [
        "BENCH_tc_chain.json"
    ]
    assert "bench: tc_chain:" in capsys.readouterr().out


def test_cli_rejects_unknown_selection(tmp_path, capsys):
    assert bench_main(["--only", "nope", "--out", str(tmp_path)]) == 1
    assert "no workload matches" in capsys.readouterr().err
    assert bench_main(["--variants", "warp-drive", "--out", str(tmp_path)]) == 1
    assert "unknown variant" in capsys.readouterr().err
