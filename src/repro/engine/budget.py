"""Run budgets: wall-clock deadlines and node-count caps for the scheduler.

A served e-graph cannot let one client's ``(run 1000000)`` monopolise the
process, and equality saturation has no useful *a priori* bound on how long
an iteration batch takes.  A :class:`Budget` carries the two caps a session
service needs — a wall-clock deadline and a database size cap — and the
scheduler consults it **between** iterations: when a cap is hit, the run
stops cleanly with a partial :class:`~repro.core.schema.RunReport` whose
``stopped_reason`` names the exhausted budget.  Nothing raises and nothing
is rolled back; the database after a budgeted run is exactly the database
after the last completed iteration.

Because the check sits between iterations, a single iteration may overshoot
``max_nodes`` — the cap bounds when the scheduler *stops*, not the peak
size.  That is the same granularity egg's ``Runner`` limits use, and it is
what keeps the report consistent (no half-applied rule batches).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .egraph import EGraph

#: ``RunReport.stopped_reason`` when the wall-clock deadline expired.
STOP_DEADLINE = "deadline"
#: ``RunReport.stopped_reason`` when the node-count cap was reached.
STOP_MAX_NODES = "max-nodes"


class Budget:
    """Caps on one scheduler run: wall-clock seconds and total table rows.

    Args:
        deadline_s: wall-clock budget in seconds, measured from construction
            (``time.monotonic``).  ``None`` means unlimited.  ``0`` is legal
            and means "already expired": the run performs zero iterations and
            returns immediately with ``stopped_reason="deadline"`` — useful
            for probing whether a schedule *would* run.
        max_nodes: cap on :meth:`EGraph.node_count` (total rows across all
            tables).  ``None`` means unlimited.  The cap is inclusive: the
            run stops once the count is **at or above** the cap.
    """

    __slots__ = ("deadline_s", "max_nodes", "_deadline_at")

    def __init__(
        self,
        deadline_s: Optional[float] = None,
        max_nodes: Optional[int] = None,
    ) -> None:
        if deadline_s is not None and deadline_s < 0:
            raise ValueError(f"deadline_s must be >= 0, got {deadline_s!r}")
        if max_nodes is not None and max_nodes < 0:
            raise ValueError(f"max_nodes must be >= 0, got {max_nodes!r}")
        self.deadline_s = deadline_s
        self.max_nodes = max_nodes
        self._deadline_at = (
            None if deadline_s is None else time.monotonic() + deadline_s
        )

    @classmethod
    def of(
        cls,
        deadline_s: Optional[float] = None,
        max_nodes: Optional[int] = None,
    ) -> Optional["Budget"]:
        """A budget, or ``None`` when neither cap is set (the common case —
        lets callers pass ``budget=None`` through the scheduler for free)."""
        if deadline_s is None and max_nodes is None:
            return None
        return cls(deadline_s=deadline_s, max_nodes=max_nodes)

    def exhausted(self, egraph: "EGraph") -> Optional[str]:
        """The ``stopped_reason`` if a cap is hit, else ``None``.

        The deadline is checked first: a run that is both over time and over
        size reports ``"deadline"``, the cap a caller can do least about.
        """
        if self._deadline_at is not None and time.monotonic() >= self._deadline_at:
            return STOP_DEADLINE
        if self.max_nodes is not None and egraph.node_count() >= self.max_nodes:
            return STOP_MAX_NODES
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Budget(deadline_s={self.deadline_s!r}, max_nodes={self.max_nodes!r})"
