"""run-schedule combinators: engine semantics and frontend lowering."""

import pytest

from repro.core.terms import App, V
from repro.engine import EGraph, Repeat, Rule, Run, Saturate, Seq, repeat, saturate, seq
from repro.engine.actions import Expr
from repro.frontend import Evaluator
from repro.frontend.errors import EvalError, ParseError
from repro.frontend.parser import RunScheduleCmd, parse_program


def chain_engine(n=5, **kwargs):
    egraph = EGraph(**kwargs)
    egraph.relation("edge", ("i64", "i64"))
    egraph.relation("path", ("i64", "i64"))
    egraph.add_rules(
        Rule(
            facts=[App("edge", V("x"), V("y"))],
            actions=[Expr(App("path", V("x"), V("y")))],
            name="base",
            ruleset="closure",
        ),
        Rule(
            facts=[App("path", V("x"), V("y")), App("edge", V("y"), V("z"))],
            actions=[Expr(App("path", V("x"), V("z")))],
            name="step",
            ruleset="closure",
        ),
    )
    for i in range(n - 1):
        egraph.add(App("edge", i, i + 1))
    return egraph


# -- engine combinators -------------------------------------------------------


def test_saturate_runs_to_fixpoint():
    egraph = chain_engine(6)
    report = egraph.run_schedule(saturate(Run(1, "closure")))
    assert report.saturated
    # Full transitive closure of a 6-node chain: 15 pairs.
    assert len(list(egraph.table_rows("path"))) == 15


def test_repeat_bounds_passes_and_stops_early():
    egraph = chain_engine(6)
    bounded = egraph.run_schedule(repeat(2, Run(1, "closure")))
    assert bounded.iterations == 2
    assert not bounded.saturated
    # A generous repeat saturates early rather than burning all passes.
    rest = egraph.run_schedule(repeat(50, Run(1, "closure")))
    assert rest.saturated
    assert rest.iterations < 50


def test_seq_composes_rulesets_in_order():
    egraph = chain_engine(4)
    egraph.relation("marked", ("i64",))
    egraph.add_rule(
        Rule(
            facts=[App("path", 0, V("x"))],
            actions=[Expr(App("marked", V("x")))],
            name="mark",
            ruleset="marking",
        )
    )
    report = egraph.run_schedule(
        seq(saturate(Run(1, "closure")), Run(1, "marking"))
    )
    assert report.iterations >= 4
    marked = sorted(k[0].data for k, _v in egraph.table_rows("marked"))
    assert marked == [1, 2, 3]


def test_empty_saturate_terminates():
    egraph = chain_engine(3)
    report = egraph.scheduler.run_schedule(Saturate(()))
    assert report.saturated and report.iterations == 0


def test_schedule_sugar_defaults():
    assert saturate() == Saturate((Run(),))
    assert repeat(3) == Repeat(3, (Run(),))
    assert seq(Run(2)) == Seq((Run(2),))


# -- frontend -----------------------------------------------------------------


PRELUDE = (
    "(relation edge (i64 i64))\n(relation path (i64 i64))\n"
    "(edge 1 2)\n(edge 2 3)\n(edge 3 4)\n"
    "(rule ((edge x y)) ((path x y)) :name base :ruleset closure)\n"
    "(rule ((path x y) (edge y z)) ((path x z)) :name step :ruleset closure)\n"
)


def test_parser_keeps_schedules_raw():
    commands = parse_program("(run-schedule (saturate (run)) other)")
    assert isinstance(commands[0], RunScheduleCmd)
    assert len(commands[0].schedules) == 2


def test_parser_rejects_empty_run_schedule():
    with pytest.raises(ParseError, match="at least one schedule"):
        parse_program("(run-schedule)")


def test_run_schedule_saturates_and_reports():
    lines = Evaluator().run_program(
        PRELUDE + "(run-schedule (saturate (run :ruleset closure)))\n(check (path 1 4))\n"
    )
    assert lines[0].startswith("run-schedule:") and "saturated" in lines[0]
    assert lines[1].startswith("check: ok")


def test_run_schedule_bare_symbol_is_one_ruleset_iteration():
    lines = Evaluator().run_program(PRELUDE + "(run-schedule closure)\n")
    assert "1 iteration(s)" in lines[0]


def test_run_schedule_run_with_limit_and_ruleset():
    lines = Evaluator().run_program(
        PRELUDE + "(run-schedule (repeat 2 (run 2 :ruleset closure)))\n"
    )
    assert lines[0].startswith("run-schedule:")


@pytest.mark.parametrize(
    "program, message",
    [
        ("(run-schedule (frobnicate (run)))", "unknown schedule combinator"),
        ("(run-schedule nosuch)", "unknown ruleset"),
        ("(run-schedule (run 1 :ruleset nosuch))", "unknown ruleset"),
        ("(run-schedule (repeat 0 (run)))", "must be positive"),
        ("(run-schedule (repeat))", "expects a count"),
        ("(run-schedule (run 1 2))", "malformed schedule"),
        ('(run-schedule "text")', "expected a schedule"),
    ],
)
def test_run_schedule_errors_are_located(program, message):
    with pytest.raises(EvalError, match=message):
        Evaluator().run_program(PRELUDE + program)
