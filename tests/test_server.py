"""Service-layer tests: session manager, HTTP server, concurrency.

Three layers, tested at their natural seams:

* :class:`SessionManager` directly — base registration, in-memory forking,
  LRU eviction with busy-session immunity, idle TTLs, error taxonomy;
* the HTTP surface over a **real socket** — an asyncio server on an
  ephemeral port, driven by ``http.client`` from the test thread, covering
  the full lifecycle (base -> session -> run -> fork -> budgeted run ->
  extract -> delete) plus transport errors;
* the concurrency property — N threads hammering sessions forked from one
  base must each reach exactly the state a serial run reaches, because
  sessions share nothing mutable but the (lock-protected) compile cache.
"""

import http.client
import json
import threading
import time

import pytest

from repro.server import App, serve
from repro.session import (
    CapacityError,
    DuplicateNameError,
    ProgramError,
    SessionManager,
    UnknownBaseError,
    UnknownSessionError,
)

TC_PROGRAM = """
(relation edge (i64 i64))
(relation path (i64 i64))
(rule ((edge x y)) ((path x y)) :name "base")
(rule ((path x y) (edge y z)) ((path x z)) :name "trans")
(edge 1 2) (edge 2 3) (edge 3 4) (edge 4 5)
"""

CHECK_1_5 = {"op": "check", "facts": [["a", "path", [["l", ["i64", 1]], ["l", ["i64", 5]]]]]}


# ---------------------------------------------------------------------------
# SessionManager
# ---------------------------------------------------------------------------


def test_manager_base_and_session_lifecycle():
    mgr = SessionManager()
    info = mgr.add_base_from_program("tc", TC_PROGRAM)
    assert info["name"] == "tc" and info["rows"] == 4 and info["source"] == "egg"
    session = mgr.create_session("tc")
    assert mgr.get(session.id) is session
    assert session.run_egg("(run 10)\n(check (path 1 5))")[-1].startswith("check: ok")
    assert mgr.bases()[0]["forks"] == 1
    mgr.remove_session(session.id)
    with pytest.raises(UnknownSessionError):
        mgr.get(session.id)
    mgr.remove_base("tc")
    with pytest.raises(UnknownBaseError):
        mgr.create_session("tc")


def test_manager_error_taxonomy():
    mgr = SessionManager()
    mgr.add_base_from_program("tc", TC_PROGRAM)
    with pytest.raises(DuplicateNameError):
        mgr.add_base_from_program("tc", TC_PROGRAM)
    with pytest.raises(UnknownBaseError):
        mgr.create_session("nope")
    with pytest.raises(UnknownSessionError):
        mgr.remove_session("s999")
    with pytest.raises(ProgramError):
        mgr.add_base_from_program("broken", "(this is not a command)")
    session = mgr.create_session("tc")
    with pytest.raises(ProgramError):
        session.run_egg("(check (no-such-relation 1))")
    with pytest.raises(ProgramError):
        session.run_program([{"op": "definitely-not-an-op"}])


def test_manager_fork_isolation_between_siblings():
    mgr = SessionManager()
    mgr.add_base_from_program("tc", TC_PROGRAM)
    a, b = mgr.create_session("tc"), mgr.create_session("tc")
    a.run_egg("(run 10)")
    # b never ran: the transitive fact exists only in a.
    assert a.run_program([CHECK_1_5])[0]["ok"] is True
    assert b.run_program([CHECK_1_5])[0]["ok"] is False
    # New facts on b stay on b.
    b.run_egg("(edge 5 6)")
    assert b.engine.node_count() == 5
    assert a.engine.node_count() > 5  # a ran to closure, without b's edge


def test_manager_lru_eviction_prefers_least_recently_used():
    mgr = SessionManager(max_sessions=2)
    mgr.add_base_from_program("tc", TC_PROGRAM)
    a = mgr.create_session("tc")
    b = mgr.create_session("tc")
    mgr.get(a.id)  # a is now most recently used; b is the LRU victim
    c = mgr.create_session("tc")
    assert mgr.get(a.id) is a and mgr.get(c.id) is c
    with pytest.raises(UnknownSessionError):
        mgr.get(b.id)
    assert mgr.stats()["evictions"] == 1


def test_manager_eviction_skips_busy_sessions():
    mgr = SessionManager(max_sessions=2)
    mgr.add_base_from_program("tc", TC_PROGRAM)
    a = mgr.create_session("tc")
    b = mgr.create_session("tc")
    with a.lock:  # a is mid-batch: immune; the newer b gets evicted instead
        c = mgr.create_session("tc")
        assert mgr.get(a.id) is a
        with pytest.raises(UnknownSessionError):
            mgr.get(b.id)
        # Every session busy -> capacity error, not a deadlock.
        with c.lock:
            with pytest.raises(CapacityError):
                mgr.create_session("tc")


def test_manager_idle_ttl_sweep():
    mgr = SessionManager(idle_ttl_s=0.05)
    mgr.add_base_from_program("tc", TC_PROGRAM)
    old = mgr.create_session("tc")
    time.sleep(0.08)
    fresh = mgr.create_session("tc")  # admission sweeps expired sessions
    with pytest.raises(UnknownSessionError):
        mgr.get(old.id)
    assert mgr.get(fresh.id) is fresh


def test_manager_fork_session_carries_globals():
    mgr = SessionManager()
    s = mgr.create_session()
    s.run_egg("(datatype M (N i64) (Plus M M))\n(let e (Plus (N 1) (N 2)))")
    fork = mgr.fork_session(s.id)
    assert fork.base is None and fork.id != s.id
    assert fork.run_egg("(extract e)") == ["extract: (Plus (N 1) (N 2)) (cost 3)"]


def test_budgeted_run_reports_partial_over_program_surface():
    mgr = SessionManager()
    mgr.add_base_from_program("tc", TC_PROGRAM)
    s = mgr.create_session("tc")
    (result,) = s.run_program([{"op": "run", "limit": 100, "max_nodes": 0}])
    report = result["report"]
    assert report["stopped_reason"] == "max-nodes"
    assert report["iterations"] == 0 and not report["saturated"]


# ---------------------------------------------------------------------------
# HTTP server over a real socket
# ---------------------------------------------------------------------------


class LiveServer:
    """An asyncio server on an ephemeral port, event loop in a daemon thread."""

    def __init__(self, app_kwargs=None, serve_kwargs=None, **manager_kwargs):
        import asyncio

        self.app = App(SessionManager(**manager_kwargs), **(app_kwargs or {}))
        self.loop = asyncio.new_event_loop()
        started = threading.Event()
        holder = {}

        def runner():
            asyncio.set_event_loop(self.loop)
            server = self.loop.run_until_complete(
                serve(self.app.handle, "127.0.0.1", 0, **(serve_kwargs or {}))
            )
            holder["port"] = server.sockets[0].getsockname()[1]
            started.set()
            try:
                self.loop.run_forever()
            finally:
                server.close()
                self.loop.run_until_complete(server.wait_closed())
                # Unwind lingering connection handlers before closing the
                # loop so their finally blocks can still touch it.
                tasks = asyncio.all_tasks(self.loop)
                for task in tasks:
                    task.cancel()
                if tasks:
                    self.loop.run_until_complete(
                        asyncio.gather(*tasks, return_exceptions=True)
                    )
                self.loop.close()

        self.thread = threading.Thread(target=runner, daemon=True)
        self.thread.start()
        assert started.wait(5), "server did not start"
        self.port = holder["port"]

    def stop(self):
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(5)

    def request(self, method, path, body=None):
        status, payload, _headers = self.request_full(method, path, body)
        return status, payload

    def request_full(self, method, path, body=None):
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=10)
        try:
            payload = json.dumps(body) if body is not None else None
            conn.request(method, path, body=payload)
            response = conn.getresponse()
            return response.status, json.loads(response.read()), dict(response.getheaders())
        finally:
            conn.close()


@pytest.fixture()
def server():
    live = LiveServer()
    yield live
    live.stop()


def test_http_full_lifecycle(server):
    status, body = server.request("GET", "/healthz")
    assert status == 200 and body["ok"]

    status, body = server.request("POST", "/bases", {"name": "tc", "program": TC_PROGRAM})
    assert status == 201 and body["base"]["rows"] == 4

    status, body = server.request("POST", "/sessions", {"base": "tc"})
    assert status == 201
    sid = body["session"]["id"]

    # Fork *before* running: the fork stays at the base state.
    status, body = server.request("POST", f"/sessions/{sid}/fork")
    assert status == 201
    fid = body["session"]["id"]

    status, body = server.request(
        "POST", f"/sessions/{sid}/egg", {"program": "(run 10)\n(check (path 1 5))"}
    )
    assert status == 200 and body["lines"][-1].startswith("check: ok")

    status, body = server.request("POST", f"/sessions/{fid}/program", {"ops": [CHECK_1_5]})
    assert status == 200 and body["results"][0]["ok"] is False  # isolation

    # Budget expiry over HTTP: zero deadline stops before the first iteration.
    status, body = server.request(
        "POST",
        f"/sessions/{fid}/program",
        {"ops": [{"op": "run", "limit": 100, "deadline_ms": 0}]},
    )
    report = body["results"][0]["report"]
    assert status == 200 and report["stopped_reason"] == "deadline"
    assert report["iterations"] == 0

    status, body = server.request("GET", "/stats")
    assert status == 200 and body["stats"]["sessions"] == 2
    assert "compile_cache" in body["stats"]

    status, body = server.request("DELETE", f"/sessions/{fid}")
    assert status == 200
    status, body = server.request("GET", f"/sessions/{fid}")
    assert status == 404


def test_http_error_statuses(server):
    assert server.request("GET", "/no/such/route")[0] == 404
    assert server.request("DELETE", "/healthz")[0] == 405
    assert server.request("POST", "/sessions", {"base": "ghost"})[0] == 404
    server.request("POST", "/bases", {"name": "tc", "program": TC_PROGRAM})
    assert server.request("POST", "/bases", {"name": "tc", "program": TC_PROGRAM})[0] == 409
    assert server.request("POST", "/bases", {"name": "x"})[0] == 400  # no program/path
    status, body = server.request("POST", "/sessions", {"base": "tc"})
    sid = body["session"]["id"]
    status, body = server.request(
        "POST", f"/sessions/{sid}/program", {"ops": [{"op": "nope"}]}
    )
    assert status == 422 and "unknown op" in body["error"]
    # Malformed JSON body -> 400 at the transport layer.
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
    try:
        conn.request("POST", "/sessions", body="{not json")
        response = conn.getresponse()
        assert response.status == 400
        response.read()
    finally:
        conn.close()


def test_http_snapshot_base(server, tmp_path):
    # Round-trip a base through a real snapshot file.
    from repro.frontend import Evaluator

    ev = Evaluator()
    ev.run_program(TC_PROGRAM + "\n(run 10)")
    path = tmp_path / "tc.json"
    ev.save_snapshot(str(path))
    status, body = server.request(
        "POST", "/bases", {"name": "warm", "snapshot_path": str(path)}
    )
    assert status == 201 and body["base"]["source"] == "snapshot"
    status, body = server.request("POST", "/sessions", {"base": "warm"})
    sid = body["session"]["id"]
    # The base was saturated before saving: the fact is already there.
    status, body = server.request("POST", f"/sessions/{sid}/program", {"ops": [CHECK_1_5]})
    assert body["results"][0]["ok"] is True
    assert server.request("POST", "/bases", {"name": "bad", "snapshot_path": "/nope.json"})[0] == 400


# ---------------------------------------------------------------------------
# Concurrency property: N threads == serial
# ---------------------------------------------------------------------------


def _saturate_and_observe(session):
    """Run a session's chain to closure; return every observable we track."""
    lines = session.run_egg("(run 100)")
    results = session.run_program(
        [CHECK_1_5, {"op": "check", "facts": [["a", "path", [["l", ["i64", 2]], ["l", ["i64", 5]]]]]}]
    )
    return lines, results, session.engine.node_count()


def test_concurrent_sessions_match_serial():
    mgr = SessionManager(max_sessions=32)
    mgr.add_base_from_program("tc", TC_PROGRAM)

    # Serial reference: one session, run on the main thread.
    expected = _saturate_and_observe(mgr.create_session("tc"))

    n_threads = 8
    outcomes = [None] * n_threads
    errors = []
    barrier = threading.Barrier(n_threads)

    def worker(i):
        try:
            session = mgr.create_session("tc")
            barrier.wait(timeout=10)  # maximize interleaving
            outcomes[i] = _saturate_and_observe(session)
        except Exception as error:  # noqa: BLE001 - surfaced below
            errors.append((i, error))

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert not errors, f"worker failures: {errors}"
    for i, outcome in enumerate(outcomes):
        assert outcome == expected, f"thread {i} diverged from the serial run"


def test_concurrent_http_clients_stay_isolated(server):
    server.request("POST", "/bases", {"name": "tc", "program": TC_PROGRAM})
    n_clients = 6
    results = [None] * n_clients
    errors = []

    def client(i):
        try:
            _, body = server.request("POST", "/sessions", {"base": "tc"})
            sid = body["session"]["id"]
            if i % 2 == 0:
                server.request("POST", f"/sessions/{sid}/egg", {"program": "(run 100)"})
            _, body = server.request("POST", f"/sessions/{sid}/program", {"ops": [CHECK_1_5]})
            results[i] = body["results"][0]["ok"]
        except Exception as error:  # noqa: BLE001 - surfaced below
            errors.append((i, error))

    threads = [threading.Thread(target=client, args=(i,)) for i in range(n_clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert not errors, f"client failures: {errors}"
    # Even clients ran to closure (fact present), odd clients never ran.
    assert results == [i % 2 == 0 for i in range(n_clients)]


# ---------------------------------------------------------------------------
# Durability: passivation, restore, checkpoints, transactional batches
# ---------------------------------------------------------------------------


def _engine_bytes(session):
    """The session's engine as canonical snapshot text (byte-identity probe)."""
    from repro.serialize.snapshot import dumps_document, engine_document

    return dumps_document(engine_document(session.engine))


def test_eviction_passivates_and_touch_restores(tmp_path):
    mgr = SessionManager(max_sessions=1, state_dir=str(tmp_path))
    mgr.add_base_from_program("tc", TC_PROGRAM)
    a = mgr.create_session("tc")
    a.run_egg("(run 10)")
    before = _engine_bytes(a)
    globals_before = dict(a.evaluator.globals)
    aid = a.id

    b = mgr.create_session("tc")  # evicts a -> checkpoint, not data loss
    assert mgr.store.contains(aid)
    assert aid in mgr._passivated_ids()

    restored = mgr.get(aid)  # transparent restore on next touch
    assert restored is not a  # a fresh object, same durable state
    assert restored.id == aid and restored.base == "tc"
    assert _engine_bytes(restored) == before
    assert set(restored.evaluator.globals) == set(globals_before)
    assert restored.run_program([CHECK_1_5])[0]["ok"] is True
    stats = mgr.stats()["durability"]
    assert stats["restores"] == 1 and stats["checkpoints"] >= 1
    assert mgr.get(b.id) is b or mgr.get(b.id).id == b.id


def test_idle_ttl_passivates_with_store(tmp_path):
    mgr = SessionManager(idle_ttl_s=0.05, state_dir=str(tmp_path))
    mgr.add_base_from_program("tc", TC_PROGRAM)
    old = mgr.create_session("tc")
    old.run_egg("(run 10)")
    oid = old.id
    time.sleep(0.08)
    mgr.create_session("tc")  # admission sweeps the expired session
    assert mgr.store.contains(oid)
    assert mgr.get(oid).run_program([CHECK_1_5])[0]["ok"] is True


def test_manager_restart_rediscovers_checkpoints(tmp_path):
    first = SessionManager(state_dir=str(tmp_path))
    s = first.create_session()
    s.run_egg("(datatype M (N i64) (Plus M M))\n(let e (Plus (N 1) (N 2)))")
    sid = s.id
    first.checkpoint_all()

    second = SessionManager(state_dir=str(tmp_path))
    listed = {info["id"] for info in second.sessions()}
    assert sid in listed
    restored = second.get(sid)
    assert restored.run_egg("(extract e)") == ["extract: (Plus (N 1) (N 2)) (cost 3)"]
    # Fresh ids must not collide with restored ones.
    fresh = second.create_session()
    assert fresh.id != sid


def test_remove_session_also_discards_checkpoint(tmp_path):
    mgr = SessionManager(state_dir=str(tmp_path))
    s = mgr.create_session()
    mgr.checkpoint_session(s.id)
    assert mgr.store.contains(s.id)
    mgr.remove_session(s.id)
    assert not mgr.store.contains(s.id)
    with pytest.raises(UnknownSessionError):
        mgr.get(s.id)


def test_failed_batch_rolls_back_engine_and_globals():
    mgr = SessionManager()
    s = mgr.create_session()
    s.run_egg("(datatype M (N i64) (Plus M M))\n(let e (Plus (N 1) (N 2)))")
    before = _engine_bytes(s)
    with pytest.raises(ProgramError):
        s.run_egg("(let f (N 7))\n(no-such-command)")
    assert _engine_bytes(s) == before
    assert "f" not in s.evaluator.globals
    with pytest.raises(ProgramError):
        s.run_program([{"op": "run", "limit": 1}, {"op": "nope"}])
    assert _engine_bytes(s) == before


def test_non_atomic_batch_keeps_partial_state():
    mgr = SessionManager()
    s = mgr.create_session()
    s.run_egg("(datatype M (N i64))")
    with pytest.raises(ProgramError):
        s.run_egg("(let f (N 7))\n(no-such-command)", atomic=False)
    assert "f" in s.evaluator.globals


def test_rollback_preserves_client_push_pop_pairing():
    mgr = SessionManager()
    s = mgr.create_session()
    s.run_egg("(datatype M (N i64))\n(let x (N 1))")
    s.run_egg("(push)")
    s.run_egg("(let y (N 2))")
    with pytest.raises(ProgramError):
        s.run_egg("(push)\n(let z (N 3))\n(no-such-command)")  # rolled back
    # The failed batch's (push) vanished with the rollback: one (pop)
    # returns to the client's own push point.
    s.run_egg("(pop)")
    assert "x" in s.evaluator.globals
    assert "y" not in s.evaluator.globals and "z" not in s.evaluator.globals
    with pytest.raises(ProgramError):
        s.run_egg("(pop)")  # nothing left to pop


def test_rollback_after_in_batch_pop_keeps_stack_entries_pristine():
    # A failed batch that *popped* a client push must not leak its rows
    # into the pinned stack entry: restore installs defensive copies, so
    # the entry the rollback re-pins stays exactly as the client pushed it.
    mgr = SessionManager()
    s = mgr.create_session()
    s.run_egg("(datatype M (N i64))\n(push)\n(let a (N 1))")
    before = _engine_bytes(s)
    with pytest.raises(ProgramError):
        s.run_egg("(pop)\n(let b (N 7))\n(no-such-command)")
    assert _engine_bytes(s) == before  # rollback: the batch never happened
    s.run_egg("(pop)")  # the client's own pop: back to pre-push state
    assert all(len(t.data) == 0 for t in s.engine.tables.values())
    assert "a" not in s.evaluator.globals and "b" not in s.evaluator.globals


def test_batch_on_passivated_session_lands_on_live_incarnation(tmp_path):
    # The lookup-to-lock race: a session retired between manager.get and
    # the batch acquiring its mutex must transparently redirect to the
    # restored incarnation — its effects durable, not silently discarded.
    mgr = SessionManager(state_dir=str(tmp_path))
    mgr.add_base_from_program("tc", TC_PROGRAM)
    s = mgr.get(mgr.create_session("tc").id)  # what a request handler holds
    assert mgr._retire(s)  # passivation wins the race before the batch
    assert s.retired and s.id not in mgr._sessions

    s.run_egg("(edge 9 9)")  # ran on the orphan's live successor
    live = mgr.get(s.id)
    assert live is not s
    check_9 = {
        "op": "check",
        "facts": [["a", "edge", [["l", ["i64", 9]], ["l", ["i64", 9]]]]],
    }
    assert live.run_program([check_9])[0]["ok"] is True
    # And the same for the JSON program surface.
    assert mgr._retire(live)
    results = s.run_program([{"op": "run", "limit": 10}, CHECK_1_5])
    assert results[1]["ok"] is True
    assert mgr.stats()["durability"]["restores"] >= 2


def test_batch_on_retired_session_without_store_is_an_explicit_error():
    # Without a store, losing the race to eviction is loud (the pre-PR
    # 404), never a 200 whose effects evaporate.
    mgr = SessionManager()
    s = mgr.get(mgr.create_session().id)
    assert mgr._retire(s)
    with pytest.raises(UnknownSessionError):
        s.run_egg("(datatype M (N i64))")


def test_http_checkpoint_endpoint_and_passivated_listing(tmp_path):
    live = LiveServer(max_sessions=1, state_dir=str(tmp_path))
    try:
        live.request("POST", "/bases", {"name": "tc", "program": TC_PROGRAM})
        _, body = live.request("POST", "/sessions", {"base": "tc"})
        sid = body["session"]["id"]
        live.request("POST", f"/sessions/{sid}/egg", {"program": "(run 10)"})

        status, body = live.request("POST", f"/sessions/{sid}/checkpoint")
        assert status == 200 and body["checkpoint"]["id"] == sid
        assert body["checkpoint"]["digest"]

        _, body = live.request("POST", "/sessions", {"base": "tc"})  # evicts sid
        _, body = live.request("GET", "/sessions")
        flags = {s["id"]: s.get("passivated", False) for s in body["sessions"]}
        assert flags[sid] is True

        status, body = live.request("POST", f"/sessions/{sid}/program", {"ops": [CHECK_1_5]})
        assert status == 200 and body["results"][0]["ok"] is True

        _, body = live.request("GET", "/stats")
        durability = body["stats"]["durability"]
        assert durability["restores"] == 1 and durability["checkpoints"] >= 2
        assert body["stats"]["server"]["pending"] == 1  # this very request
    finally:
        live.stop()


def test_http_atomic_flag_and_deadline_validation(tmp_path):
    live = LiveServer()
    try:
        _, body = live.request("POST", "/sessions", {})
        sid = body["session"]["id"]
        live.request(
            "POST", f"/sessions/{sid}/egg", {"program": "(datatype M (N i64))"}
        )
        status, body = live.request(
            "POST",
            f"/sessions/{sid}/egg",
            {"program": "(let f (N 7))\n(no-such-command)", "atomic": False},
        )
        assert status == 422
        status, body = live.request(
            "POST", f"/sessions/{sid}/egg", {"program": "(extract f)"}
        )
        assert status == 200  # partial state survived the non-atomic batch
        status, body = live.request(
            "POST", f"/sessions/{sid}/egg", {"program": "(run 1)", "atomic": "yes"}
        )
        assert status == 400
        status, body = live.request(
            "POST", f"/sessions/{sid}/egg", {"program": "(run 1)", "deadline_ms": -5}
        )
        assert status == 400
    finally:
        live.stop()


def test_http_server_default_deadline_applies():
    live = LiveServer(app_kwargs={"deadline_ms": 1})
    try:
        live.request("POST", "/bases", {"name": "tc", "program": TC_PROGRAM})
        _, body = live.request("POST", "/sessions", {"base": "tc"})
        sid = body["session"]["id"]
        status, body = live.request(
            "POST", f"/sessions/{sid}/egg", {"program": "(run 100000)"}
        )
        # The app-wide 1ms deadline bounds the run even though the request
        # itself set no budget.
        assert status == 200
    finally:
        live.stop()


# ---------------------------------------------------------------------------
# Overload and drain: 503 + Retry-After
# ---------------------------------------------------------------------------


def test_capacity_503_carries_retry_after():
    live = LiveServer(max_sessions=1)
    try:
        live.request("POST", "/bases", {"name": "tc", "program": TC_PROGRAM})
        _, body = live.request("POST", "/sessions", {"base": "tc"})
        sid = body["session"]["id"]
        session = live.app.manager.get(sid)
        with session.lock:  # the only session is busy: nothing evictable
            status, body, headers = live.request_full("POST", "/sessions", {"base": "tc"})
        assert status == 503 and not body["ok"]
        assert headers.get("Retry-After") == "1"
    finally:
        live.stop()


def test_overloaded_server_refuses_with_503():
    live = LiveServer(app_kwargs={"max_pending": 0})
    try:
        status, body, headers = live.request_full("GET", "/healthz")
        assert status == 503 and "in flight" in body["error"]
        assert headers.get("Retry-After") == "1"
        assert live.app.rejected == 1
    finally:
        live.stop()


def test_draining_server_refuses_with_503():
    live = LiveServer()
    try:
        live.app.draining = True
        status, body, headers = live.request_full("GET", "/healthz")
        assert status == 503 and "draining" in body["error"]
        assert headers.get("Retry-After") == "1"
    finally:
        live.stop()


# ---------------------------------------------------------------------------
# HTTP timeouts over a raw socket
# ---------------------------------------------------------------------------


def test_idle_connection_times_out_silently():
    import socket

    live = LiveServer(serve_kwargs={"idle_timeout_s": 0.2})
    try:
        with socket.create_connection(("127.0.0.1", live.port), timeout=5) as sock:
            sock.settimeout(5)
            # Send nothing: the server closes the idle connection without
            # writing a response.
            assert sock.recv(1024) == b""
    finally:
        live.stop()


def test_stalled_request_answers_408():
    import socket

    live = LiveServer(serve_kwargs={"read_timeout_s": 0.2})
    try:
        with socket.create_connection(("127.0.0.1", live.port), timeout=5) as sock:
            sock.settimeout(5)
            # Request line arrives, then the client stalls mid-headers.
            sock.sendall(b"POST /sessions HTTP/1.1\r\nContent-Length: 10\r\n")
            data = sock.recv(4096)
        assert b"408" in data.split(b"\r\n", 1)[0]
    finally:
        live.stop()


def test_complete_requests_unaffected_by_timeouts():
    live = LiveServer(serve_kwargs={"idle_timeout_s": 5.0, "read_timeout_s": 5.0})
    try:
        status, body = live.request("GET", "/healthz")
        assert status == 200 and body["ok"]
    finally:
        live.stop()
