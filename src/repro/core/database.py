"""The functional database backing egglog functions.

Unlike most Datalog engines, egglog is backed by a *functional* database
(Section 5.1): each function/relation is a map from argument tuples to a
single output value.  Each row additionally carries a timestamp — the
iteration at which it was inserted or last updated — which is what makes
semi-naïve evaluation (Section 4.3) possible: a delta query only needs to
look at rows whose timestamp is at least the rule's last-run timestamp.

Tables own two kinds of indexes, both maintained *incrementally* on every
``put``/``remove`` (including the canonicalizing rewrites rebuilding
performs):

* hash indexes over column subsets (``index``), used by the
  index-nested-loop join and by rebuilding's dirty-id probes, and
* column-order tries (:class:`~repro.core.index.TrieIndex`, via
  ``ensure_trie``/``trie``), consumed directly by generic join, with
  timestamp buckets so semi-naïve delta restriction reads an index slice.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Tuple

from .index import Order, TrieIndex
from .schema import FunctionDecl
from .values import Value

Key = Tuple[Value, ...]

#: A hash index: projection tuple -> insertion-ordered set of keys.  The
#: inner dict is used as an ordered set (values are always None) so that
#: incremental removal is O(1) and iteration order stays deterministic.
HashIndex = Dict[Tuple[Value, ...], Dict[Key, None]]


class Row:
    """A single function entry ``f(key) -> value`` with its timestamp.

    Hand-rolled with ``__slots__``: one ``Row`` exists per database row and
    the apply/rebuild hot paths allocate them constantly, so the per-object
    dict and dataclass construction overhead are worth shedding.
    """

    __slots__ = ("value", "timestamp")

    def __init__(self, value: Value, timestamp: int) -> None:
        self.value = value
        self.timestamp = timestamp

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Row:
            return NotImplemented
        return self.value == other.value and self.timestamp == other.timestamp

    def __repr__(self) -> str:
        return f"Row(value={self.value!r}, timestamp={self.timestamp!r})"


class Table:
    """Backing store for one egglog function.

    Columns ``0 .. arity-1`` are the arguments, column ``arity`` is the
    output.  The table enforces nothing about canonicalization or merges —
    that is the engine's and the rebuilder's job — it only stores rows and
    provides lookups, scans, and indexes.
    """

    def __init__(self, decl: FunctionDecl) -> None:
        self.decl = decl
        self.data: Dict[Key, Row] = {}
        self._indexes: Dict[Tuple[int, ...], HashIndex] = {}
        self._tries: Dict[Order, TrieIndex] = {}
        # Append-only write log (parallel timestamp/key arrays) so that
        # ``new_keys`` — the semi-naïve delta (Section 4.3) — costs
        # O(|delta|) rather than a full-table scan.  The engine only writes
        # with non-decreasing timestamps; if a caller ever writes out of
        # order the log degrades gracefully to a scan.
        self._log_ts: List[int] = []
        self._log_keys: List[Key] = []
        self._log_sorted = True
        # Deferred index maintenance (see begin_batch): while a batch is
        # open, put/remove update ``data`` and the write log immediately but
        # queue their index/trie maintenance.  ``_pending`` maps each touched
        # key to the Row (or None) it had when the batch first touched it;
        # the flush applies one net update per key instead of one per write.
        self._batch_depth = 0
        self._pending: Dict[Key, Optional[Row]] = {}

    # -- basic access --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.data)

    def __contains__(self, key: Key) -> bool:
        return key in self.data

    @property
    def arity(self) -> int:
        return self.decl.arity

    @property
    def num_columns(self) -> int:
        return self.decl.arity + 1

    def get(self, key: Key) -> Optional[Value]:
        row = self.data.get(key)
        return row.value if row is not None else None

    def get_row(self, key: Key) -> Optional[Row]:
        return self.data.get(key)

    def put(self, key: Key, value: Value, timestamp: int) -> None:
        """Insert or overwrite a row, updating every maintained index."""
        old = self.data.get(key)
        self.data[key] = Row(value, timestamp)
        if self._log_ts and timestamp < self._log_ts[-1]:
            self._log_sorted = False
        self._log_ts.append(timestamp)
        self._log_keys.append(key)
        if len(self._log_ts) > 64 and len(self._log_ts) > 4 * len(self.data):
            self._compact_log()

        if self._batch_depth:
            if (self._indexes or self._tries) and key not in self._pending:
                self._pending[key] = old
            return
        if self._indexes and (old is None or old.value != value):
            arity = self.decl.arity
            for columns, index in self._indexes.items():
                if old is not None:
                    if all(col < arity for col in columns):
                        continue  # projection over arguments only: unchanged
                    old_proj = self._project(columns, key, old.value)
                    entry = index.get(old_proj)
                    if entry is not None:
                        entry.pop(key, None)
                        if not entry:
                            del index[old_proj]
                index.setdefault(self._project(columns, key, value), {})[key] = None
        if self._tries and (
            old is None or old.value != value or old.timestamp != timestamp
        ):
            for trie in self._tries.values():
                if trie.stale:
                    continue  # rebuilt from ``data`` on next access
                if old is not None:
                    trie.remove(key + (old.value,), old.timestamp)
                trie.insert(key + (value,), timestamp)

    def _project(self, columns: Tuple[int, ...], key: Key, value: Value) -> Tuple[Value, ...]:
        arity = self.decl.arity
        return tuple([value if col == arity else key[col] for col in columns])

    def _compact_log(self) -> None:
        """Rebuild the write log from live rows (drops dead/duplicate entries)."""
        entries = sorted(
            ((row.timestamp, key) for key, row in self.data.items()),
            key=lambda entry: entry[0],
        )
        self._log_ts = [ts for ts, _key in entries]
        self._log_keys = [key for _ts, key in entries]
        self._log_sorted = True

    def remove(self, key: Key) -> Optional[Row]:
        """Remove and return a row (None if absent); indexes stay in sync."""
        row = self.data.pop(key, None)
        if row is None:
            return None
        if self._batch_depth:
            if (self._indexes or self._tries) and key not in self._pending:
                self._pending[key] = row
            return row
        if self._indexes:
            for columns, index in self._indexes.items():
                proj = self._project(columns, key, row.value)
                entry = index.get(proj)
                if entry is not None:
                    entry.pop(key, None)
                    if not entry:
                        del index[proj]
        for trie in self._tries.values():
            if not trie.stale:
                trie.remove(key + (row.value,), row.timestamp)
        return row

    def rows(self) -> Iterator[Tuple[Key, Value, int]]:
        """Iterate over (key, value, timestamp) triples."""
        for key, row in self.data.items():
            yield key, row.value, row.timestamp

    def tuples(self) -> Iterator[Tuple[Value, ...]]:
        """Iterate over full rows as flat tuples (args..., output)."""
        for key, row in self.data.items():
            yield key + (row.value,)

    def new_keys(self, since: int) -> List[Key]:
        """Keys of rows inserted or updated at or after timestamp ``since``.

        This is the delta used by semi-naïve evaluation (Section 4.3): a
        rule's incremental search restricts one atom at a time to these rows.
        With the usual non-decreasing write timestamps this reads only the
        log suffix at or after ``since`` — O(|delta|), not O(|table|).
        """
        if not self._log_sorted:
            return [key for key, row in self.data.items() if row.timestamp >= since]
        start = bisect_left(self._log_ts, since)
        out: List[Key] = []
        seen = set()
        for key in self._log_keys[start:]:
            if key in seen:
                continue
            seen.add(key)
            row = self.data.get(key)
            # Skip keys removed since, or whose live row predates ``since``
            # (possible only after an out-of-order overwrite).
            if row is not None and row.timestamp >= since:
                out.append(key)
        return out

    def has_new(self, since: int) -> bool:
        """True iff any live row is stamped at or after ``since``.

        The scheduler's zero-delta short-circuit: when an atom's table has
        nothing new since a rule's watermark, the whole delta search for
        that atom is skipped before any trie or index work happens.
        """
        if not self._log_sorted:
            return any(row.timestamp >= since for row in self.data.values())
        start = bisect_left(self._log_ts, since)
        for key in self._log_keys[start:]:
            row = self.data.get(key)
            if row is not None and row.timestamp >= since:
                return True
        return False

    # -- batched maintenance (apply-phase / rebuild write bursts) -------------

    def begin_batch(self) -> None:
        """Start deferring index/trie maintenance for a write burst.

        ``data`` and the write log stay up to date (reads through ``get`` /
        ``new_keys`` see every write immediately), but hash-index and trie
        updates are queued and applied as one *net* update per key at
        :meth:`end_batch`.  The apply phase and rebuild's repair loop use
        this: a key that is removed and re-inserted (or overwritten several
        times) inside the batch costs one index remove + one insert instead
        of one per write.  Nestable; index reads inside a batch flush first.
        """
        self._batch_depth += 1

    def end_batch(self) -> None:
        """Close a :meth:`begin_batch` scope, flushing queued maintenance."""
        if self._batch_depth <= 0:
            raise RuntimeError("end_batch without matching begin_batch")
        self._batch_depth -= 1
        if self._batch_depth == 0 and self._pending:
            self._flush_pending()

    def _flush_pending(self) -> None:
        """Apply the net index/trie effect of every key touched in a batch.

        Index-major: the outer loop walks each index once with its column
        set and projection decisions hoisted, instead of re-dispatching per
        written key the way unbatched ``put`` must.
        """
        pending, self._pending = self._pending, {}
        data = self.data
        arity = self.decl.arity
        if self._indexes:
            changed = [
                (key, old, row)
                for key, old in pending.items()
                for row in (data.get(key),)
                if not (old is not None and row is not None and old.value == row.value)
            ]
            if changed:
                for columns, index in self._indexes.items():
                    args_only = all(col < arity for col in columns)
                    index_setdefault = index.setdefault
                    index_get = index.get
                    for key, old, row in changed:
                        if old is not None:
                            if args_only and row is not None:
                                continue  # arg-only projection: unchanged
                            old_proj = self._project(columns, key, old.value)
                            entry = index_get(old_proj)
                            if entry is not None:
                                entry.pop(key, None)
                                if not entry:
                                    del index[old_proj]
                        if row is not None:
                            index_setdefault(
                                self._project(columns, key, row.value), {}
                            )[key] = None
        if self._tries:
            for key, old in pending.items():
                row = data.get(key)
                if (
                    old is not None
                    and row is not None
                    and old.value == row.value
                    and old.timestamp == row.timestamp
                ):
                    continue
                for trie in self._tries.values():
                    if trie.stale:
                        continue  # rebuilt from ``data`` on next access
                    if old is not None:
                        trie.remove(key + (old.value,), old.timestamp)
                    if row is not None:
                        trie.insert(key + (row.value,), row.timestamp)

    # -- snapshots (push/pop support) ----------------------------------------

    def snapshot(self) -> tuple:
        """Capture the table's rows and write log for a later :meth:`restore`.

        Rows are shared, not copied: the engine never mutates a ``Row`` in
        place (``put`` always stores a fresh one), so structural sharing is
        safe and keeps ``push`` cheap.  Indexes are derived data and are not
        captured; :meth:`restore` marks them for lazy rebuild instead.
        """
        if self._pending:
            self._flush_pending()
        return (dict(self.data), list(self._log_ts), list(self._log_keys), self._log_sorted)

    def restore(self, state: tuple) -> None:
        """Reinstall a state captured by :meth:`snapshot`.

        Copies defensively, like ``UnionFind.restore``: installing the
        snapshot's own containers by reference would let post-restore
        writes mutate the captured tuple, corrupting a second restore of
        the same snapshot (e.g. a push-stack entry pinned across an
        aborted transactional batch).

        Hash indexes describe the abandoned state and are dropped (rebuilt
        on demand).  Registered tries survive — their orderings are the
        compiled rules' access plans — but are marked stale so the next
        access reconstructs them from the restored rows.
        """
        data, log_ts, log_keys, log_sorted = state
        self.data = dict(data)
        self._log_ts = list(log_ts)
        self._log_keys = list(log_keys)
        self._log_sorted = log_sorted
        self._pending.clear()
        self._indexes.clear()
        for trie in self._tries.values():
            trie.stale = True

    def load_rows(self, entries: List[Tuple[Key, Value, int]]) -> None:
        """Bulk-install rows from a deserialized snapshot.

        Replaces the table's contents wholesale (keys in ``entries`` order,
        which a snapshot records as the original insertion order) and
        rebuilds the write log sorted by timestamp.  Like :meth:`restore`,
        derived indexes are invalidated rather than maintained: hash indexes
        are dropped and registered tries marked stale for lazy rebuild.
        """
        self.data = {key: Row(value, ts) for key, value, ts in entries}
        self._compact_log()
        self._pending.clear()
        self._indexes.clear()
        for trie in self._tries.values():
            trie.stale = True

    # -- hash indexes ---------------------------------------------------------

    def index(self, columns: Tuple[int, ...]) -> HashIndex:
        """Hash index mapping projections on ``columns`` to matching keys.

        Built once on first request (O(|table|)) and then maintained
        incrementally by ``put``/``remove``, so repeated access — e.g.
        rebuilding's per-round dirty-id probes — no longer pays a rebuild
        whenever the table changed.  Column ``arity`` refers to the output.
        """
        if self._pending:
            self._flush_pending()
        cached = self._indexes.get(columns)
        if cached is not None:
            return cached
        index: HashIndex = {}
        for key, row in self.data.items():
            index.setdefault(self._project(columns, key, row.value), {})[key] = None
        self._indexes[columns] = index
        return index

    def column_values(self, column: int) -> Dict[Value, Dict[Key, None]]:
        """Single-column index view (used by tests and introspection)."""
        grouped = self.index((column,))
        return {proj[0]: keys for proj, keys in grouped.items()}

    # -- trie indexes ---------------------------------------------------------

    def ensure_trie(self, order: Order) -> TrieIndex:
        """Register (or refresh) the persistent trie over ``order``.

        ``order`` must be a permutation of all columns ``0 .. arity``.  The
        first registration builds the trie from the current rows; later
        calls are cheap no-ops unless a snapshot restore left it stale.
        """
        if self._pending:
            self._flush_pending()
        trie = self._tries.get(order)
        if trie is None:
            trie = TrieIndex(order)
            trie.rebuild_from(self._stamped_rows())
            self._tries[order] = trie
        elif trie.stale:
            trie.rebuild_from(self._stamped_rows())
        return trie

    def trie(self, order: Order) -> Optional[TrieIndex]:
        """The registered trie over ``order``, or None — never builds one.

        Search paths use this: an unregistered ordering (one-off queries,
        ``check``) falls back to the ad-hoc per-execution trie instead of
        paying for a persistent index it would use once.
        """
        if self._pending:
            self._flush_pending()
        trie = self._tries.get(order)
        if trie is None:
            return None
        if trie.stale:
            trie.rebuild_from(self._stamped_rows())
        return trie

    def trie_orders(self) -> List[Order]:
        """The currently registered trie orderings (introspection/tests)."""
        return list(self._tries)

    def _stamped_rows(self) -> Iterator[Tuple[Tuple[Value, ...], int]]:
        for key, row in self.data.items():
            yield key + (row.value,), row.timestamp
