"""JSON-encoded session programs: the DSL surface of the wire protocol.

A program is a JSON array of **ops** — each a ``{"op": ...}`` object — run
in order against one session's engine.  Terms, values, and actions reuse the
``repro.snapshot/v1`` wire shapes (:mod:`repro.serialize.encode`): a term is
``["v", name]`` / ``["l", [sort, payload]]`` / ``["a", func, [args...]]``,
an action is ``["let"|"union"|"set"|"delete"|"panic"|"expr", ...]``.  A fact
is a term (a truthy pattern) or ``["=", term, term]`` (an equality fact).

Ops::

    {"op": "sort",        "name": s}
    {"op": "relation",    "name": f, "args": [sorts...]}
    {"op": "function",    "name": f, "args": [...], "out": s,
                          "merge": "union"|"error"|<primitive>,   # optional
                          "default": [sort, payload],             # optional
                          "cost": n}                              # optional
    {"op": "constructor", "name": f, "args": [...], "out": s, "cost": n}
    {"op": "rule",        "facts": [...], "actions": [...],
                          "name": s, "ruleset": s}                # both optional
    {"op": "rewrite",     "lhs": t, "rhs": t, "conditions": [...],
                          "name": s, "ruleset": s, "bidirectional": b}
    {"op": "let",         "name": s, "term": t}
    {"op": "add",         "term": t}
    {"op": "union",       "lhs": t, "rhs": t}
    {"op": "run",         "limit": n, "ruleset": s,
                          "deadline_ms": n, "max_nodes": n}       # optional
    {"op": "run-schedule","schedules": [sched...],
                          "deadline_ms": n, "max_nodes": n}       # optional
    {"op": "check",       "facts": [...]}
    {"op": "extract",     "term": t}
    {"op": "explain",     "lhs": t, "rhs": t}
    {"op": "stats"}

A schedule is ``["run", limit, ruleset?]``, ``["saturate", sched...]``,
``["seq", sched...]``, or ``["repeat", n, sched...]``.

Programs share the session's global ``let`` environment with the ``.egg``
surface: a ``["v", name]`` naming a global is inlined as a literal wherever
it appears (same binding rule the evaluator applies), and ``{"op": "let"}``
adds a binding later ``.egg`` batches can see.

Each op produces one JSON result object (in program order).  ``check``
reports ``{"ok": false, "count": 0}`` instead of failing the program — a
query API wants to *ask*, not crash — while malformed ops and engine errors
raise :class:`~repro.session.errors.ProgramError` naming the op index
(HTTP 422 at the server).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from ..core.schema import RunReport
from ..core.terms import Term, TermApp, TermLit, TermVar
from ..core.values import Value
from ..engine.actions import Action, Delete, Expr, Let, Set, Union
from ..engine.errors import CheckError, EGraphError
from ..engine.rule import EqFact, Fact, Rule
from ..engine.schedule import Repeat, Run, Saturate, Schedule, Seq
from ..frontend.printer import format_term
from ..serialize import SnapshotError
from ..serialize.encode import (
    decode_action,
    decode_term,
    decode_value,
    encode_term,
    encode_value,
)
from ..testing.faults import trip
from .errors import ProgramError

if TYPE_CHECKING:  # pragma: no cover - types only
    from ..engine.egraph import EGraph

Json = Any


class _Ctx:
    """One program run: the target engine plus the session's global env."""

    __slots__ = ("engine", "env", "default_deadline_ms", "default_max_nodes")

    def __init__(
        self,
        engine: "EGraph",
        env: Dict[str, Value],
        default_deadline_ms: Optional[int] = None,
        default_max_nodes: Optional[int] = None,
    ) -> None:
        self.engine = engine
        self.env = env
        self.default_deadline_ms = default_deadline_ms
        self.default_max_nodes = default_max_nodes


def report_json(report: RunReport) -> Dict[str, Json]:
    """A :class:`RunReport` as the wire dict every run-style result carries."""
    return {
        "iterations": report.iterations,
        "matches": report.num_matches,
        "saturated": report.saturated,
        "stopped_reason": report.stopped_reason,
        "updated": report.updated,
        "search_s": report.search_time,
        "apply_s": report.apply_time,
        "rebuild_s": report.rebuild_time,
    }


def _str(op: Dict[str, Json], key: str, default: Optional[str] = None) -> str:
    value = op.get(key, default)
    if not isinstance(value, str):
        raise ProgramError(f"field {key!r} must be a string, got {value!r}")
    return value


def _opt_int(op: Dict[str, Json], key: str) -> Optional[int]:
    value = op.get(key)
    if value is None:
        return None
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise ProgramError(f"field {key!r} must be a non-negative integer, got {value!r}")
    return value


def _sort_list(op: Dict[str, Json], key: str) -> List[str]:
    value = op.get(key, [])
    if not isinstance(value, list) or not all(isinstance(s, str) for s in value):
        raise ProgramError(f"field {key!r} must be a list of sort names, got {value!r}")
    return value


def _inline(term: Term, env: Dict[str, Value]) -> Term:
    """Replace variables naming global bindings with literals (the .egg rule)."""
    if isinstance(term, TermVar) and term.name in env:
        return TermLit(env[term.name])
    if isinstance(term, TermApp):
        return TermApp(term.func, tuple(_inline(arg, env) for arg in term.args))
    return term


def _inline_action(action: Action, env: Dict[str, Value]) -> Action:
    if isinstance(action, Let):
        return Let(action.name, _inline(action.expr, env))
    if isinstance(action, Union):
        return Union(_inline(action.lhs, env), _inline(action.rhs, env))
    if isinstance(action, Set):
        call = _inline(action.call, env)
        assert isinstance(call, TermApp)
        return Set(call, _inline(action.value, env))
    if isinstance(action, Delete):
        call = _inline(action.call, env)
        assert isinstance(call, TermApp)
        return Delete(call)
    if isinstance(action, Expr):
        return Expr(_inline(action.expr, env))
    return action


def _term(ctx: _Ctx, obj: Json) -> Term:
    return _inline(decode_term(obj), ctx.env)


def _fact(ctx: _Ctx, obj: Json) -> Fact:
    if isinstance(obj, list) and len(obj) == 3 and obj[0] == "=":
        return EqFact(_term(ctx, obj[1]), _term(ctx, obj[2]))
    return _term(ctx, obj)


def _facts(ctx: _Ctx, op: Dict[str, Json], key: str = "facts") -> List[Fact]:
    value = op.get(key, [])
    if not isinstance(value, list):
        raise ProgramError(f"field {key!r} must be a list of facts, got {value!r}")
    return [_fact(ctx, obj) for obj in value]


def _schedule(obj: Json) -> Schedule:
    if not isinstance(obj, list) or not obj or not isinstance(obj[0], str):
        raise ProgramError(f"malformed schedule {obj!r}")
    head, rest = obj[0], obj[1:]
    if head == "run":
        limit = rest[0] if rest else 1
        ruleset = rest[1] if len(rest) > 1 else ""
        if not isinstance(limit, int) or isinstance(limit, bool) or limit < 1:
            raise ProgramError(f"schedule run limit must be a positive int, got {limit!r}")
        if not isinstance(ruleset, str):
            raise ProgramError(f"schedule ruleset must be a string, got {ruleset!r}")
        return Run(limit, ruleset)
    if head == "saturate":
        return Saturate(tuple(_schedule(s) for s in rest) or (Run(),))
    if head == "seq":
        return Seq(tuple(_schedule(s) for s in rest))
    if head == "repeat":
        if not rest or not isinstance(rest[0], int) or isinstance(rest[0], bool):
            raise ProgramError(f"schedule repeat needs an integer count, got {obj!r}")
        return Repeat(rest[0], tuple(_schedule(s) for s in rest[1:]) or (Run(),))
    raise ProgramError(f"unknown schedule head {head!r}")


def _budget_kwargs(ctx: _Ctx, op: Dict[str, Json]) -> Dict[str, Json]:
    """An op's run budgets, falling back to the request-level defaults."""
    deadline_ms = _opt_int(op, "deadline_ms")
    if deadline_ms is None:
        deadline_ms = ctx.default_deadline_ms
    max_nodes = _opt_int(op, "max_nodes")
    if max_nodes is None:
        max_nodes = ctx.default_max_nodes
    return {
        "deadline_s": deadline_ms / 1000.0 if deadline_ms is not None else None,
        "max_nodes": max_nodes,
    }


# -- op handlers --------------------------------------------------------------


def _op_sort(ctx: _Ctx, op: Dict[str, Json]) -> Json:
    ctx.engine.declare_sort(_str(op, "name"))
    return {"declared": op["name"]}


def _op_relation(ctx: _Ctx, op: Dict[str, Json]) -> Json:
    ctx.engine.relation(_str(op, "name"), _sort_list(op, "args"))
    return {"declared": op["name"]}


def _op_function(ctx: _Ctx, op: Dict[str, Json]) -> Json:
    merge = op.get("merge")
    if merge is not None and not isinstance(merge, str):
        raise ProgramError(f"field 'merge' must be a string, got {merge!r}")
    default = op.get("default")
    ctx.engine.function(
        _str(op, "name"),
        _sort_list(op, "args"),
        _str(op, "out"),
        merge=merge,
        default=decode_value(default) if default is not None else None,
        cost=_opt_int(op, "cost") or 1,
        unextractable=bool(op.get("unextractable", False)),
    )
    return {"declared": op["name"]}


def _op_constructor(ctx: _Ctx, op: Dict[str, Json]) -> Json:
    ctx.engine.constructor(
        _str(op, "name"),
        _sort_list(op, "args"),
        _str(op, "out"),
        cost=_opt_int(op, "cost") or 1,
    )
    return {"declared": op["name"]}


def _op_rule(ctx: _Ctx, op: Dict[str, Json]) -> Json:
    actions = op.get("actions", [])
    if not isinstance(actions, list):
        raise ProgramError(f"field 'actions' must be a list, got {actions!r}")
    name = ctx.engine.add_rule(
        Rule(
            facts=_facts(ctx, op),
            actions=[_inline_action(decode_action(obj), ctx.env) for obj in actions],
            name=op.get("name"),
            ruleset=_str(op, "ruleset", ""),
        )
    )
    return {"rule": name}


def _op_rewrite(ctx: _Ctx, op: Dict[str, Json]) -> Json:
    names = ctx.engine.add_rewrite(
        _term(ctx, op["lhs"]),
        _term(ctx, op["rhs"]),
        conditions=_facts(ctx, op, "conditions"),
        name=op.get("name"),
        ruleset=_str(op, "ruleset", ""),
        bidirectional=bool(op.get("bidirectional", False)),
    )
    return {"rules": names}


def _op_let(ctx: _Ctx, op: Dict[str, Json]) -> Json:
    name = _str(op, "name")
    value = ctx.engine.add(_term(ctx, op["term"]))
    ctx.env[name] = value
    return {"let": name, "value": encode_value(value)}


def _op_add(ctx: _Ctx, op: Dict[str, Json]) -> Json:
    return {"value": encode_value(ctx.engine.add(_term(ctx, op["term"])))}


def _op_union(ctx: _Ctx, op: Dict[str, Json]) -> Json:
    value = ctx.engine.union(_term(ctx, op["lhs"]), _term(ctx, op["rhs"]))
    return {"value": encode_value(value)}


def _op_run(ctx: _Ctx, op: Dict[str, Json]) -> Json:
    limit = _opt_int(op, "limit")
    report = ctx.engine.run(
        limit if limit is not None else 1,
        ruleset=_str(op, "ruleset", ""),
        **_budget_kwargs(ctx, op),
    )
    return {"report": report_json(report)}


def _op_run_schedule(ctx: _Ctx, op: Dict[str, Json]) -> Json:
    schedules = op.get("schedules")
    if not isinstance(schedules, list) or not schedules:
        raise ProgramError("field 'schedules' must be a non-empty list")
    report = ctx.engine.run_schedule(
        *(_schedule(s) for s in schedules), **_budget_kwargs(ctx, op)
    )
    return {"report": report_json(report)}


def _op_check(ctx: _Ctx, op: Dict[str, Json]) -> Json:
    facts = _facts(ctx, op)
    if not facts:
        raise ProgramError("check needs at least one fact")
    try:
        count = ctx.engine.check(*facts)
    except CheckError:
        return {"ok": False, "count": 0}
    return {"ok": True, "count": count}


def _op_extract(ctx: _Ctx, op: Dict[str, Json]) -> Json:
    cost, best = ctx.engine.extract_with_cost(_term(ctx, op["term"]))
    return {"cost": cost, "term": format_term(best), "encoded": encode_term(best)}


def _op_explain(ctx: _Ctx, op: Dict[str, Json]) -> Json:
    explanation = ctx.engine.explain(_term(ctx, op["lhs"]), _term(ctx, op["rhs"]))
    return {
        "sort": explanation.sort,
        "lhs": explanation.lhs,
        "rhs": explanation.rhs,
        "steps": [
            {
                "lhs": step.lhs,
                "rhs": step.rhs,
                "kind": step.justification.kind,
                "name": step.justification.name,
            }
            for step in explanation.steps
        ],
    }


def _op_stats(ctx: _Ctx, op: Dict[str, Json]) -> Json:
    return ctx.engine.stats()


_OPS: Dict[str, Callable[[_Ctx, Dict[str, Json]], Json]] = {
    "sort": _op_sort,
    "relation": _op_relation,
    "function": _op_function,
    "constructor": _op_constructor,
    "rule": _op_rule,
    "rewrite": _op_rewrite,
    "let": _op_let,
    "add": _op_add,
    "union": _op_union,
    "run": _op_run,
    "run-schedule": _op_run_schedule,
    "check": _op_check,
    "extract": _op_extract,
    "explain": _op_explain,
    "stats": _op_stats,
}


def run_ops(
    engine: "EGraph",
    ops: Json,
    env: Optional[Dict[str, Value]] = None,
    *,
    default_deadline_ms: Optional[int] = None,
    default_max_nodes: Optional[int] = None,
) -> List[Json]:
    """Run a JSON program against ``engine``; one result object per op.

    ``env`` is the session's global ``let`` environment — shared with the
    ``.egg`` surface, mutated in place by ``let`` ops.
    ``default_deadline_ms``/``default_max_nodes`` are request-level budgets
    applied to ``run``/``run-schedule`` ops that carry none of their own.
    Raises :class:`ProgramError` on the first malformed or failing op,
    naming its index.  This function applies ops as it goes; the session
    layer's transactional batches (:meth:`Session.run_program`) roll a
    failed program back to its pre-batch state — call ``run_ops`` directly
    only when partial application is acceptable.
    """
    if not isinstance(ops, list):
        raise ProgramError(f"a program must be a JSON array of ops, got {ops!r}")
    ctx = _Ctx(
        engine, env if env is not None else {}, default_deadline_ms, default_max_nodes
    )
    results: List[Json] = []
    for index, op in enumerate(ops):
        if not isinstance(op, dict):
            raise ProgramError(f"op {index}: expected an object, got {op!r}")
        kind = op.get("op")
        handler = _OPS.get(kind) if isinstance(kind, str) else None
        if handler is None:
            known = ", ".join(sorted(_OPS))
            raise ProgramError(f"op {index}: unknown op {kind!r} (known: {known})")
        # Fault-injection point for the durability tests: an exception
        # "between ops" must behave exactly like a failing op.
        trip("batch.op", tag=index)
        try:
            results.append(handler(ctx, op))
        except ProgramError as error:
            raise ProgramError(f"op {index} ({kind}): {error}") from None
        except (EGraphError, SnapshotError, KeyError, TypeError, ValueError) as error:
            raise ProgramError(f"op {index} ({kind}): {error}") from error
    return results
