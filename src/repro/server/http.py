"""Minimal HTTP/1.1 framing over asyncio streams — no dependencies.

Just enough protocol for a JSON API: request line + headers + a
``Content-Length``-framed body in, a JSON document out, keep-alive until
either side asks to close.  No chunked encoding, no TLS, no multipart —
clients are scripts and tests, not browsers.

The handler passed to :func:`serve` is an *async* callable
``(method, path, body: bytes) -> (status, json_obj)``; transport-level
problems short-circuit through :class:`HttpError`.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Awaitable, Callable, Dict, Optional, Tuple

from .._version import package_version

#: Largest accepted request body; programs and .egg batches are small.
MAX_BODY = 64 * 1024 * 1024
#: Largest accepted request line / single header line.
MAX_LINE = 64 * 1024

_STATUS_TEXT = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: A handler returns ``(status, json_obj)`` or ``(status, json_obj, headers)``.
Handler = Callable[[str, str, bytes], Awaitable[Tuple[Any, ...]]]


class HttpError(Exception):
    """A transport-level failure carrying the status to answer with."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.LimitOverrunError:
        raise HttpError(400, "header line too long") from None
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return b""  # clean EOF between requests
        raise HttpError(400, "truncated request") from None
    if len(line) > MAX_LINE:
        raise HttpError(400, "header line too long")
    return line[:-2]


async def _read_request(
    reader: asyncio.StreamReader,
    idle_timeout_s: Optional[float] = None,
    read_timeout_s: Optional[float] = None,
) -> Optional[Tuple[str, str, bytes, bool]]:
    """One request off the wire: (method, path, body, keep_alive); None at EOF.

    ``idle_timeout_s`` bounds the wait for the *first* byte of a request
    (an idle keep-alive connection past it is closed silently, returning
    None); ``read_timeout_s`` bounds reading the rest — headers and body —
    once a request has started, so a stalled or drip-feeding client cannot
    pin a connection forever (it gets 408 via :class:`HttpError`).
    """
    try:
        request_line = await asyncio.wait_for(_read_line(reader), idle_timeout_s)
    except asyncio.TimeoutError:
        return None  # idle keep-alive connection expired; close quietly
    if not request_line:
        return None
    try:
        return await asyncio.wait_for(
            _read_request_rest(reader, request_line), read_timeout_s
        )
    except asyncio.TimeoutError:
        raise HttpError(408, "timed out reading request headers/body") from None


async def _read_request_rest(
    reader: asyncio.StreamReader, request_line: bytes
) -> Tuple[str, str, bytes, bool]:
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line {request_line!r}")
    method, target, _version = parts
    path = target.split("?", 1)[0]

    content_length = 0
    keep_alive = True
    while True:
        line = await _read_line(reader)
        if not line:
            break
        name, _, value = line.decode("latin-1").partition(":")
        name = name.strip().lower()
        value = value.strip()
        if name == "content-length":
            try:
                content_length = int(value)
            except ValueError:
                raise HttpError(400, f"bad Content-Length {value!r}") from None
            if content_length < 0 or content_length > MAX_BODY:
                raise HttpError(413, "request body too large")
        elif name == "connection" and value.lower() == "close":
            keep_alive = False
        elif name == "transfer-encoding":
            raise HttpError(400, "chunked request bodies are not supported")

    body = b""
    if content_length:
        try:
            body = await reader.readexactly(content_length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "request body shorter than Content-Length") from None
    return method.upper(), path, body, keep_alive


def _encode_response(
    status: int,
    obj: Any,
    keep_alive: bool,
    headers: Optional[Dict[str, str]] = None,
) -> bytes:
    payload = json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"
    extra = "".join(f"{name}: {value}\r\n" for name, value in (headers or {}).items())
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Server: repro-serve/{package_version()}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        f"{extra}"
        f"\r\n"
    )
    return head.encode("latin-1") + payload


async def _handle_connection(
    handler: Handler,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    idle_timeout_s: Optional[float] = None,
    read_timeout_s: Optional[float] = None,
) -> None:
    try:
        while True:
            try:
                request = await _read_request(reader, idle_timeout_s, read_timeout_s)
            except HttpError as error:
                writer.write(
                    _encode_response(
                        error.status, {"ok": False, "error": str(error)}, False
                    )
                )
                await writer.drain()
                break
            if request is None:
                break
            method, path, body, keep_alive = request
            headers: Optional[Dict[str, str]] = None
            try:
                answer = await handler(method, path, body)
                if len(answer) == 3:
                    status, obj, headers = answer  # type: ignore[misc]
                else:
                    status, obj = answer  # type: ignore[misc]
            except HttpError as error:
                status, obj = error.status, {"ok": False, "error": str(error)}
            except Exception as error:  # noqa: BLE001 - last-resort 500
                status, obj = 500, {"ok": False, "error": f"internal error: {error}"}
            writer.write(_encode_response(status, obj, keep_alive, headers))
            await writer.drain()
            if not keep_alive:
                break
    except (ConnectionResetError, BrokenPipeError):
        pass  # client went away mid-exchange; nothing to answer
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def serve(
    handler: Handler,
    host: str,
    port: int,
    *,
    idle_timeout_s: Optional[float] = None,
    read_timeout_s: Optional[float] = None,
) -> "asyncio.base_events.Server":
    """Start listening; returns the asyncio server (caller owns shutdown)."""

    async def on_connection(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        await _handle_connection(handler, reader, writer, idle_timeout_s, read_timeout_s)

    return await asyncio.start_server(on_connection, host, port, limit=MAX_LINE)
