"""The root of the repro exception hierarchy.

Every error this package raises deliberately — engine failures
(:mod:`repro.engine.errors`) and text-language failures
(:mod:`repro.frontend.errors`) — derives from :class:`ReproError`, so
embedders and the CLI can catch one type.  Genuine bugs still surface as
ordinary Python exceptions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""
