"""Crash recovery, end to end: real ``repro-serve`` processes, real signals.

The durability contract, tested the only way it can honestly be tested —
by killing the process:

* ``SIGKILL`` mid-flight: checkpointed sessions come back byte-for-byte on
  a restart with the same ``--state-dir``, answering check/extract/explain
  identically on both the ``.egg`` and JSON program surfaces;
* ``SIGTERM``: the server drains, checkpoints *every* live session on its
  own (no explicit checkpoint calls), exits 0, and a restart restores them;
* a fault-injected hard crash (``REPRO_FAULTS=...:exit``) inside the
  checkpoint write: the process dies mid-write, yet the state dir holds
  either the previous checkpoint or none — never a corrupt file.
"""

import http.client
import json
import os
import signal
import subprocess
import sys
import time

import pytest

SETUP = """
(datatype Math (Num i64) (Add Math Math))
(rewrite (Add x y) (Add y x) :name "add-comm")
(let expr (Add (Num 1) (Num 2)))
(run 3)
"""

#: Observations a restored session must answer identically to the original.
PROBES = [
    ("egg", {"program": "(check (= expr (Add (Num 2) (Num 1))))"}),
    ("egg", {"program": "(extract expr)"}),
    ("egg", {"program": "(explain (Add (Num 1) (Num 2)) (Add (Num 2) (Num 1)))"}),
    (
        "program",
        {
            "ops": [
                {
                    "op": "extract",
                    "term": ["a", "Add", [["a", "Num", [["l", ["i64", 1]]]], ["a", "Num", [["l", ["i64", 2]]]]]],
                }
            ]
        },
    ),
]


class Server:
    """One ``repro-serve`` subprocess bound to an ephemeral port."""

    def __init__(self, state_dir, *extra_args, env_extra=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "src")
        env.update(env_extra or {})
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.server.cli",
                "--port",
                "0",
                "--state-dir",
                str(state_dir),
                *extra_args,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        self.port = None
        deadline = time.time() + 30
        while time.time() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                raise AssertionError(f"repro-serve died: exit {self.proc.poll()}")
            if "listening on" in line:
                self.port = int(line.rsplit(":", 1)[1])
                break
        assert self.port, "no listening line within 30s"

    def request(self, method, path, body=None):
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=30)
        try:
            payload = json.dumps(body) if body is not None else None
            conn.request(method, path, body=payload)
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()

    def kill9(self):
        self.proc.kill()
        self.proc.wait(timeout=10)

    def sigterm(self, timeout=30):
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=timeout)

    def drain_output(self):
        out, _ = self.proc.communicate(timeout=10)
        return out

    def close(self):
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=10)


def _observe(server, sid):
    answers = []
    for action, body in PROBES:
        status, payload = server.request("POST", f"/sessions/{sid}/{action}", body)
        assert status == 200, payload
        answers.append(payload)
    return answers


def _build_session(server):
    status, body = server.request("POST", "/sessions", {})
    assert status == 201
    sid = body["session"]["id"]
    status, body = server.request("POST", f"/sessions/{sid}/egg", {"program": SETUP})
    assert status == 200, body
    return sid


def test_sigkill_then_restart_restores_checkpointed_sessions(tmp_path):
    state = tmp_path / "state"
    first = Server(state)
    try:
        sid = _build_session(first)
        # A fork diverges, then both are checkpointed: restore must keep
        # them distinct.
        status, body = first.request("POST", f"/sessions/{sid}/fork")
        fid = body["session"]["id"]
        first.request(
            "POST", f"/sessions/{fid}/egg", {"program": "(union (Num 7) (Num 8))\n(run 1)"}
        )
        expected = {sid: _observe(first, sid), fid: _observe(first, fid)}
        for each in (sid, fid):
            status, body = first.request("POST", f"/sessions/{each}/checkpoint")
            assert status == 200, body
        first.kill9()  # no goodbye: whatever is on disk is all that survives
    finally:
        first.close()

    second = Server(state)
    try:
        _, body = second.request("GET", "/sessions")
        listed = {s["id"] for s in body["sessions"]}
        assert {sid, fid} <= listed
        for each, answers in expected.items():
            assert _observe(second, each) == answers
        # Divergence survived: the fork knows 7=8, the original does not.
        status, body = second.request(
            "POST", f"/sessions/{fid}/egg", {"program": "(check (= (Num 7) (Num 8)))"}
        )
        assert status == 200
        status, body = second.request(
            "POST", f"/sessions/{sid}/egg", {"program": "(check (= (Num 7) (Num 8)))"}
        )
        assert status == 422  # original never unioned them
        _, body = second.request("GET", "/stats")
        assert body["stats"]["durability"]["restores"] == 2
    finally:
        second.close()


def test_sigterm_drains_and_checkpoints_everything(tmp_path):
    state = tmp_path / "state"
    first = Server(state)
    try:
        sid = _build_session(first)
        expected = _observe(first, sid)
        # No explicit checkpoint: the graceful path must write it.
        code = first.sigterm()
        assert code == 0
        out = first.drain_output()
        assert "checkpointed 1 session(s)" in out
        assert "repro-serve stopped" in out
    finally:
        first.close()

    second = Server(state)
    try:
        assert _observe(second, sid) == expected
    finally:
        second.close()


def test_crash_inside_checkpoint_never_corrupts_the_store(tmp_path):
    from repro.serialize.snapshot import read_document
    from repro.testing.faults import CRASH_EXIT_CODE

    state = tmp_path / "state"

    # Round 1: die *inside the temp-file write* of the very first checkpoint.
    first = Server(state, env_extra={"REPRO_FAULTS": "snapshot.write:1:exit"})
    try:
        sid = _build_session(first)
        with pytest.raises((ConnectionError, http.client.HTTPException, OSError)):
            first.request("POST", f"/sessions/{sid}/checkpoint")
        assert first.proc.wait(timeout=10) == CRASH_EXIT_CODE
    finally:
        first.close()
    files = [p.name for p in state.iterdir()]
    assert files in ([], [f"{sid}.json.tmp"])  # never a live .json

    # Round 2: write one good checkpoint cleanly, then crash *before the
    # rename* while overwriting it — the old checkpoint must survive.
    second = Server(state)
    try:
        sid = _build_session(second)
        status, body = second.request("POST", f"/sessions/{sid}/checkpoint")
        assert status == 200
        second.kill9()
    finally:
        second.close()
    checkpoint = state / f"{sid}.json"
    good = checkpoint.read_bytes()

    third = Server(state, env_extra={"REPRO_FAULTS": "snapshot.rename:1:exit"})
    try:
        # Touch restores the session; mutate so the next checkpoint differs.
        status, body = third.request(
            "POST", f"/sessions/{sid}/egg", {"program": "(union (Num 5) (Num 6))"}
        )
        assert status == 200, body
        with pytest.raises((ConnectionError, http.client.HTTPException, OSError)):
            third.request("POST", f"/sessions/{sid}/checkpoint")
        assert third.proc.wait(timeout=10) == CRASH_EXIT_CODE
    finally:
        third.close()
    assert checkpoint.read_bytes() == good  # previous checkpoint untouched
    read_document(str(checkpoint))  # and it still validates


def test_fork_passivate_restore_parity(tmp_path):
    state = tmp_path / "state"
    # max-sessions=1 forces the original to passivate when its fork is
    # admitted; touching it again restores from disk mid-flight.
    server = Server(state, "--max-sessions", "1")
    try:
        sid = _build_session(server)
        expected = _observe(server, sid)  # session live, in memory
        status, body = server.request("POST", f"/sessions/{sid}/fork")
        assert status == 201
        fid = body["session"]["id"]  # admitting the fork passivated sid
        assert _observe(server, sid) == expected  # restored transparently
        assert _observe(server, fid) == expected  # fork carried the state
        _, body = server.request("GET", "/stats")
        durability = body["stats"]["durability"]
        assert durability["passivations"] >= 1 and durability["restores"] >= 1
    finally:
        server.close()
