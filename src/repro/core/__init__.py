"""Core substrate of the egglog reproduction.

These modules implement the building blocks the paper's engine is made of:

* :mod:`repro.core.unionfind` — the equivalence relation (Section 3.3)
* :mod:`repro.core.values` — sorts and runtime values
* :mod:`repro.core.schema` — function declarations with merge/default
  expressions (Section 3.2) and run reports
* :mod:`repro.core.database` — the timestamped functional database
  (Section 5.1)
* :mod:`repro.core.terms` — tree-shaped terms and patterns
* :mod:`repro.core.query` — conjunctive queries + index-nested-loop search
* :mod:`repro.core.genericjoin` — worst-case optimal generic join
  (relational e-matching)
* :mod:`repro.core.builtins` — primitive sorts and operations (Section 5.2)
"""

from .builtins import PrimitiveRegistry, default_registry
from .database import Row, Table
from .genericjoin import search_generic
from .query import PrimAtom, Query, QVar, Substitution, TableAtom, search_indexed
from .schema import FunctionDecl, RunReport
from .terms import App, L, Term, TermApp, TermLit, TermVar, V, as_term
from .unionfind import UnionFind
from .values import (
    BOOL,
    BUILTIN_SORTS,
    F64,
    I64,
    RATIONAL,
    STRING,
    UNIT,
    UNIT_VALUE,
    EqSort,
    PrimitiveSort,
    Sort,
    Value,
    boolean,
    f64,
    from_python,
    i64,
    rational,
    string,
)

__all__ = [
    "App",
    "BOOL",
    "BUILTIN_SORTS",
    "EqSort",
    "F64",
    "FunctionDecl",
    "I64",
    "L",
    "PrimAtom",
    "PrimitiveRegistry",
    "PrimitiveSort",
    "Query",
    "QVar",
    "RATIONAL",
    "Row",
    "RunReport",
    "STRING",
    "Sort",
    "Substitution",
    "Table",
    "TableAtom",
    "Term",
    "TermApp",
    "TermLit",
    "TermVar",
    "UNIT",
    "UNIT_VALUE",
    "UnionFind",
    "V",
    "Value",
    "as_term",
    "boolean",
    "default_registry",
    "f64",
    "from_python",
    "i64",
    "rational",
    "search_generic",
    "search_indexed",
    "string",
]
