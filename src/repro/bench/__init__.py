"""Benchmark harness for the egglog reproduction (``python -m repro.bench``).

The ROADMAP's north star asks for hot paths "as fast as the hardware
allows" — which is unfalsifiable without numbers.  This package makes every
PR measurable:

* :mod:`repro.bench.workloads` — parameterized workload generators
  (transitive closure on chain/random/grid graphs, math rewriting at
  growing depths, congruence-closure stress).
* :mod:`repro.bench.runner` — runs each workload under several engine
  variants (persistent-index generic join, the per-execution-trie baseline,
  index-nested-loop), times the search/apply/rebuild phases via
  :class:`~repro.core.schema.RunReport`, and emits one schema-stable
  ``BENCH_<name>.json`` per workload, including the index-vs-baseline
  comparison.

* :mod:`repro.bench.compare` — the regression gate: compares fresh BENCH
  medians against the committed files and fails past a tolerance factor
  (CI runs it on every push).

Run ``python -m repro.bench --quick`` for a CI-sized smoke pass,
``python -m repro.bench --profile --only <name>`` to profile a workload
before optimizing it.
"""

from .runner import (
    DEFAULT_VARIANTS,
    SCHEMA,
    median_run_s,
    profile_workload,
    run_suite,
    run_workload,
)
from .workloads import Workload, default_workloads

__all__ = [
    "DEFAULT_VARIANTS",
    "SCHEMA",
    "Workload",
    "default_workloads",
    "median_run_s",
    "profile_workload",
    "run_suite",
    "run_workload",
]
