"""The semi-naïve rule scheduler (Section 4.3).

One engine iteration has three phases, mirroring Figure 9 of the paper:

1. **Search** every rule's query against the current database.  A rule
   remembers ``last_run`` — the timestamp watermark of its previous search —
   and only wants matches that involve at least one row inserted or updated
   since then.  That delta restriction is implemented by running the query
   once per atom with that atom restricted to new rows (``delta_atom`` /
   ``since`` in the search functions) and deduplicating the union of the
   results; a match made entirely of old rows was already found in an
   earlier iteration.  A delta run whose atom has *zero* new rows since the
   watermark is skipped outright, before any trie or index work.
2. **Apply** every match's actions (``repro.engine.actions``).  The global
   timestamp is bumped first, so rows written in this phase are visible as
   "new" to every rule's next search.
3. **Rebuild** congruence closure (``repro.engine.rebuild``).

Matches are collected for *all* rules before any action runs, so rules
within an iteration see the same database snapshot.  The run saturates when
an iteration changes nothing: no inserts, no output updates, no unions, no
deletes.

Rules run through their **compiled executors** (``EGraph.rule_exec`` →
``repro.engine.program`` / ``repro.core.compile``): searches produce
positional match tuples over integer slots, delta dedup hashes those
tuples directly, and the apply phase fires each rule's precompiled action
program — with every table's index maintenance batched until the phase
ends, since nothing reads the indexes while actions run.

When the engine's strategy consumes persistent trie indexes, the scheduler
registers each compiled rule's column orderings with the tables up front
(once per rule — later calls are no-ops), so the first search already runs
on maintained indexes.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, List, Optional, Set, Tuple

from ..core.compile import MatchTuple
from ..core.schema import RunReport
from .budget import Budget
from .errors import EGraphError
from .program import RuleExec
from .rebuild import rebuild
from .rule import DEFAULT_RULESET, CompiledRule
from .schedule import Repeat, Run, Saturate, Schedule, Seq

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .egraph import EGraph


class Scheduler:
    """Runs rulesets to saturation or an iteration limit over one e-graph."""

    def __init__(self, egraph: "EGraph") -> None:
        self.egraph = egraph

    # -- searching ------------------------------------------------------------

    def search_rule(
        self,
        rule: CompiledRule,
        report: Optional[RunReport] = None,
        exec_: Optional[RuleExec] = None,
    ) -> List[MatchTuple]:
        """All matches of ``rule`` that involve rows newer than its watermark.

        On a rule's first run (``last_run == 0``) this is a plain full
        search.  Afterwards it is the semi-naïve delta: the union over atoms
        ``i`` of the query with atom ``i`` restricted to rows stamped at or
        after ``last_run``, deduplicated (a match containing several new rows
        is produced once per new atom).  Atoms whose tables have no new rows
        since the watermark contribute nothing and are short-circuited
        before any per-query work.

        Matches come back as positional tuples in the rule's compiled slot
        order (``exec_.slot_names``); dedup across delta atoms hashes those
        canonical tuples directly instead of sorting dict items per match.
        """
        egraph = self.egraph
        query = rule.query
        if exec_ is None:
            exec_ = egraph.rule_exec(rule)
        if not query.atoms:
            # A rule with no table atoms can never produce new matches after
            # its first firing; run it exactly once.
            if rule.last_run > 0:
                return []
            return exec_.search_full(egraph.tables)
        if rule.last_run <= 0:
            return exec_.search_full(egraph.tables)
        matches: List[MatchTuple] = []
        seen: Set[MatchTuple] = set()
        for index, atom in enumerate(query.atoms):
            table = egraph.tables.get(atom.func)
            if table is None or not table.has_new(rule.last_run):
                if report is not None:
                    report.delta_skips += 1
                continue
            exec_.search_delta(egraph.tables, index, rule.last_run, seen, matches)
        return matches

    # -- iterating ------------------------------------------------------------

    def run_iteration(self, ruleset: str = DEFAULT_RULESET) -> RunReport:
        """Run one search → apply → rebuild iteration of ``ruleset``."""
        egraph = self.egraph
        rule_names = egraph.rulesets.get(ruleset)
        if rule_names is None:
            raise EGraphError(f"unknown ruleset {ruleset!r}")
        rules = [egraph.rules[name] for name in rule_names]
        report = RunReport(iterations=1)
        updates_before = egraph.updates

        # Pending user unions would make the search see a non-canonical
        # database; repair first (no-op when nothing is dirty).
        start = time.perf_counter()
        rebuild(egraph)
        report.rebuild_time += time.perf_counter() - start

        # Every ordering a rule's plan needs is registered before searching,
        # so the join always finds maintained tries (no-op when present).
        if egraph.uses_trie_indexes:
            for rule in rules:
                egraph.register_rule_indexes(rule)

        # Phase 1: search (all rules see the same snapshot).  Each rule runs
        # through its compiled executor: positional plans, slot registers,
        # and a precompiled action program (``repro.engine.program``).
        searched: List[Tuple[CompiledRule, RuleExec, List[MatchTuple]]] = []
        for rule in rules:
            start = time.perf_counter()
            exec_ = egraph.rule_exec(rule)
            matches = self.search_rule(rule, report, exec_)
            report.search_time += time.perf_counter() - start
            report.num_matches += len(matches)
            report.per_rule_matches[rule.name] = len(matches)
            searched.append((rule, exec_, matches))

        # Phase 2: apply.  Bump the timestamp so writes from this iteration
        # are the next iteration's delta.  No search touches the indexes
        # until the next phase, so every table defers its index/trie
        # maintenance and flushes one net update per written key.
        egraph.timestamp += 1
        start = time.perf_counter()
        for table in egraph.tables.values():
            table.begin_batch()
        try:
            for rule, exec_, matches in searched:
                execute = exec_.program.execute
                # Compiled union ops carry the rule's justification baked in
                # (``RuleExec.reason``); the ambient reason additionally
                # covers unions reached indirectly — e.g. merge-fn unions
                # triggered by this rule's ``set`` actions.
                prev_reason = egraph.set_union_reason(exec_.reason)
                try:
                    for match in matches:
                        execute(match)
                finally:
                    egraph.set_union_reason(prev_reason)
                rule.last_run = egraph.timestamp
        finally:
            for table in egraph.tables.values():
                table.end_batch()
        report.apply_time += time.perf_counter() - start

        # Phase 3: rebuild congruence closure.
        start = time.perf_counter()
        rebuild(egraph)
        report.rebuild_time += time.perf_counter() - start

        report.updated = egraph.updates != updates_before
        report.saturated = not report.updated
        return report

    def run(
        self,
        limit: int = 1,
        ruleset: str = DEFAULT_RULESET,
        budget: Optional[Budget] = None,
    ) -> RunReport:
        """Run up to ``limit`` iterations, stopping early on saturation.

        A :class:`Budget` is consulted *before* each iteration: when a cap is
        hit the loop stops cleanly with ``stopped_reason`` set on the (then
        partial) report.  The check-before granularity means one iteration
        may overshoot ``max_nodes``, but the database is always left in the
        consistent state of the last completed iteration.
        """
        total = RunReport()
        for _ in range(limit):
            if budget is not None:
                reason = budget.exhausted(self.egraph)
                if reason is not None:
                    total.stopped_reason = reason
                    break
            iteration = self.run_iteration(ruleset)
            total.merge_with(iteration)
            if iteration.saturated:
                break
        return total

    # -- schedules -------------------------------------------------------------

    def run_schedule(
        self, schedule: Schedule, budget: Optional[Budget] = None
    ) -> RunReport:
        """Interpret a :mod:`repro.engine.schedule` combinator tree.

        The budget threads through every combinator: a ``Seq`` stops after
        the sub-schedule that exhausted it, ``Repeat``/``Saturate`` stop
        after the pass that did.  ``stopped_reason`` propagates up through
        :meth:`RunReport.merge_with`.
        """
        if isinstance(schedule, Run):
            return self.run(schedule.limit, schedule.ruleset, budget)
        if isinstance(schedule, Seq):
            total = RunReport()
            for sub in schedule.schedules:
                total.merge_with(self.run_schedule(sub, budget))
                if total.stopped_reason:
                    break
            return total
        if isinstance(schedule, Repeat):
            total = RunReport()
            for _ in range(schedule.times):
                if self._run_pass(schedule.schedules, total, budget):
                    break
            return total
        if isinstance(schedule, Saturate):
            total = RunReport()
            while not self._run_pass(schedule.schedules, total, budget):
                pass
            return total
        raise EGraphError(f"unknown schedule {schedule!r}")

    def _run_pass(
        self,
        schedules: Tuple[Schedule, ...],
        total: RunReport,
        budget: Optional[Budget] = None,
    ) -> bool:
        """One pass over ``schedules``; True iff the enclosing loop must stop
        (the pass changed nothing, or a budget cut it short)."""
        updates_before = self.egraph.updates
        for sub in schedules:
            total.merge_with(self.run_schedule(sub, budget))
            if total.stopped_reason:
                # Not a fixpoint claim: the pass was cut short, so whether
                # the database is quiescent is unknown.  ``saturated`` keeps
                # whatever the last completed run reported.
                return True
        quiescent = self.egraph.updates == updates_before
        total.saturated = quiescent
        return quiescent
