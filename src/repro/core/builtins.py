"""Built-in primitive sorts and operations.

egglog's base types (Section 5.2) are interpreted: their values are ordinary
constants that are only equal to themselves, and a library of primitive
operations computes over them.  Primitives appear both in rule queries (as
guards and binders, e.g. ``(!= x y)`` or ``(= z (+ x y))``) and in actions
(e.g. ``(set (path x z) (+ xy yz))``).

The registry supports overloading: a primitive name maps to a list of
candidate implementations tried in order; the first one that accepts the
argument sorts and succeeds wins.  A primitive returns ``None`` to signal
"not applicable / fails", which makes the enclosing query match fail (or the
enclosing action raise).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .values import (
    BOOL,
    F64,
    I64,
    RATIONAL,
    STRING,
    UNIT,
    UNIT_VALUE,
    Value,
    boolean,
    f64,
    i64,
    rational_from_fraction,
    string,
)

SET = "Set"


@dataclass
class Primitive:
    """One overload of a primitive operation."""

    name: str
    arg_sorts: Optional[Tuple[str, ...]]  # None means "any arity / any sorts"
    out_sort: str
    fn: Callable[..., Optional[Value]]

    def accepts(self, args: Sequence[Value]) -> bool:
        if self.arg_sorts is None:
            return True
        if len(self.arg_sorts) != len(args):
            return False
        return all(
            expected in ("any", arg.sort) for expected, arg in zip(self.arg_sorts, args)
        )


class PrimitiveError(Exception):
    """Raised when a primitive is applied to unsupported arguments."""


def _binds(fn: Callable[..., object], n_args: int) -> bool:
    """True iff ``fn`` accepts ``n_args`` positional arguments."""
    try:
        inspect.signature(fn).bind(*([None] * n_args))
        return True
    except TypeError:
        return False


class PrimitiveRegistry:
    """Registry of primitive operations, supporting overloads."""

    def __init__(self) -> None:
        self._prims: Dict[str, List[Primitive]] = {}
        self._version = 0

    @property
    def version(self) -> int:
        """Monotone counter bumped on every :meth:`register`.

        Compiled query plans capture primitive lookups from this registry;
        the process-level plan cache (:mod:`repro.engine.compilecache`) keys
        on this counter so registering a new overload invalidates plans that
        might have scheduled the old resolution.
        """
        return self._version

    def register(
        self,
        name: str,
        fn: Callable[..., Optional[Value]],
        arg_sorts: Optional[Sequence[str]] = None,
        out_sort: str = "any",
    ) -> None:
        prim = Primitive(name, tuple(arg_sorts) if arg_sorts is not None else None, out_sort, fn)
        self._prims.setdefault(name, []).append(prim)
        self._version += 1

    def __contains__(self, name: str) -> bool:
        return name in self._prims

    def overloads(self, name: str) -> List[Primitive]:
        return self._prims.get(name, [])

    def call(self, name: str, args: Sequence[Value]) -> Optional[Value]:
        """Apply primitive ``name``; return None if no overload applies."""
        for prim in self._prims.get(name, []):
            if prim.accepts(args):
                try:
                    result = prim.fn(*args)
                except TypeError:
                    # A sort-agnostic overload declares no arity; skip it as
                    # "not applicable" when the call itself cannot bind, but
                    # keep genuine TypeErrors from inside the body loud.
                    if prim.arg_sorts is None and not _binds(prim.fn, len(args)):
                        continue
                    raise
                if result is not None:
                    return result
        return None

    def result_sort(self, name: str, arg_sorts: Sequence[str]) -> Optional[str]:
        """Best-effort output sort for typechecking in the language layer."""
        candidates = self._prims.get(name, [])
        for prim in candidates:
            if prim.arg_sorts is None:
                continue
            if len(prim.arg_sorts) == len(arg_sorts) and all(
                e in ("any", a) for e, a in zip(prim.arg_sorts, arg_sorts)
            ):
                return prim.out_sort if prim.out_sort != "any" else None
        if candidates:
            out = candidates[0].out_sort
            return out if out != "any" else None
        return None


# ---------------------------------------------------------------------------
# Implementations
# ---------------------------------------------------------------------------


def _numeric(value: Value):
    return value.data


def _wrap_like(sort: str, payload) -> Value:
    if sort == I64:
        return i64(int(payload))
    if sort == F64:
        return f64(float(payload))
    if sort == RATIONAL:
        return rational_from_fraction(Fraction(payload))
    raise PrimitiveError(f"cannot wrap {payload!r} as {sort}")


def _binop(op: Callable[[object, object], object]):
    def impl(a: Value, b: Value) -> Optional[Value]:
        if a.sort != b.sort:
            return None
        try:
            result = op(_numeric(a), _numeric(b))
        except (ZeroDivisionError, OverflowError, ValueError):
            return None
        return _wrap_like(a.sort, result)

    return impl


def _cmp(op: Callable[[object, object], bool]):
    def impl(a: Value, b: Value) -> Optional[Value]:
        if a.sort != b.sort:
            return None
        return boolean(op(a.data, b.data))

    return impl


def default_registry() -> PrimitiveRegistry:
    """Build the default primitive registry used by every engine."""
    reg = PrimitiveRegistry()
    numeric_sorts = (I64, F64, RATIONAL)

    # -- arithmetic ---------------------------------------------------------
    for sort in numeric_sorts:
        two = (sort, sort)
        reg.register("+", _binop(lambda x, y: x + y), two, sort)
        reg.register("-", _binop(lambda x, y: x - y), two, sort)
        reg.register("*", _binop(lambda x, y: x * y), two, sort)
        reg.register("min", _binop(min), two, sort)
        reg.register("max", _binop(max), two, sort)

    reg.register("/", _binop(lambda x, y: x // y), (I64, I64), I64)
    reg.register("/", _binop(lambda x, y: x / y), (F64, F64), F64)
    reg.register("/", _binop(lambda x, y: x / y), (RATIONAL, RATIONAL), RATIONAL)
    reg.register("%", _binop(lambda x, y: x % y), (I64, I64), I64)
    reg.register("<<", _binop(lambda x, y: x << y), (I64, I64), I64)
    reg.register(">>", _binop(lambda x, y: x >> y), (I64, I64), I64)

    for sort in numeric_sorts:
        reg.register("neg", lambda a, s=sort: _wrap_like(s, -a.data), (sort,), sort)
        reg.register("abs", lambda a, s=sort: _wrap_like(s, abs(a.data)), (sort,), sort)

    # -- comparisons (numeric and string) ------------------------------------
    for sort in numeric_sorts + (STRING, BOOL):
        two = (sort, sort)
        reg.register("<", _cmp(lambda x, y: x < y), two, BOOL)
        reg.register("<=", _cmp(lambda x, y: x <= y), two, BOOL)
        reg.register(">", _cmp(lambda x, y: x > y), two, BOOL)
        reg.register(">=", _cmp(lambda x, y: x >= y), two, BOOL)

    # Equality / disequality are polymorphic ("any" sort) but strictly
    # binary: they compare canonical values of any single sort.
    any_pair = ("any", "any")
    reg.register("value-eq", lambda a, b: boolean(a == b), any_pair, BOOL)
    reg.register("=", lambda a, b: boolean(a == b), any_pair, BOOL)
    reg.register("!=", lambda a, b: boolean(a != b), any_pair, BOOL)

    # -- booleans ------------------------------------------------------------
    reg.register("and", lambda a, b: boolean(a.data and b.data), (BOOL, BOOL), BOOL)
    reg.register("or", lambda a, b: boolean(a.data or b.data), (BOOL, BOOL), BOOL)
    reg.register("not", lambda a: boolean(not a.data), (BOOL,), BOOL)
    reg.register("xor", lambda a, b: boolean(bool(a.data) != bool(b.data)), (BOOL, BOOL), BOOL)

    # -- conversions ---------------------------------------------------------
    reg.register("to-f64", lambda a: f64(float(a.data)), (I64,), F64)
    reg.register("to-f64", lambda a: f64(float(a.data)), (RATIONAL,), F64)
    reg.register("to-i64", lambda a: i64(int(a.data)), (F64,), I64)
    reg.register("to-rational", lambda a: rational_from_fraction(Fraction(a.data)), (I64,), RATIONAL)
    reg.register(
        "rational",
        lambda n, d: None if d.data == 0 else rational_from_fraction(Fraction(n.data, d.data)),
        (I64, I64),
        RATIONAL,
    )
    reg.register("numer", lambda a: i64(a.data.numerator), (RATIONAL,), I64)
    reg.register("denom", lambda a: i64(a.data.denominator), (RATIONAL,), I64)

    # -- strings -------------------------------------------------------------
    reg.register("+", lambda a, b: string(a.data + b.data), (STRING, STRING), STRING)
    reg.register("str-concat", lambda a, b: string(a.data + b.data), (STRING, STRING), STRING)
    reg.register("str-length", lambda a: i64(len(a.data)), (STRING,), I64)

    # -- sets -----------------------------------------------------------------
    reg.register("set-empty", lambda: Value(SET, frozenset()), (), SET)
    reg.register("empty", lambda: Value(SET, frozenset()), (), SET)
    reg.register("set-singleton", lambda v: Value(SET, frozenset([v])), ("any",), SET)
    reg.register(
        "set-insert", lambda s, v: Value(SET, s.data | frozenset([v])), (SET, "any"), SET
    )
    reg.register(
        "set-remove", lambda s, v: Value(SET, s.data - frozenset([v])), (SET, "any"), SET
    )
    reg.register("set-union", lambda a, b: Value(SET, a.data | b.data), (SET, SET), SET)
    reg.register("set-intersect", lambda a, b: Value(SET, a.data & b.data), (SET, SET), SET)
    reg.register("set-diff", lambda a, b: Value(SET, a.data - b.data), (SET, SET), SET)
    reg.register("set-contains", lambda s, v: boolean(v in s.data), (SET, "any"), BOOL)
    reg.register("set-not-contains", lambda s, v: boolean(v not in s.data), (SET, "any"), BOOL)
    reg.register("set-length", lambda s: i64(len(s.data)), (SET,), I64)

    # -- unit -----------------------------------------------------------------
    reg.register("unit", lambda: UNIT_VALUE, (), UNIT)

    return reg
