"""repro: a Python reproduction of egglog.

egglog ("Better Together: Unifying Datalog and Equality Saturation",
Zhang et al., PACMPL 7(PLDI), 2023) unifies Datalog and equality saturation
in one fixpoint engine.  ``repro.core`` holds the substrate (union-find,
functional database, query engines, primitives, terms); ``repro.engine``
holds the engine itself (rules, actions, rebuilding, the semi-naïve
scheduler, and the ``EGraph`` facade); ``repro.frontend`` implements the
paper's textual .egg language on top (``python -m repro program.egg``).
"""

from .engine import EGraph
from .errors import ReproError
from .frontend import Evaluator, run_program

__version__ = "0.1.0"

__all__ = ["EGraph", "Evaluator", "ReproError", "run_program", "__version__"]
