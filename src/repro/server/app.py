"""Route table: HTTP requests onto the :class:`SessionManager`.

Endpoints (all JSON; see ``docs/SERVER.md`` for full schemas)::

    GET    /healthz                   liveness + version
    GET    /stats                     manager + compile-cache counters
    GET    /bases                     list bases
    POST   /bases                     {"name", "program"} | {"name", "snapshot_path"}
    DELETE /bases/<name>              forget a base (live forks unaffected)
    GET    /sessions                  list sessions
    POST   /sessions                  {"base": name?} -> {"session": {...}}
    GET    /sessions/<id>             one session's info
    DELETE /sessions/<id>             drop a session
    POST   /sessions/<id>/fork        clone a live session
    POST   /sessions/<id>/egg         {"program": ".egg text"} -> {"lines": [...]}
    POST   /sessions/<id>/program     {"ops": [...]} -> {"results": [...]}
    POST   /sessions/<id>/checkpoint  write a durable checkpoint now

``egg`` and ``program`` accept optional ``"atomic"`` (default true: the
batch rolls back entirely on failure) and ``"deadline_ms"`` (per-batch run
budget) fields.

Session-layer errors map to statuses (unknown -> 404, duplicate -> 409,
capacity -> 503, bad program -> 422, checkpoint failure -> 500).  Engine
work is blocking and CPU-bound, so every dispatch runs in a worker thread —
the session mutexes do the serialization, the event loop stays free to
accept connections.

Overload behaviour: the app tracks in-flight dispatches on the event-loop
side.  Past ``max_pending`` — or once :meth:`App.drain` has been called
during shutdown — new work is refused with 503 and a ``Retry-After``
header instead of queueing without bound.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from .._version import package_version
from ..session import (
    CapacityError,
    CheckpointError,
    DuplicateNameError,
    ProgramError,
    Session,
    SessionError,
    SessionManager,
    UnknownBaseError,
    UnknownSessionError,
)
from .http import HttpError

Json = Any

#: Ordered most-specific first; CheckpointError is a server-side failure.
_ERROR_STATUS = (
    (UnknownSessionError, 404),
    (UnknownBaseError, 404),
    (DuplicateNameError, 409),
    (CapacityError, 503),
    (ProgramError, 422),
    (CheckpointError, 500),
    (SessionError, 400),
)

#: Sent with every 503 so well-behaved clients back off before retrying.
RETRY_AFTER_S = 1


def _status_of(error: SessionError) -> int:
    for kind, status in _ERROR_STATUS:
        if isinstance(error, kind):
            return status
    return 400  # pragma: no cover - table covers the hierarchy


class App:
    """The service: one manager, a blocking dispatcher, an async adapter.

    ``deadline_ms`` is the default per-batch run budget applied to ``egg``
    and ``program`` requests that don't set their own; ``max_pending``
    bounds how many dispatches may be in flight at once before new work is
    refused with 503.
    """

    def __init__(
        self,
        manager: Optional[SessionManager] = None,
        *,
        deadline_ms: Optional[int] = None,
        max_pending: Optional[int] = None,
    ) -> None:
        self.manager = manager if manager is not None else SessionManager()
        self.deadline_ms = deadline_ms
        self.max_pending = max_pending
        self.pending = 0  # touched only on the event loop — no lock needed
        self.draining = False
        self.rejected = 0  # 503s from overload/drain, for /stats
        self._idle = asyncio.Event()
        self._idle.set()

    # -- async adapter (the event-loop side) ----------------------------------

    async def handle(self, method: str, path: str, body: bytes) -> Tuple[Any, ...]:
        if self.draining:
            self.rejected += 1
            return self._unavailable("server is draining; retry against a new instance")
        if self.max_pending is not None and self.pending >= self.max_pending:
            self.rejected += 1
            return self._unavailable(
                f"too many requests in flight (max_pending={self.max_pending})"
            )
        payload = self._decode_body(body)
        loop = asyncio.get_event_loop()
        self.pending += 1
        self._idle.clear()
        try:
            status, obj = await loop.run_in_executor(
                None, self.dispatch, method, path, payload
            )
        finally:
            self.pending -= 1
            if self.pending == 0:
                self._idle.set()
        if status == 503:
            return status, obj, {"Retry-After": str(RETRY_AFTER_S)}
        return status, obj

    @staticmethod
    def _unavailable(reason: str) -> Tuple[int, Json, Dict[str, str]]:
        return 503, {"ok": False, "error": reason}, {"Retry-After": str(RETRY_AFTER_S)}

    async def drain(self, timeout_s: Optional[float] = None) -> bool:
        """Stop accepting work and wait for in-flight dispatches to finish.

        Returns True if the app went idle within ``timeout_s`` (None waits
        forever).  Call from the event loop during shutdown, then checkpoint
        via the manager.
        """
        self.draining = True
        if self.pending == 0:
            return True
        try:
            await asyncio.wait_for(self._idle.wait(), timeout_s)
            return True
        except asyncio.TimeoutError:
            return False

    @staticmethod
    def _decode_body(body: bytes) -> Json:
        if not body:
            return {}
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise HttpError(400, f"request body is not valid JSON: {error}") from None
        if not isinstance(payload, dict):
            raise HttpError(400, "request body must be a JSON object")
        return payload

    # -- blocking dispatcher (worker-thread side) -----------------------------

    def dispatch(self, method: str, path: str, payload: Dict[str, Json]) -> Tuple[int, Json]:
        """Route one request; thread-safe, callable without a server too."""
        try:
            return self._route(method, path, payload)
        except SessionError as error:
            return _status_of(error), {"ok": False, "error": str(error)}

    def _route(self, method: str, path: str, payload: Dict[str, Json]) -> Tuple[int, Json]:
        parts = [p for p in path.split("/") if p]

        if parts == ["healthz"]:
            self._require(method, "GET")
            return 200, {"ok": True, "version": package_version()}
        if parts == ["stats"]:
            self._require(method, "GET")
            stats = self.manager.stats()
            stats["server"] = {
                "pending": self.pending,
                "max_pending": self.max_pending,
                "draining": self.draining,
                "rejected": self.rejected,
                "deadline_ms": self.deadline_ms,
            }
            return 200, {"ok": True, "stats": stats}

        if parts == ["bases"]:
            if method == "GET":
                return 200, {"ok": True, "bases": self.manager.bases()}
            self._require(method, "POST")
            return self._create_base(payload)
        if len(parts) == 2 and parts[0] == "bases":
            self._require(method, "DELETE")
            self.manager.remove_base(parts[1])
            return 200, {"ok": True, "removed": parts[1]}

        if parts == ["sessions"]:
            if method == "GET":
                return 200, {"ok": True, "sessions": self.manager.sessions()}
            self._require(method, "POST")
            base = payload.get("base")
            if base is not None and not isinstance(base, str):
                raise HttpError(400, "field 'base' must be a string")
            session = self.manager.create_session(base)
            return 201, {"ok": True, "session": session.info()}
        if len(parts) >= 2 and parts[0] == "sessions":
            return self._session_route(method, parts[1], parts[2:], payload)

        raise HttpError(404, f"no route for {path!r}")

    def _create_base(self, payload: Dict[str, Json]) -> Tuple[int, Json]:
        name = payload.get("name")
        if not isinstance(name, str) or not name:
            raise HttpError(400, "field 'name' must be a non-empty string")
        program = payload.get("program")
        snapshot_path = payload.get("snapshot_path")
        if (program is None) == (snapshot_path is None):
            raise HttpError(400, "provide exactly one of 'program' or 'snapshot_path'")
        if program is not None:
            if not isinstance(program, str):
                raise HttpError(400, "field 'program' must be a string")
            info = self.manager.add_base_from_program(name, program)
        else:
            if not isinstance(snapshot_path, str):
                raise HttpError(400, "field 'snapshot_path' must be a string")
            try:
                info = self.manager.add_base_from_snapshot(name, snapshot_path)
            except OSError as error:
                raise HttpError(400, f"cannot read snapshot: {error}") from None
        return 201, {"ok": True, "base": info}

    def _session_route(
        self, method: str, session_id: str, rest: list, payload: Dict[str, Json]
    ) -> Tuple[int, Json]:
        if not rest:
            if method == "DELETE":
                self.manager.remove_session(session_id)
                return 200, {"ok": True, "removed": session_id}
            self._require(method, "GET")
            return 200, {"ok": True, "session": self.manager.get(session_id).info()}
        if len(rest) != 1:
            raise HttpError(404, f"no route for sessions/{session_id}/{'/'.join(rest)}")
        action = rest[0]
        if action == "fork":
            self._require(method, "POST")
            session = self.manager.fork_session(session_id)
            return 201, {"ok": True, "session": session.info()}
        if action == "egg":
            self._require(method, "POST")
            program = payload.get("program")
            if not isinstance(program, str):
                raise HttpError(400, "field 'program' must be a string")
            session = self.manager.get(session_id)
            lines = session.run_egg(program, **self._batch_options(payload))
            return 200, {"ok": True, "lines": lines}
        if action == "program":
            self._require(method, "POST")
            session = self.manager.get(session_id)
            results = session.run_program(
                payload.get("ops"), **self._batch_options(payload)
            )
            return 200, {"ok": True, "results": results}
        if action == "checkpoint":
            self._require(method, "POST")
            written = self.manager.checkpoint_session(session_id)
            return 200, {"ok": True, "checkpoint": written}
        raise HttpError(404, f"unknown session action {action!r}")

    def _batch_options(self, payload: Dict[str, Json]) -> Dict[str, Json]:
        """Per-request batch knobs, falling back to the app-wide deadline."""
        atomic = payload.get("atomic", True)
        if not isinstance(atomic, bool):
            raise HttpError(400, "field 'atomic' must be a boolean")
        deadline_ms = payload.get("deadline_ms", self.deadline_ms)
        if deadline_ms is not None and (
            isinstance(deadline_ms, bool)
            or not isinstance(deadline_ms, int)
            or deadline_ms <= 0
        ):
            raise HttpError(400, "field 'deadline_ms' must be a positive integer")
        return {"atomic": atomic, "deadline_ms": deadline_ms}

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise HttpError(405, f"method {method} not allowed here (want {expected})")


__all__ = ["App", "Session"]
