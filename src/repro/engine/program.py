"""Compiled action programs: the apply-phase hot path.

The interpreted :func:`repro.engine.actions.run_actions` walks the action
dataclasses with ``isinstance`` dispatch and re-evaluates every term tree
per match, copying a dict substitution as it goes.  A compiled rule fires
its actions once per match, potentially millions of times, against the same
action *structure* — so this module lowers a rule's action list once into a
flat program of closures over integer register indices:

* every query variable already has a slot (``repro.core.compile``); a
  match tuple *is* the initial register file;
* ``let`` bindings get registers of their own (re-using the variable's
  register when a let shadows a query variable, exactly like the
  interpreted dict overwrite);
* terms compile to nested closures — a variable read is ``regs[i]`` plus
  canonicalization, an application resolves its
  :class:`~repro.core.schema.FunctionDecl` and table once at compile time
  and performs the paper's get-or-default insertion inline.

The program shares the engine's compiled merge-resolution path
(``EGraph.merge_fn``) with rebuilding via
:func:`~repro.engine.actions.set_function_value`, so a ``set`` conflict and
a congruence repair resolve merges through the same cached closure.

Compiled programs are cached per rule and invalidated by the engine's
compile epoch (push/pop, rule replacement) — see ``EGraph.rule_exec``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..core.compile import MatchTuple
from ..core.proofs import Justification, rule_justification
from ..core.terms import Term, TermApp, TermLit, TermVar
from ..core.values import UNIT, UNIT_VALUE, Value
from .actions import Action, Delete, Expr, Let, Panic, Set as SetAction, Union
from .actions import set_function_value
from .compilecache import CACHE
from .errors import EGraphError, EGraphPanic

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .egraph import EGraph
    from .rule import CompiledRule

Regs = List[Optional[Value]]
TermFn = Callable[[Regs], Value]
OpFn = Callable[[Regs], None]


def _canon_args(egraph: "EGraph", arg_fns: Tuple[TermFn, ...]) -> Tuple[TermFn, ...]:
    """Wrap argument evaluators so every result is canonical.

    Evaluators whose results are canonical by construction (variable reads,
    constructor applications, non-eq literals — marked with a
    ``canonical`` attribute) pass through unwrapped, skipping the redundant
    canonicalize call the interpreter pays per argument per match.
    """
    canonicalize = egraph.canonicalize
    wrapped: List[TermFn] = []
    for fn in arg_fns:
        if getattr(fn, "canonical", False):
            wrapped.append(fn)
        else:
            wrapped.append(lambda regs, f=fn, c=canonicalize: c(f(regs)))
    return tuple(wrapped)


def compile_term(egraph: "EGraph", term: Term, env: Dict[str, int]) -> TermFn:
    """Lower ``term`` to a closure ``regs -> Value``.

    Mirrors ``EGraph.eval_term`` with ``insert=True`` (get-or-default,
    §3.2), but resolves declarations, tables, and register indices once.
    An unbound variable compiles to a closure raising the same error the
    interpreter raises at evaluation time — the rule may never fire.
    """
    if isinstance(term, TermLit):
        value = term.value

        def lit(regs: Regs) -> Value:
            return value

        lit.canonical = value.sort not in egraph._eq_sorts  # type: ignore[attr-defined]
        return lit
    if isinstance(term, TermVar):
        reg = env.get(term.name)
        if reg is None:
            name = term.name

            def unbound(regs: Regs) -> Value:
                raise EGraphError(f"unbound variable {name!r} in term evaluation")

            unbound.canonical = True  # type: ignore[attr-defined]
            return unbound
        canonicalize = egraph.canonicalize
        index = reg

        def var(regs: Regs) -> Value:
            return canonicalize(regs[index])  # type: ignore[arg-type]

        var.canonical = True  # type: ignore[attr-defined]
        return var
    if isinstance(term, TermApp):
        arg_fns = _canon_args(
            egraph, tuple(compile_term(egraph, arg, env) for arg in term.args)
        )
        canonicalize = egraph.canonicalize
        decl = egraph.decls.get(term.func)
        if decl is None:
            registry_call = egraph.registry.call
            op_name = term.func

            def prim(regs: Regs) -> Value:
                args = tuple([fn(regs) for fn in arg_fns])
                result = registry_call(op_name, args)
                if result is None:
                    raise EGraphError(
                        f"primitive {op_name!r} failed on {args!r}"
                    )
                return result

            return prim
        table = egraph.tables[decl.name]
        table_get = table.get
        table_put = table.put
        note_update = egraph.note_update
        out_is_eq = egraph.sorts[decl.out_sort].is_eq_sort

        if decl.default is None and decl.out_sort == UNIT:
            # Unit relation: the default is the unit value, which is its own
            # canonical form — no default dispatch, no canonicalization.
            def assert_fact(regs: Regs) -> Value:
                key = tuple([fn(regs) for fn in arg_fns])
                existing = table_get(key)
                if existing is not None:
                    return existing
                table_put(key, UNIT_VALUE, egraph.timestamp)
                note_update()
                return UNIT_VALUE

            assert_fact.canonical = True  # type: ignore[attr-defined]
            return assert_fact
        record_node = egraph.record_node
        func_name = decl.name
        if decl.default is None and out_is_eq:
            # Constructor/eq-sorted function: the default is a fresh e-class
            # id (the paper's make-set default), canonical by construction.
            make_id = egraph.make_id
            out_sort = decl.out_sort

            def construct(regs: Regs) -> Value:
                key = tuple([fn(regs) for fn in arg_fns])
                existing = table_get(key)
                if existing is not None:
                    return canonicalize(existing)
                value = make_id(out_sort)
                table_put(key, value, egraph.timestamp)
                record_node(func_name, key, value)
                note_update()
                return value

            construct.canonical = True  # type: ignore[attr-defined]
            return construct
        default_value = egraph._default_value

        def app(regs: Regs) -> Value:
            key = tuple([fn(regs) for fn in arg_fns])
            existing = table_get(key)
            if existing is not None:
                return canonicalize(existing) if out_is_eq else existing
            value = default_value(decl, key)
            table_put(key, canonicalize(value), egraph.timestamp)
            record_node(func_name, key, value)
            note_update()
            return value

        return app
    raise EGraphError(f"cannot evaluate {term!r}")


def _compile_call_key(
    egraph: "EGraph", call: TermApp, env: Dict[str, int]
) -> Tuple[object, Callable[[Regs], Tuple[Value, ...]]]:
    """Compile a Set/Delete target into (decl, canonical-key builder).

    Unknown functions and arity mismatches compile to closures raising the
    interpreter's fire-time errors (registration-time validation normally
    rules them out; stale rules after a pop are caught by the epoch).
    """
    decl = egraph.decls.get(call.func)
    if decl is None:
        func = call.func

        def missing(regs: Regs) -> Tuple[Value, ...]:
            raise EGraphError(f"action targets unknown function {func!r}")

        return None, missing
    if len(call.args) != decl.arity:
        func, expected, got = call.func, decl.arity, len(call.args)

        def bad_arity(regs: Regs) -> Tuple[Value, ...]:
            raise EGraphError(f"{func} expects {expected} arguments, got {got}")

        return None, bad_arity
    arg_fns = _canon_args(
        egraph, tuple(compile_term(egraph, arg, env) for arg in call.args)
    )

    def key_of(regs: Regs) -> Tuple[Value, ...]:
        return tuple([fn(regs) for fn in arg_fns])

    return decl, key_of


class ActionProgram:
    """A rule's actions lowered to straight-line register opcodes."""

    __slots__ = ("ops", "n_slots", "_pad")

    def __init__(self, ops: Tuple[OpFn, ...], n_slots: int, n_regs: int) -> None:
        self.ops = ops
        self.n_slots = n_slots
        self._pad: Regs = [None] * (n_regs - n_slots)

    def execute(self, match: MatchTuple) -> None:
        """Fire the compiled actions under ``match`` (one tuple, slot order)."""
        regs = list(match)
        if self._pad:
            regs.extend(self._pad)
        for op in self.ops:
            op(regs)


def compile_actions(
    egraph: "EGraph",
    actions: Sequence[Action],
    slot_of: Dict[str, int],
    n_slots: int,
    reason: Optional[Justification] = None,
) -> ActionProgram:
    """Lower ``actions`` into an :class:`ActionProgram` over rule slots.

    ``reason`` is baked into every compiled union op so the proof forest
    records fire-time rule identity even though the closure outlives the
    compilation — it shares the executor cache's lifetime (compile epoch),
    so a replaced rule's fresh executor carries the fresh justification.
    """
    env = dict(slot_of)
    n_regs = n_slots
    ops: List[OpFn] = []
    for action in actions:
        if isinstance(action, Let):
            reg = env.get(action.name)
            if reg is None:
                reg = n_regs
                n_regs += 1
            expr_fn = compile_term(egraph, action.expr, env)
            env[action.name] = reg
            index = reg

            def let_op(regs: Regs, fn: TermFn = expr_fn, i: int = index) -> None:
                regs[i] = fn(regs)

            ops.append(let_op)
        elif isinstance(action, Union):
            lhs_fn = compile_term(egraph, action.lhs, env)
            rhs_fn = compile_term(egraph, action.rhs, env)
            union_values = egraph.union_values

            def union_op(
                regs: Regs,
                lf: TermFn = lhs_fn,
                rf: TermFn = rhs_fn,
                why: Optional[Justification] = reason,
            ) -> None:
                union_values(lf(regs), rf(regs), why)

            ops.append(union_op)
        elif isinstance(action, SetAction):
            decl, key_fn = _compile_call_key(egraph, action.call, env)
            (value_fn,) = _canon_args(
                egraph, (compile_term(egraph, action.value, env),)
            )

            def set_op(
                regs: Regs,
                d: object = decl,
                kf: Callable[[Regs], Tuple[Value, ...]] = key_fn,
                vf: TermFn = value_fn,
            ) -> None:
                key = kf(regs)  # raises for unknown function / bad arity
                set_function_value(egraph, d, key, vf(regs))  # type: ignore[arg-type]

            ops.append(set_op)
        elif isinstance(action, Delete):
            decl, key_fn = _compile_call_key(egraph, action.call, env)
            table_remove = (
                egraph.tables[action.call.func].remove if decl is not None else None
            )
            note_update = egraph.note_update

            def delete_op(
                regs: Regs,
                kf: Callable[[Regs], Tuple[Value, ...]] = key_fn,
                rm: object = table_remove,
            ) -> None:
                key = kf(regs)  # raises for unknown function / bad arity
                if rm(key) is not None:  # type: ignore[operator]
                    note_update()

            ops.append(delete_op)
        elif isinstance(action, Panic):
            message = action.message

            def panic_op(regs: Regs, msg: str = message) -> None:
                raise EGraphPanic(msg)

            ops.append(panic_op)
        elif isinstance(action, Expr):
            expr_fn = compile_term(egraph, action.expr, env)

            def expr_op(regs: Regs, fn: TermFn = expr_fn) -> None:
                fn(regs)

            ops.append(expr_op)
        else:
            bad = action

            def unknown_op(regs: Regs, a: Action = bad) -> None:
                raise EGraphError(f"unknown action {a!r}")

            ops.append(unknown_op)
    return ActionProgram(tuple(ops), n_slots, n_regs)


# ---------------------------------------------------------------------------
# Per-rule executor bundle
# ---------------------------------------------------------------------------


class RuleExec:
    """Everything one rule needs to run hot: plan, slots, action program.

    Built by ``EGraph.rule_exec`` and cached on the rule per strategy;
    ``epoch`` pins it to the engine state it was compiled against — the
    engine bumps its compile epoch on push/pop and rule replacement, which
    invalidates every cached executor (closures capture tables and
    declarations that those operations may replace).

    The engine-independent half — slot assignment and the compiled query
    search — comes from the process-level plan cache
    (:mod:`repro.engine.compilecache`), so engines sharing a primitive
    registry (e.g. sessions forked from one base) share query plans; only
    the action program, which captures this engine's tables and counters,
    is compiled fresh per executor.
    """

    __slots__ = (
        "epoch",
        "strategy",
        "slot_of",
        "slot_names",
        "n_slots",
        "query_exec",
        "program",
        "reason",
    )

    def __init__(self, egraph: "EGraph", rule: "CompiledRule", strategy: str) -> None:
        self.epoch = egraph.compile_epoch
        self.strategy = strategy
        #: Justification for unions this rule performs; baked into the
        #: compiled union ops and installed as the ambient reason while the
        #: scheduler applies this rule's matches.
        self.reason = rule_justification(rule.name)
        plan = CACHE.plan(rule.query, strategy, egraph.registry)
        self.slot_of = plan.slot_of
        self.slot_names = plan.slot_names
        self.n_slots = plan.n_slots
        self.query_exec = plan.query_exec
        self.program = compile_actions(
            egraph, rule.actions, plan.slot_of, plan.n_slots, self.reason
        )

    def search_full(self, tables: Dict[str, object]) -> List[MatchTuple]:
        """All matches of the query (no delta restriction), in plan order."""
        out: List[MatchTuple] = []
        self.query_exec.search(tables, None, 0, out.append)  # type: ignore[attr-defined]
        return out

    def search_delta(
        self,
        tables: Dict[str, object],
        delta_atom: int,
        since: int,
        seen: Set[MatchTuple],
        out: List[MatchTuple],
    ) -> None:
        """Semi-naïve delta search, deduplicating into ``seen``/``out``.

        Match tuples are canonical positional substitutions, so the
        cross-atom dedup is one tuple hash per match — no dict sorting.
        """
        seen_add = seen.add
        out_append = out.append

        def emit(match: MatchTuple) -> None:
            if match not in seen:
                seen_add(match)
                out_append(match)

        self.query_exec.search(tables, delta_atom, since, emit)  # type: ignore[attr-defined]

    def substitution(self, match: MatchTuple) -> Dict[str, Value]:
        """Re-inflate a match tuple into a name-keyed substitution dict."""
        return dict(zip(self.slot_names, match))
