"""S-expression reader for the .egg text language.

The reader turns program text into a sequence of located s-expressions:
symbols, typed literals, and lists.  Literals are typed by lexical shape —
integers become ``i64``, decimals become ``f64``, double-quoted strings
become ``String``, and ``true``/``false`` become ``bool`` — matching the
literal grammar of the paper's Figure 4.  ``;`` starts a comment that runs
to end of line.  ``[...]`` is accepted as a synonym for ``(...)`` as long
as delimiters match.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.values import Value, boolean, f64, i64, string
from .errors import Loc, ParseError


@dataclass(frozen=True)
class Sexp:
    """Base class for s-expression nodes; every node knows its location."""

    loc: Loc


@dataclass(frozen=True)
class Symbol(Sexp):
    """A bare identifier: command names, function symbols, variables."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Literal(Sexp):
    """A self-evaluating constant, already typed as a runtime Value."""

    value: Value

    def __str__(self) -> str:
        # One source of truth for value rendering (escaping included); the
        # import is deferred so the reader stays standalone at import time.
        from .printer import format_value

        return format_value(self.value)


@dataclass(frozen=True)
class SList(Sexp):
    """A parenthesized list of sub-expressions."""

    items: Tuple[Sexp, ...]

    def __str__(self) -> str:
        return "(" + " ".join(str(item) for item in self.items) + ")"


_INT_RE = re.compile(r"[+-]?[0-9]+\Z")
_FLOAT_RE = re.compile(r"[+-]?([0-9]+\.[0-9]*|\.[0-9]+)([eE][+-]?[0-9]+)?\Z|[+-]?[0-9]+[eE][+-]?[0-9]+\Z")
_DELIMITERS = "()[]\";"
_ESCAPES = {"\\": "\\", '"': '"', "n": "\n", "t": "\t"}
_CLOSER_OF = {"(": ")", "[": "]"}


class _Reader:
    """Single-pass tokenizer + tree builder with line/column tracking."""

    def __init__(self, text: str, filename: Optional[str]) -> None:
        self.text = text
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.col = 1

    def error(self, message: str, loc: Optional[Loc] = None) -> ParseError:
        return ParseError(message, loc or self.loc(), self.filename)

    def loc(self) -> Loc:
        return Loc(self.line, self.col)

    def peek(self) -> Optional[str]:
        if self.pos >= len(self.text):
            return None
        return self.text[self.pos]

    def advance(self) -> str:
        char = self.text[self.pos]
        self.pos += 1
        if char == "\n":
            self.line += 1
            self.col = 1
        else:
            self.col += 1
        return char

    def skip_blank(self) -> None:
        while True:
            char = self.peek()
            if char is None:
                return
            if char == ";":
                while self.peek() not in (None, "\n"):
                    self.advance()
                continue
            if char.isspace():
                self.advance()
                continue
            return

    def read_all(self) -> List[Sexp]:
        out: List[Sexp] = []
        while True:
            self.skip_blank()
            if self.peek() is None:
                return out
            out.append(self.read_one())

    def read_one(self) -> Sexp:
        self.skip_blank()
        char = self.peek()
        loc = self.loc()
        if char is None:
            raise self.error("unexpected end of input", loc)
        if char in "([":
            return self.read_list()
        if char in ")]":
            raise self.error(f"unmatched {char!r}", loc)
        if char == '"':
            return self.read_string()
        return self.read_atom()

    def read_list(self) -> SList:
        open_loc = self.loc()
        opener = self.advance()
        closer = _CLOSER_OF[opener]
        items: List[Sexp] = []
        while True:
            self.skip_blank()
            char = self.peek()
            if char is None:
                raise self.error(
                    f"unclosed {opener!r} opened at {open_loc}", open_loc
                )
            if char in ")]":
                close_loc = self.loc()
                self.advance()
                if char != closer:
                    raise self.error(
                        f"mismatched delimiter: {opener!r} opened at {open_loc} "
                        f"closed by {char!r}",
                        close_loc,
                    )
                return SList(open_loc, tuple(items))
            items.append(self.read_one())

    def read_string(self) -> Literal:
        open_loc = self.loc()
        self.advance()  # opening quote
        chars: List[str] = []
        while True:
            char = self.peek()
            if char is None or char == "\n":
                raise self.error(f"unterminated string opened at {open_loc}", open_loc)
            if char == '"':
                self.advance()
                return Literal(open_loc, string("".join(chars)))
            if char == "\\":
                escape_loc = self.loc()
                self.advance()
                escaped = self.peek()
                if escaped is None or escaped not in _ESCAPES:
                    raise self.error(f"bad string escape \\{escaped or ''}", escape_loc)
                chars.append(_ESCAPES[self.advance()])
                continue
            chars.append(self.advance())

    def read_atom(self) -> Sexp:
        loc = self.loc()
        chars: List[str] = []
        while True:
            char = self.peek()
            if char is None or char.isspace() or char in _DELIMITERS:
                break
            chars.append(self.advance())
        text = "".join(chars)
        if _INT_RE.match(text):
            try:
                return Literal(loc, i64(int(text)))
            except ValueError:
                # CPython caps str->int conversion (sys.int_info.str_digits_
                # check_threshold); a longer literal must surface as a
                # located parse error, not a raw ValueError.
                raise self.error(
                    f"integer literal too large ({len(text)} digits)", loc
                ) from None
        if _FLOAT_RE.match(text):
            return Literal(loc, f64(float(text)))
        if text in ("true", "false"):
            return Literal(loc, boolean(text == "true"))
        return Symbol(loc, text)


def parse_sexps(text: str, filename: Optional[str] = None) -> List[Sexp]:
    """Read every s-expression in ``text``; raise :class:`ParseError` on bad syntax."""
    return _Reader(text, filename).read_all()
