"""Parser for the core egglog command set (Figure 4 of the paper).

The parser turns read s-expressions into :class:`Command` records.  It
checks *shape* — each command's positional structure and keyword options —
but leaves expressions, facts, and actions as raw s-expressions: lowering
them into engine terms needs the engine's declarations and is the
evaluator's job (:mod:`repro.frontend.evaluator`).  Top-level forms whose
head is not a command keyword are kept as :class:`TopAction` so ground
facts like ``(edge 1 2)`` can be asserted directly, as in egglog.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .errors import Loc, ParseError
from .sexp import Literal, Sexp, SList, Symbol, parse_sexps


@dataclass(frozen=True)
class Command:
    """Base class for parsed commands; every command knows its location."""

    loc: Loc


@dataclass(frozen=True)
class SortCmd(Command):
    name: str


@dataclass(frozen=True)
class Variant:
    """One constructor inside a ``datatype`` declaration."""

    loc: Loc
    name: str
    arg_sorts: Tuple[str, ...]
    cost: int = 1


@dataclass(frozen=True)
class DatatypeCmd(Command):
    name: str
    variants: Tuple[Variant, ...]


@dataclass(frozen=True)
class FunctionCmd(Command):
    name: str
    arg_sorts: Tuple[str, ...]
    out_sort: str
    merge: Optional[Sexp] = None
    default: Optional[Sexp] = None
    cost: int = 1
    unextractable: bool = False


@dataclass(frozen=True)
class RelationCmd(Command):
    name: str
    arg_sorts: Tuple[str, ...]


@dataclass(frozen=True)
class RuleCmd(Command):
    facts: Tuple[Sexp, ...]
    actions: Tuple[Sexp, ...]
    name: Optional[str] = None
    ruleset: str = ""


@dataclass(frozen=True)
class RewriteCmd(Command):
    lhs: Sexp
    rhs: Sexp
    conditions: Tuple[Sexp, ...] = ()
    name: Optional[str] = None
    ruleset: str = ""
    bidirectional: bool = False


@dataclass(frozen=True)
class LetCmd(Command):
    name: str
    expr: Sexp


@dataclass(frozen=True)
class UnionCmd(Command):
    lhs: Sexp
    rhs: Sexp


@dataclass(frozen=True)
class SetCmd(Command):
    call: SList
    value: Sexp


@dataclass(frozen=True)
class DeleteCmd(Command):
    call: SList


@dataclass(frozen=True)
class RunCmd(Command):
    """``(run n [:ruleset r] [:deadline-ms n] [:max-nodes n])``.

    ``deadline_ms``/``max_nodes`` are optional run budgets, checked by the
    scheduler between iterations; ``None`` means unlimited.
    """

    limit: int
    ruleset: str = ""
    deadline_ms: Optional[int] = None
    max_nodes: Optional[int] = None


@dataclass(frozen=True)
class RunScheduleCmd(Command):
    """``(run-schedule sched...)``: schedule combinators, left as s-exprs.

    Schedules nest arbitrarily (``saturate``/``seq``/``repeat``/``run`` and
    bare ruleset names); lowering them needs the engine's rulesets, so the
    parser keeps them raw and the evaluator interprets.
    """

    schedules: Tuple[Sexp, ...]


@dataclass(frozen=True)
class CheckCmd(Command):
    facts: Tuple[Sexp, ...]


@dataclass(frozen=True)
class ExtractCmd(Command):
    expr: Sexp


@dataclass(frozen=True)
class QueryExtractCmd(Command):
    expr: Sexp
    facts: Tuple[Sexp, ...]


@dataclass(frozen=True)
class ExplainCmd(Command):
    """``(explain <e1> <e2>)``: print why two ground terms are equal."""

    lhs: Sexp
    rhs: Sexp


@dataclass(frozen=True)
class PushCmd(Command):
    count: int = 1


@dataclass(frozen=True)
class PopCmd(Command):
    count: int = 1


@dataclass(frozen=True)
class SaveCmd(Command):
    """``(save "path")``: snapshot the full engine + globals to a file."""

    path: str


@dataclass(frozen=True)
class LoadCmd(Command):
    """``(load "path")``: replace the session state with a snapshot."""

    path: str


@dataclass(frozen=True)
class TopAction(Command):
    """A non-command top-level form, run as a ground action (e.g. a fact)."""

    sexp: SList


@dataclass
class _Form:
    """A command s-expression split into positional args and keyword options."""

    head: Symbol
    args: List[Sexp] = field(default_factory=list)
    options: Dict[str, Sexp] = field(default_factory=dict)
    flags: Dict[str, Loc] = field(default_factory=dict)
    filename: Optional[str] = None

    @property
    def loc(self) -> Loc:
        return self.head.loc

    def error(self, message: str, loc: Optional[Loc] = None) -> ParseError:
        return ParseError(message, loc or self.loc, self.filename)


class Parser:
    """Parses .egg program text into :class:`Command` records."""

    #: Option spec per command: option name -> "value" or "flag".
    _OPTIONS = {
        "function": {":merge": "value", ":default": "value", ":cost": "value",
                     ":unextractable": "flag"},
        "rule": {":name": "value", ":ruleset": "value"},
        "rewrite": {":when": "value", ":name": "value", ":ruleset": "value"},
        "birewrite": {":when": "value", ":name": "value", ":ruleset": "value"},
        "run": {":ruleset": "value", ":deadline-ms": "value", ":max-nodes": "value"},
    }

    #: Command keyword -> parse method.  Heads outside this table fall
    #: through to :class:`TopAction`.
    _COMMANDS = {
        "sort": "_parse_sort",
        "datatype": "_parse_datatype",
        "function": "_parse_function",
        "relation": "_parse_relation",
        "rule": "_parse_rule",
        "rewrite": "_parse_rewrite",
        "birewrite": "_parse_birewrite",
        "let": "_parse_let",
        "union": "_parse_union",
        "set": "_parse_set",
        "delete": "_parse_delete",
        "run": "_parse_run",
        "run-schedule": "_parse_run_schedule",
        "check": "_parse_check",
        "extract": "_parse_extract",
        "query-extract": "_parse_query_extract",
        "explain": "_parse_explain",
        "push": "_parse_push",
        "pop": "_parse_pop",
        "save": "_parse_save",
        "load": "_parse_load",
    }

    def __init__(self, filename: Optional[str] = None) -> None:
        self.filename = filename

    def error(self, message: str, loc: Loc) -> ParseError:
        return ParseError(message, loc, self.filename)

    def parse_program(self, text: str) -> List[Command]:
        return [self.parse_command(sexp) for sexp in parse_sexps(text, self.filename)]

    def parse_command(self, sexp: Sexp) -> Command:
        if not isinstance(sexp, SList):
            raise self.error(f"expected a command, got {sexp}", sexp.loc)
        if not sexp.items or not isinstance(sexp.items[0], Symbol):
            raise self.error("a command must start with a symbol", sexp.loc)
        head = sexp.items[0]
        if head.name not in self._COMMANDS:
            # Not a command keyword: a ground action like (edge 1 2); the
            # evaluator checks the head against declarations and primitives.
            return TopAction(sexp.loc, sexp)
        handler = getattr(self, self._COMMANDS[head.name])
        return handler(self._split(head, sexp))

    # -- shape helpers --------------------------------------------------------

    def _split(self, head: Symbol, sexp: SList) -> _Form:
        """Separate positional arguments from trailing ``:keyword`` options."""
        spec = self._OPTIONS.get(head.name, {})
        form = _Form(head=head, filename=self.filename)
        items = list(sexp.items[1:])
        index = 0
        while index < len(items):
            item = items[index]
            if isinstance(item, Symbol) and item.name.startswith(":"):
                kind = spec.get(item.name)
                if kind is None:
                    raise form.error(
                        f"'{head.name}' does not take option {item.name}", item.loc
                    )
                if item.name in form.options or item.name in form.flags:
                    raise form.error(f"duplicate option {item.name}", item.loc)
                if kind == "flag":
                    form.flags[item.name] = item.loc
                    index += 1
                    continue
                if index + 1 >= len(items):
                    raise form.error(f"option {item.name} needs a value", item.loc)
                form.options[item.name] = items[index + 1]
                index += 2
                continue
            if form.options or form.flags:
                raise form.error(
                    f"positional argument after options in '{head.name}'", item.loc
                )
            form.args.append(item)
            index += 1
        return form

    def _exact(self, form: _Form, count: int, usage: str) -> None:
        if len(form.args) != count:
            raise form.error(
                f"'{form.head.name}' expects {usage}, got {len(form.args)} argument(s)"
            )

    def _symbol(self, form: _Form, sexp: Sexp, what: str) -> str:
        if not isinstance(sexp, Symbol):
            raise form.error(f"expected {what}, got {sexp}", sexp.loc)
        return sexp.name

    def _sort_list(self, form: _Form, sexp: Sexp) -> Tuple[str, ...]:
        if not isinstance(sexp, SList):
            raise form.error(f"expected a sort list like (i64 i64), got {sexp}", sexp.loc)
        return tuple(self._symbol(form, item, "a sort name") for item in sexp.items)

    def _int(self, form: _Form, sexp: Sexp, what: str) -> int:
        if isinstance(sexp, Literal) and sexp.value.sort == "i64":
            return int(sexp.value.data)
        raise form.error(f"expected {what} (an integer), got {sexp}", sexp.loc)

    def _name_option(self, form: _Form) -> Optional[str]:
        sexp = form.options.get(":name")
        if sexp is None:
            return None
        if isinstance(sexp, Literal) and sexp.value.sort == "String":
            return str(sexp.value.data)
        return self._symbol(form, sexp, "a rule name")

    def _ruleset_option(self, form: _Form) -> str:
        sexp = form.options.get(":ruleset")
        if sexp is None:
            return ""
        return self._symbol(form, sexp, "a ruleset name")

    def _fact_list(self, form: _Form, sexp: Sexp, what: str) -> Tuple[Sexp, ...]:
        if not isinstance(sexp, SList):
            raise form.error(f"expected {what} (a parenthesized list), got {sexp}", sexp.loc)
        return sexp.items

    def _call(self, form: _Form, sexp: Sexp) -> SList:
        if not isinstance(sexp, SList) or not sexp.items or not isinstance(
            sexp.items[0], Symbol
        ):
            raise form.error(
                f"expected a function call like (f x ...), got {sexp}", sexp.loc
            )
        return sexp

    # -- command parsers ------------------------------------------------------

    def _parse_sort(self, form: _Form) -> SortCmd:
        self._exact(form, 1, "a sort name")
        return SortCmd(form.loc, self._symbol(form, form.args[0], "a sort name"))

    def _parse_datatype(self, form: _Form) -> DatatypeCmd:
        if not form.args:
            raise form.error("'datatype' expects a sort name and variants")
        name = self._symbol(form, form.args[0], "a sort name")
        variants = tuple(self._parse_variant(form, sexp) for sexp in form.args[1:])
        return DatatypeCmd(form.loc, name, variants)

    def _parse_variant(self, form: _Form, sexp: Sexp) -> Variant:
        call = self._call(form, sexp)
        name = call.items[0].name  # type: ignore[union-attr]
        arg_sorts: List[str] = []
        cost = 1
        items = list(call.items[1:])
        index = 0
        while index < len(items):
            item = items[index]
            if isinstance(item, Symbol) and item.name == ":cost":
                if index + 1 >= len(items):
                    raise form.error("option :cost needs a value", item.loc)
                cost = self._int(form, items[index + 1], "a cost")
                index += 2
                continue
            arg_sorts.append(self._symbol(form, item, "a sort name"))
            index += 1
        return Variant(call.loc, name, tuple(arg_sorts), cost)

    def _parse_function(self, form: _Form) -> FunctionCmd:
        self._exact(form, 3, "a name, a sort list, and an output sort")
        return FunctionCmd(
            form.loc,
            name=self._symbol(form, form.args[0], "a function name"),
            arg_sorts=self._sort_list(form, form.args[1]),
            out_sort=self._symbol(form, form.args[2], "an output sort"),
            merge=form.options.get(":merge"),
            default=form.options.get(":default"),
            cost=(
                self._int(form, form.options[":cost"], "a cost")
                if ":cost" in form.options
                else 1
            ),
            unextractable=":unextractable" in form.flags,
        )

    def _parse_relation(self, form: _Form) -> RelationCmd:
        self._exact(form, 2, "a name and a sort list")
        return RelationCmd(
            form.loc,
            name=self._symbol(form, form.args[0], "a relation name"),
            arg_sorts=self._sort_list(form, form.args[1]),
        )

    def _parse_rule(self, form: _Form) -> RuleCmd:
        self._exact(form, 2, "a fact list and an action list")
        return RuleCmd(
            form.loc,
            facts=self._fact_list(form, form.args[0], "the rule's facts"),
            actions=self._fact_list(form, form.args[1], "the rule's actions"),
            name=self._name_option(form),
            ruleset=self._ruleset_option(form),
        )

    def _parse_rewrite(self, form: _Form, bidirectional: bool = False) -> RewriteCmd:
        self._exact(form, 2, "a left-hand side and a right-hand side")
        conditions: Tuple[Sexp, ...] = ()
        if ":when" in form.options:
            conditions = self._fact_list(form, form.options[":when"], "the conditions")
        return RewriteCmd(
            form.loc,
            lhs=form.args[0],
            rhs=form.args[1],
            conditions=conditions,
            name=self._name_option(form),
            ruleset=self._ruleset_option(form),
            bidirectional=bidirectional,
        )

    def _parse_birewrite(self, form: _Form) -> RewriteCmd:
        return self._parse_rewrite(form, bidirectional=True)

    def _parse_let(self, form: _Form) -> LetCmd:
        self._exact(form, 2, "a name and an expression")
        return LetCmd(form.loc, self._symbol(form, form.args[0], "a name"), form.args[1])

    def _parse_union(self, form: _Form) -> UnionCmd:
        self._exact(form, 2, "two expressions")
        return UnionCmd(form.loc, form.args[0], form.args[1])

    def _parse_set(self, form: _Form) -> SetCmd:
        self._exact(form, 2, "a call and a value")
        return SetCmd(form.loc, self._call(form, form.args[0]), form.args[1])

    def _parse_delete(self, form: _Form) -> DeleteCmd:
        self._exact(form, 1, "a call")
        return DeleteCmd(form.loc, self._call(form, form.args[0]))

    def _parse_run(self, form: _Form) -> RunCmd:
        self._exact(form, 1, "an iteration limit")
        limit = self._int(form, form.args[0], "an iteration limit")
        if limit < 1:
            raise form.error(f"'run' limit must be positive, got {limit}")
        return RunCmd(
            form.loc,
            limit,
            self._ruleset_option(form),
            self._budget_option(form, ":deadline-ms"),
            self._budget_option(form, ":max-nodes"),
        )

    def _budget_option(self, form: _Form, key: str) -> Optional[int]:
        sexp = form.options.get(key)
        if sexp is None:
            return None
        value = self._int(form, sexp, f"a {key[1:]} budget")
        if value < 0:
            raise form.error(f"'{key[1:]}' must be >= 0, got {value}", sexp.loc)
        return value

    def _parse_run_schedule(self, form: _Form) -> RunScheduleCmd:
        if not form.args:
            raise form.error("'run-schedule' expects at least one schedule")
        return RunScheduleCmd(form.loc, tuple(form.args))

    def _parse_check(self, form: _Form) -> CheckCmd:
        if not form.args:
            raise form.error("'check' expects at least one fact")
        return CheckCmd(form.loc, tuple(form.args))

    def _parse_extract(self, form: _Form) -> ExtractCmd:
        self._exact(form, 1, "an expression")
        return ExtractCmd(form.loc, form.args[0])

    def _parse_query_extract(self, form: _Form) -> QueryExtractCmd:
        if len(form.args) < 2:
            raise form.error(
                "'query-extract' expects an expression and at least one fact"
            )
        return QueryExtractCmd(form.loc, form.args[0], tuple(form.args[1:]))

    def _parse_explain(self, form: _Form) -> ExplainCmd:
        self._exact(form, 2, "two expressions")
        return ExplainCmd(form.loc, form.args[0], form.args[1])

    def _parse_push(self, form: _Form) -> PushCmd:
        return PushCmd(form.loc, self._count(form))

    def _parse_pop(self, form: _Form) -> PopCmd:
        return PopCmd(form.loc, self._count(form))

    def _parse_save(self, form: _Form) -> SaveCmd:
        self._exact(form, 1, "a file path string")
        return SaveCmd(form.loc, self._path(form, form.args[0]))

    def _parse_load(self, form: _Form) -> LoadCmd:
        self._exact(form, 1, "a file path string")
        return LoadCmd(form.loc, self._path(form, form.args[0]))

    def _path(self, form: _Form, sexp: Sexp) -> str:
        if isinstance(sexp, Literal) and sexp.value.sort == "String":
            return str(sexp.value.data)
        raise form.error(f"expected a file path string, got {sexp}", sexp.loc)

    def _count(self, form: _Form) -> int:
        if not form.args:
            return 1
        self._exact(form, 1, "an optional count")
        count = self._int(form, form.args[0], "a count")
        if count < 1:
            raise form.error(f"'{form.head.name}' count must be positive, got {count}")
        return count


def parse_program(text: str, filename: Optional[str] = None) -> List[Command]:
    """Parse .egg program text into a list of commands."""
    return Parser(filename).parse_program(text)
