"""Durable session checkpoints: ``repro.snapshot/v1`` files in a state dir.

The :class:`CheckpointStore` is the disk half of session passivation.  A
checkpoint is a complete, self-contained snapshot of one session — the
engine state plus a ``surfaces.session`` section carrying the session's
identity (id, base name, batch counter) and ``surfaces.egg`` carrying its
global ``let`` environment — written as ``<state-dir>/<id>.json`` through
the serializer's atomic temp-file + ``os.replace`` path, so a crash at any
instant leaves either the previous checkpoint or the new one, never a
corrupt hybrid.

Because every checkpoint is self-contained, a restored session does not
need its base to still exist (or the server to have been restarted with
the same ``--base`` flags): restore is ``load_engine`` plus global
re-hydration, nothing else.

The store does no locking of its own — callers (the
:class:`~repro.session.manager.SessionManager`) hold the session's mutex
across :meth:`save` so a checkpoint can never observe a half-applied
batch.
"""

from __future__ import annotations

import os
import re
from typing import TYPE_CHECKING, Any, Dict, List, Tuple

from ..frontend.evaluator import Evaluator
from ..serialize.encode import decode_values, encode_values
from ..serialize.snapshot import load_engine, save_engine
from ..testing.faults import trip
from .errors import CheckpointError

if TYPE_CHECKING:  # pragma: no cover - types only
    from .manager import Session

#: Session ids are manager-minted (``s<N>``), but validate defensively so a
#: hostile id can never escape the state dir.
_SAFE_ID = re.compile(r"^[A-Za-z0-9_-]+$")


class CheckpointStore:
    """Atomic per-session snapshot files under one state directory."""

    SUFFIX = ".json"

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    def path(self, session_id: str) -> str:
        if not _SAFE_ID.match(session_id):
            raise CheckpointError(f"unsafe session id {session_id!r}")
        return os.path.join(self.root, session_id + self.SUFFIX)

    def ids(self) -> List[str]:
        """Checkpointed session ids, sorted (temp files are ignored)."""
        found = []
        for name in os.listdir(self.root):
            if name.endswith(self.SUFFIX) and _SAFE_ID.match(name[: -len(self.SUFFIX)]):
                found.append(name[: -len(self.SUFFIX)])
        return sorted(found)

    def contains(self, session_id: str) -> bool:
        return bool(_SAFE_ID.match(session_id)) and os.path.exists(
            self.path(session_id)
        )

    def __len__(self) -> int:
        return len(self.ids())

    def save(self, session: "Session") -> Dict[str, Any]:
        """Checkpoint ``session`` to disk; returns the written document.

        The caller must hold ``session.lock`` — a checkpoint taken mid-batch
        would capture a half-applied program.
        """
        trip("checkpoint", tag=session.id)
        surfaces = {
            "egg": {"globals": encode_values(session.evaluator.globals)},
            "session": {
                "id": session.id,
                "base": session.base,
                "batches": session.batches,
            },
        }
        return save_engine(session.engine, self.path(session.id), surfaces=surfaces)

    def load(self, session_id: str, *, strategy: str) -> Tuple[Evaluator, Dict[str, Any]]:
        """Re-hydrate a checkpointed session's evaluator (engine + globals).

        Returns the evaluator and the checkpoint's ``surfaces.session``
        metadata.  A missing, truncated, or digest-corrupt checkpoint file
        raises :class:`CheckpointError` naming the path — server-side data
        loss, distinct from "no such session".
        """
        path = self.path(session_id)
        try:
            # Inside the try so an injected "restore" fault follows the
            # same path as a real load failure: CheckpointError, counted
            # by the manager's restore_failures accounting.
            trip("restore", tag=session_id)
            engine, document = load_engine(path, strategy=strategy)
        except Exception as error:
            raise CheckpointError(
                f"checkpoint {path} is unreadable: {error}"
            ) from error
        surfaces = document.get("surfaces")
        surfaces = surfaces if isinstance(surfaces, dict) else {}
        egg = surfaces.get("egg")
        egg = egg if isinstance(egg, dict) else {}
        meta = surfaces.get("session")
        meta = meta if isinstance(meta, dict) else {}
        evaluator = Evaluator(engine)
        try:
            evaluator.globals = decode_values(egg.get("globals", []), "egg globals")
        except Exception as error:
            raise CheckpointError(
                f"checkpoint {path} has undecodable globals: {error}"
            ) from error
        return evaluator, meta

    def discard(self, session_id: str) -> bool:
        """Delete a checkpoint; True if one existed."""
        if not _SAFE_ID.match(session_id):
            return False
        try:
            os.unlink(self.path(session_id))
            return True
        except FileNotFoundError:
            return False
