"""Codecs between engine objects and snapshot JSON.

Every codec here is a pure bijection on the states the engine can actually
reach, which is what makes save→load→save byte-identical: ``encode(decode(x))
== x`` for every ``x`` a well-formed snapshot contains.

Encodings are deliberately *shape-driven* rather than sort-driven: a value
payload decodes by its JSON shape (int, bool, string, tagged dict), so the
codec needs no sort table and user-registered interpreted sorts serialize
without the core importing them.

Wire shapes:

* value — ``[sort, payload]``; payloads are plain JSON scalars, ``null``
  for Unit, or a tagged object (``{"f": "nan"}`` for non-finite floats,
  ``{"q": "3/2"}`` for rationals, ``{"s": [...]}`` for set values).
* term — ``["v", name]`` / ``["l", value]`` / ``["a", func, [terms...]]``.
* query arg — ``["v", name]`` (variable) or ``["l", value]`` (constant).
* justification — ``[kind, name]``, re-interned on decode.
* action — ``["let"|"union"|"set"|"delete"|"panic"|"expr", ...]``.
* schedule — ``["run", limit, ruleset]`` / ``["seq"|"saturate", [...]]`` /
  ``["repeat", times, [...]]``.
"""

from __future__ import annotations

import json
import math
from fractions import Fraction
from typing import Any, Dict, List, Optional

from ..core.proofs import (
    CONGRUENCE,
    EXPLICIT_KIND,
    RULE,
    Justification,
    congruence_justification,
    rule_justification,
)
from ..core.query import Arg, PrimAtom, QVar, Query, TableAtom
from ..core.terms import Term, TermApp, TermLit, TermVar
from ..core.values import Value, f64
from ..engine.actions import Action, Delete, Expr, Let, Panic, Set, Union
from ..engine.schedule import Repeat, Run, Saturate, Schedule, Seq
from .errors import SnapshotError, SnapshotFormatError

Json = Any


def _bad(what: str, obj: Json) -> SnapshotFormatError:
    rendered = repr(obj)
    if len(rendered) > 120:
        rendered = rendered[:117] + "..."
    return SnapshotFormatError(f"malformed {what} in snapshot: {rendered}")


# ---------------------------------------------------------------------------
# Values
# ---------------------------------------------------------------------------


def encode_value(value: Value) -> Json:
    """Encode a runtime value as ``[sort, payload]``."""
    return [value[0], _encode_payload(value[1])]  # type: ignore[index]


def _encode_payload(data: Any) -> Json:
    if data == () and isinstance(data, tuple):
        return None  # Unit
    if isinstance(data, bool):
        return data
    if isinstance(data, int):
        return data
    if isinstance(data, float):
        if math.isnan(data):
            return {"f": "nan"}
        if math.isinf(data):
            return {"f": "inf" if data > 0 else "-inf"}
        return data
    if isinstance(data, str):
        return data
    if isinstance(data, Fraction):
        return {"q": str(data)}
    if isinstance(data, frozenset):
        encoded = [encode_value(item) for item in data]
        # Sets are unordered in memory; a canonical element order makes the
        # encoding deterministic (and therefore digest/byte-identity safe).
        encoded.sort(key=lambda item: json.dumps(item, sort_keys=True))
        return {"s": encoded}
    raise SnapshotError(
        f"cannot serialize value payload {data!r} of type {type(data).__name__}"
    )


def decode_value(obj: Json) -> Value:
    """Decode a ``[sort, payload]`` pair back into a :class:`Value`."""
    if not isinstance(obj, list) or len(obj) != 2 or not isinstance(obj[0], str):
        raise _bad("value", obj)
    sort, payload = obj
    return Value(sort, _decode_payload(payload))


def _decode_payload(payload: Json) -> Any:
    if payload is None:
        return ()
    if isinstance(payload, (bool, int, float, str)):
        return payload
    if isinstance(payload, dict):
        if "f" in payload:
            special = payload["f"]
            if special == "nan":
                # Route through the f64 constructor: every NaN collapses
                # onto the engine's single canonical NaN object.
                return f64(float("nan")).data
            if special in ("inf", "-inf"):
                return float(special)
            raise _bad("float payload", payload)
        if "q" in payload:
            try:
                return Fraction(payload["q"])
            except (ValueError, ZeroDivisionError, TypeError):
                raise _bad("rational payload", payload) from None
        if "s" in payload:
            items = payload["s"]
            if not isinstance(items, list):
                raise _bad("set payload", payload)
            return frozenset(decode_value(item) for item in items)
    raise _bad("value payload", payload)


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


def encode_term(term: Term) -> Json:
    """Encode a core term (variables, literals, applications)."""
    if isinstance(term, TermVar):
        return ["v", term.name]
    if isinstance(term, TermLit):
        return ["l", encode_value(term.value)]
    if isinstance(term, TermApp):
        return ["a", term.func, [encode_term(arg) for arg in term.args]]
    raise SnapshotError(f"cannot serialize term {term!r}")


def decode_term(obj: Json) -> Term:
    if not isinstance(obj, list) or not obj:
        raise _bad("term", obj)
    tag = obj[0]
    if tag == "v" and len(obj) == 2 and isinstance(obj[1], str):
        return TermVar(obj[1])
    if tag == "l" and len(obj) == 2:
        return TermLit(decode_value(obj[1]))
    if tag == "a" and len(obj) == 3 and isinstance(obj[1], str) and isinstance(obj[2], list):
        return TermApp(obj[1], tuple(decode_term(arg) for arg in obj[2]))
    raise _bad("term", obj)


def decode_call(obj: Json) -> TermApp:
    """Decode a term that must be an application (set/delete targets)."""
    term = decode_term(obj)
    if not isinstance(term, TermApp):
        raise _bad("call term", obj)
    return term


# ---------------------------------------------------------------------------
# Query atoms
# ---------------------------------------------------------------------------


def encode_arg(arg: Arg) -> Json:
    if isinstance(arg, QVar):
        return ["v", arg.name]
    return ["l", encode_value(arg)]


def decode_arg(obj: Json) -> Arg:
    if not isinstance(obj, list) or len(obj) != 2:
        raise _bad("query argument", obj)
    if obj[0] == "v" and isinstance(obj[1], str):
        return QVar(obj[1])
    if obj[0] == "l":
        return decode_value(obj[1])
    raise _bad("query argument", obj)


def encode_query(query: Query) -> Json:
    return {
        "atoms": [
            {
                "func": atom.func,
                "args": [encode_arg(a) for a in atom.args],
                "out": encode_arg(atom.out),
            }
            for atom in query.atoms
        ],
        "prims": [
            {
                "op": prim.op,
                "args": [encode_arg(a) for a in prim.args],
                "out": encode_arg(prim.out) if prim.out is not None else None,
            }
            for prim in query.prims
        ],
    }


def decode_query(obj: Json) -> Query:
    if not isinstance(obj, dict):
        raise _bad("query", obj)
    atoms: List[TableAtom] = []
    for atom in obj.get("atoms", ()):
        if not isinstance(atom, dict) or not isinstance(atom.get("func"), str):
            raise _bad("table atom", atom)
        atoms.append(
            TableAtom(
                atom["func"],
                tuple(decode_arg(a) for a in atom.get("args", ())),
                decode_arg(atom["out"]),
            )
        )
    prims: List[PrimAtom] = []
    for prim in obj.get("prims", ()):
        if not isinstance(prim, dict) or not isinstance(prim.get("op"), str):
            raise _bad("primitive atom", prim)
        out = prim.get("out")
        prims.append(
            PrimAtom(
                prim["op"],
                tuple(decode_arg(a) for a in prim.get("args", ())),
                decode_arg(out) if out is not None else None,
            )
        )
    return Query(atoms=atoms, prims=prims)


# ---------------------------------------------------------------------------
# Actions
# ---------------------------------------------------------------------------


def encode_action(action: Action) -> Json:
    if isinstance(action, Let):
        return ["let", action.name, encode_term(action.expr)]
    if isinstance(action, Union):
        return ["union", encode_term(action.lhs), encode_term(action.rhs)]
    if isinstance(action, Set):
        return ["set", encode_term(action.call), encode_term(action.value)]
    if isinstance(action, Delete):
        return ["delete", encode_term(action.call)]
    if isinstance(action, Panic):
        return ["panic", action.message]
    if isinstance(action, Expr):
        return ["expr", encode_term(action.expr)]
    raise SnapshotError(f"cannot serialize action {action!r}")


def decode_action(obj: Json) -> Action:
    if not isinstance(obj, list) or not obj:
        raise _bad("action", obj)
    tag = obj[0]
    if tag == "let" and len(obj) == 3 and isinstance(obj[1], str):
        return Let(obj[1], decode_term(obj[2]))
    if tag == "union" and len(obj) == 3:
        return Union(decode_term(obj[1]), decode_term(obj[2]))
    if tag == "set" and len(obj) == 3:
        return Set(decode_call(obj[1]), decode_term(obj[2]))
    if tag == "delete" and len(obj) == 2:
        return Delete(decode_call(obj[1]))
    if tag == "panic" and len(obj) == 2 and isinstance(obj[1], str):
        return Panic(obj[1])
    if tag == "expr" and len(obj) == 2:
        return Expr(decode_term(obj[1]))
    raise _bad("action", obj)


# ---------------------------------------------------------------------------
# Justifications (proof forest edges)
# ---------------------------------------------------------------------------


def encode_justification(just: Optional[Justification]) -> Json:
    if just is None:
        return None
    return [just.kind, just.name]


def decode_justification(obj: Json) -> Optional[Justification]:
    if obj is None:
        return None
    if not isinstance(obj, list) or len(obj) != 2 or not isinstance(obj[1], str):
        raise _bad("justification", obj)
    kind, name = obj
    # Re-intern through the same caches live unions use, so a loaded
    # forest and freshly recorded edges share objects.
    if kind == RULE:
        return rule_justification(name)
    if kind == CONGRUENCE:
        return congruence_justification(name)
    if kind == EXPLICIT_KIND:
        return Justification(EXPLICIT_KIND, name)
    raise _bad("justification", obj)


# ---------------------------------------------------------------------------
# Schedules (bench replay)
# ---------------------------------------------------------------------------


def encode_schedule(schedule: Schedule) -> Json:
    if isinstance(schedule, Run):
        return ["run", schedule.limit, schedule.ruleset]
    if isinstance(schedule, Seq):
        return ["seq", [encode_schedule(s) for s in schedule.schedules]]
    if isinstance(schedule, Repeat):
        return ["repeat", schedule.times, [encode_schedule(s) for s in schedule.schedules]]
    if isinstance(schedule, Saturate):
        return ["saturate", [encode_schedule(s) for s in schedule.schedules]]
    raise SnapshotError(f"cannot serialize schedule {schedule!r}")


def decode_schedule(obj: Json) -> Schedule:
    if not isinstance(obj, list) or not obj:
        raise _bad("schedule", obj)
    tag = obj[0]
    if tag == "run" and len(obj) == 3 and isinstance(obj[1], int) and isinstance(obj[2], str):
        return Run(obj[1], obj[2])
    if tag in ("seq", "saturate") and len(obj) == 2 and isinstance(obj[1], list):
        body = tuple(decode_schedule(s) for s in obj[1])
        return Seq(body) if tag == "seq" else Saturate(body)
    if tag == "repeat" and len(obj) == 3 and isinstance(obj[1], int) and isinstance(obj[2], list):
        return Repeat(obj[1], tuple(decode_schedule(s) for s in obj[2]))
    raise _bad("schedule", obj)


# ---------------------------------------------------------------------------
# Shared shape helpers
# ---------------------------------------------------------------------------


def require(obj: Json, key: str, kind: type, what: str) -> Any:
    """Fetch ``obj[key]`` checking its JSON type; located format errors."""
    if not isinstance(obj, dict) or key not in obj:
        raise SnapshotFormatError(f"snapshot {what} is missing key {key!r}")
    value = obj[key]
    if not isinstance(value, kind):
        raise SnapshotFormatError(
            f"snapshot {what}: key {key!r} should be {kind.__name__}, "
            f"got {type(value).__name__}"
        )
    return value


def encode_values(values: Dict[str, Value]) -> Json:
    """Encode a name→value mapping as ordered ``[name, value]`` pairs."""
    return [[name, encode_value(value)] for name, value in values.items()]


def decode_values(obj: Json, what: str) -> Dict[str, Value]:
    if not isinstance(obj, list):
        raise _bad(what, obj)
    out: Dict[str, Value] = {}
    for pair in obj:
        if not isinstance(pair, list) or len(pair) != 2 or not isinstance(pair[0], str):
            raise _bad(what, pair)
        out[pair[0]] = decode_value(pair[1])
    return out
