"""Equality saturation: prove ``a * 2`` equal to ``a << 1`` and extract it.

This is the paper's equality-saturation side (Section 2), written in the
embedded DSL: datatype constructors are typed function handles whose
outputs live in an uninterpreted sort, ``(x * num(2)).to(x << num(1))`` is
sugar for a rule that unions the matched e-class with the right-hand side,
and extraction picks the cheapest representative of an e-class by declared
per-node costs (``Mul`` is deliberately expensive, the strength-reduced
``Shl`` cheap).

Run with::

    pip install -e .          # once (see README: Install & run)
    python examples/math.py
"""

import os
import sys
from typing import Tuple

# ``python examples/math.py`` prepends examples/ to sys.path, where this
# very file would shadow the stdlib ``math`` module for transitive imports
# (fractions -> math).  Drop that entry; the repro package itself comes
# from the installed environment (``pip install -e .``), not a path hack.
_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path[:] = [p for p in sys.path if os.path.abspath(p or os.getcwd()) != _HERE]

from repro import EGraph, Function, vars_  # noqa: E402
from repro.dsl import String, i64  # noqa: E402


def build_engine() -> Tuple[EGraph, Function, Function, Function, Function]:
    eg = EGraph()
    math = eg.sort("Math")
    num = eg.constructor("Num", (i64,), math)
    sym = eg.constructor("Var", (String,), math)
    eg.constructor("Add", (math, math), math, cost=2, op="+")
    mul = eg.constructor("Mul", (math, math), math, cost=4, op="*")
    shl = eg.constructor("Shl", (math, math), math, cost=1, op="<<")

    x, y = vars_("x y", math)
    eg.register(
        (x * y).to(y * x, name="mul-comm"),
        (x + y).to(y + x, name="add-comm"),
        # Strength reduction: x * 2  =>  x << 1
        (x * num(2)).to(x << num(1), name="mul2-to-shl"),
        # x * 1  =>  x
        (x * num(1)).to(x, name="mul-identity"),
    )
    return eg, num, sym, mul, shl


def main() -> None:
    eg, num, sym, mul, shl = build_engine()

    expr = mul(num(2), sym("a"))  # (* 2 a)
    target = shl(sym("a"), num(1))  # (<< a 1)
    eg.add(expr)

    report = eg.run(10)
    print(f"run: {report.summary()}")
    assert report.saturated, "this tiny ruleset must saturate"

    # check proves the equivalence (commutativity bridges (* 2 a) to (* a 2),
    # then strength reduction unions it with (<< a 1)).
    eg.check(expr == target)
    print(f"proved: {expr!r} == {target!r}")

    best = eg.extract(expr)
    print(f"extracted: {best.expr!r} at cost {best.cost}")
    assert best.term == target.term, f"expected the shifted form, got {best}"
    assert best.cost == 3  # Shl(1) + Var(1) + Num(1); the Mul form costs 6
    print("ok: extraction picked the strength-reduced term")


if __name__ == "__main__":
    main()
