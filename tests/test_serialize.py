"""Snapshot subsystem tests: round trips, warm starts, surfaces, errors.

The load-bearing invariant is byte identity: ``save -> load -> save``
must reproduce the exact file, for every golden program and bench
workload, because byte identity implies the snapshot captured *all*
serialized state (any dropped or reordered field shows up as a diff).
Semantic parity rides on top: a loaded engine must answer
extract/check/explain exactly like the original, under every join
strategy, and a saturated snapshot must stay saturated when re-run
(warm start skips the work the snapshot already did).
"""

import json
import pathlib
from fractions import Fraction

import pytest

import repro
from repro.bench.replay import expected_block, replay_snapshot
from repro.bench.workloads import default_workloads
from repro.core.terms import App, V
from repro.core.values import Value, from_python
from repro.dsl import EGraph as DslEGraph
from repro.dsl import var
from repro.dsl.errors import DslError
from repro.engine import EGraph
from repro.engine.schedule import Run, Saturate, Seq
from repro.frontend import Evaluator
from repro.frontend.cli import main as cli_main
from repro.serialize import (
    SCHEMA,
    SnapshotError,
    SnapshotFormatError,
    compute_digest,
    dumps_document,
    load_engine,
    read_document,
    save_engine,
)
from repro.serialize.encode import (
    decode_schedule,
    decode_value,
    encode_schedule,
    encode_value,
)

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
GOLDEN = sorted(GOLDEN_DIR.glob("*.egg"))
STRATEGIES = ["indexed", "generic", "generic-adhoc"]


def roundtrip_bytes(engine: EGraph, tmp_path, **kwargs) -> "tuple[EGraph, str, str]":
    """save -> load -> save; returns (loaded_engine, bytes1, bytes2)."""
    first = tmp_path / "first.json"
    second = tmp_path / "second.json"
    save_engine(engine, str(first), **kwargs)
    loaded, _ = load_engine(str(first))
    save_engine(loaded, str(second), **kwargs)
    return loaded, first.read_text(), second.read_text()


# ---------------------------------------------------------------------------
# Value codec
# ---------------------------------------------------------------------------

VALUES = [
    from_python(0),
    from_python(-(2**40)),
    from_python(True),
    from_python(False),
    from_python("hello \"quoted\" \n unicode ✓"),
    from_python(1.5),
    from_python(-0.0),
    from_python(float("nan")),
    from_python(float("inf")),
    from_python(float("-inf")),
    from_python(Fraction(3, 7)),
    Value("Unit", ()),
]


@pytest.mark.parametrize("value", VALUES, ids=lambda v: f"{v.sort}:{v.data!r}")
def test_value_roundtrip(value):
    encoded = encode_value(value)
    json.dumps(encoded)  # must be plain JSON
    decoded = decode_value(encoded)
    assert decoded.sort == value.sort
    if isinstance(value.data, float) and value.data != value.data:
        assert decoded.data != decoded.data  # NaN round-trips as NaN
    else:
        assert decoded == value


def test_value_negative_zero_keeps_sign():
    decoded = decode_value(encode_value(from_python(-0.0)))
    # The engine canonicalizes -0.0; whatever it stores must survive.
    assert str(decoded.data) == str(from_python(-0.0).data)


def test_bool_distinct_from_int():
    # JSON bool is an int subclass; decode must not confuse the two.
    assert decode_value(encode_value(from_python(True))).sort == "bool"
    assert decode_value(encode_value(from_python(1))).sort == "i64"


def test_schedule_roundtrip():
    schedule = Seq((Run(3, "a"), Saturate((Run(1), Run(2, "b")))))
    assert decode_schedule(encode_schedule(schedule)) == schedule


# ---------------------------------------------------------------------------
# Engine round trips: byte identity and semantic parity
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("path", GOLDEN, ids=lambda path: path.stem)
def test_golden_roundtrip_byte_identical(path, tmp_path):
    evaluator = Evaluator()
    evaluator.run_program(path.read_text(), str(path))
    evaluator.egraph._ensure_canonical()
    loaded, first, second = roundtrip_bytes(evaluator.egraph, tmp_path)
    assert first == second
    assert loaded.stats() == evaluator.egraph.stats()


@pytest.mark.parametrize(
    "workload",
    [w for w in default_workloads(quick=True)],
    ids=lambda w: w.name,
)
def test_workload_roundtrip_byte_identical(workload, tmp_path):
    engine = EGraph()
    workload.setup(engine)
    workload.run(engine)
    engine._ensure_canonical()
    loaded, first, second = roundtrip_bytes(engine, tmp_path)
    assert first == second
    assert loaded.stats() == engine.stats()


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_loaded_engine_parity_across_strategies(strategy, tmp_path):
    engine = EGraph()
    engine.declare_sort("Math")
    engine.constructor("Num", ("i64",), "Math")
    engine.constructor("Add", ("Math", "Math"), "Math")
    engine.add_rewrite(App("Add", App("Num", 0), V("x")), V("x"), name="add-zero")
    engine.add(App("Add", App("Num", 0), App("Num", 7)))
    engine.run(10)
    path = tmp_path / "math.json"
    save_engine(engine, str(path))
    loaded, _ = load_engine(str(path), strategy=strategy)
    assert loaded.strategy == strategy
    lhs = App("Add", App("Num", 0), App("Num", 7))
    rhs = App("Num", 7)
    assert loaded.check_equal(lhs, rhs) == engine.check_equal(lhs, rhs) is True
    assert loaded.extract(lhs) == engine.extract(lhs)
    original = [str(step) for step in engine.explain(lhs, rhs)]
    replayed = [str(step) for step in loaded.explain(lhs, rhs)]
    assert replayed == original
    # Re-running a saturated snapshot is a no-op under every strategy.
    report = loaded.run(10)
    assert report.saturated and not report.updated


def test_warm_start_skips_saturation(tmp_path):
    workload = [w for w in default_workloads(quick=True) if w.name == "tc_chain"][0]
    engine = EGraph()
    workload.setup(engine)
    cold = workload.run(engine)
    assert cold.iterations > 1 and cold.saturated
    path = tmp_path / "tc.json"
    save_engine(engine, str(path))
    loaded, _ = load_engine(str(path))
    warm = loaded.run(cold.iterations + 10)
    assert warm.saturated
    assert warm.iterations == 1  # one confirming pass, no re-derivation
    assert warm.num_matches == 0


def test_proofs_survive_reload(tmp_path):
    engine = EGraph()
    engine.declare_sort("M")
    engine.constructor("f", ("M",), "M")
    engine.constructor("a", (), "M")
    engine.constructor("b", (), "M")
    engine.add(App("f", App("a")))
    engine.add(App("f", App("b")))
    engine.union(App("a"), App("b"))
    engine.rebuild()
    path = tmp_path / "cong.json"
    save_engine(engine, str(path))
    loaded, _ = load_engine(str(path))
    steps = [str(step) for step in loaded.explain(App("f", App("a")), App("f", App("b")))]
    assert steps == [str(step) for step in engine.explain(App("f", App("a")), App("f", App("b")))]
    assert any("congruence" in step for step in steps)


def test_proofless_engine_roundtrip(tmp_path):
    engine = EGraph(proofs=False)
    engine.declare_sort("M")
    engine.constructor("a", (), "M")
    engine.constructor("b", (), "M")
    engine.union(App("a"), App("b"))
    loaded, first, second = roundtrip_bytes(engine, tmp_path)
    assert first == second
    assert loaded.uf.proofs is None
    assert loaded.are_equal(App("a"), App("b"))


def test_push_pop_state_not_serialized(tmp_path):
    engine = EGraph()
    engine.declare_sort("M")
    engine.constructor("a", (), "M")
    engine.push()
    engine.constructor("b", (), "M")
    path = tmp_path / "pushed.json"
    save_engine(engine, str(path))
    loaded, _ = load_engine(str(path))
    # The snapshot captures the live state; the undo stack does not travel.
    assert "b" in loaded.decls
    assert loaded._snapshots == []


# ---------------------------------------------------------------------------
# Merge and default serialization
# ---------------------------------------------------------------------------


def test_primitive_merge_roundtrip(tmp_path):
    engine = EGraph()
    engine.function("best", ("i64",), "i64", merge="max")
    engine.tables["best"].put((from_python(1),), from_python(5), 0)
    loaded, first, second = roundtrip_bytes(engine, tmp_path)
    assert first == second
    # The merge function still takes the max after reload.
    fn = loaded.merge_fn(loaded.decls["best"])
    assert fn(from_python(3), from_python(9)) == from_python(9)


def test_term_merge_roundtrip(tmp_path):
    evaluator = Evaluator()
    evaluator.run_program(
        "(function lo (i64) i64 :merge (min old new))\n"
        "(set (lo 0) 10)\n"
        "(set (lo 0) 4)\n"
        "(set (lo 0) 7)\n",
        "<test>",
    )
    engine = evaluator.egraph
    loaded, first, second = roundtrip_bytes(engine, tmp_path)
    assert first == second
    fn = loaded.merge_fn(loaded.decls["lo"])
    assert fn(from_python(9), from_python(2)) == from_python(2)


def test_callable_merge_rejected(tmp_path):
    engine = EGraph()
    engine.function("f", ("i64",), "i64", merge=lambda old, new: old, decl_site="here:1")
    with pytest.raises(SnapshotError, match="here:1"):
        save_engine(engine, str(tmp_path / "bad.json"))


def test_callable_default_rejected(tmp_path):
    engine = EGraph()
    engine.function("f", ("i64",), "i64", default=lambda: from_python(0))
    with pytest.raises(SnapshotError, match="default"):
        save_engine(engine, str(tmp_path / "bad.json"))


def test_value_default_roundtrip(tmp_path):
    engine = EGraph()
    engine.function("f", ("i64",), "i64", default=from_python(42))
    loaded, first, second = roundtrip_bytes(engine, tmp_path)
    assert first == second
    assert loaded.decls["f"].default == from_python(42)


# ---------------------------------------------------------------------------
# Format validation
# ---------------------------------------------------------------------------


def _small_document(tmp_path) -> dict:
    engine = EGraph()
    engine.declare_sort("M")
    engine.constructor("a", (), "M")
    return save_engine(engine, str(tmp_path / "doc.json"))


def test_digest_tamper_detected(tmp_path):
    document = _small_document(tmp_path)
    document["state"]["timestamp"] = 999
    corrupted = tmp_path / "tampered.json"
    corrupted.write_text(json.dumps(document))
    with pytest.raises(SnapshotFormatError, match="digest"):
        read_document(str(corrupted))


def test_unknown_schema_rejected(tmp_path):
    document = _small_document(tmp_path)
    document["schema"] = "repro.snapshot/v999"
    document["digest"] = compute_digest(document)
    path = tmp_path / "future.json"
    path.write_text(json.dumps(document))
    with pytest.raises(SnapshotFormatError, match="v999"):
        read_document(str(path))


def test_invalid_json_rejected(tmp_path):
    path = tmp_path / "garbage.json"
    path.write_text("{not json")
    with pytest.raises(SnapshotFormatError):
        read_document(str(path))


def test_missing_file_raises_oserror(tmp_path):
    with pytest.raises(OSError):
        read_document(str(tmp_path / "missing.json"))


def test_unknown_coercion_rejected(tmp_path):
    document = _small_document(tmp_path)
    document["state"]["coercions"].append(["i64", "NoSuchSort"])
    document["digest"] = compute_digest(document)
    path = tmp_path / "coerce.json"
    path.write_text(dumps_document(document))
    with pytest.raises(SnapshotError, match="NoSuchSort"):
        load_engine(str(path))


def test_meta_records_version_and_strategy(tmp_path):
    document = _small_document(tmp_path)
    assert document["schema"] == SCHEMA
    assert repro.__version__ in document["meta"]["generator"]
    assert document["meta"]["strategy"] == "indexed"
    assert document["meta"]["proofs"] is True


# ---------------------------------------------------------------------------
# Frontend surface
# ---------------------------------------------------------------------------

PROGRAM = """
(datatype Math (Num i64) (Add Math Math))
(rewrite (Add (Num 0) x) x)
(let one (Num 1))
(union (Add (Num 0) (Num 3)) (Num 3))
(run 5)
"""


def test_egg_save_load_restores_globals(tmp_path):
    snap = tmp_path / "session.json"
    out = []
    Evaluator(sink=out.append).run_program(PROGRAM + f'\n(save "{snap}")', "<a>")
    assert f"save: {snap}" in out
    lines = []
    Evaluator(sink=lines.append).run_program(
        f'(load "{snap}")\n(check (= (Add (Num 0) (Num 3)) (Num 3)))\n(extract one)',
        "<b>",
    )
    assert any(line.startswith("check: ok") for line in lines)
    assert any("(Num 1)" in line for line in lines)


def test_egg_load_missing_file_is_eval_error(tmp_path):
    from repro.frontend.evaluator import EvalError

    with pytest.raises(EvalError, match="load failed"):
        Evaluator().run_program(f'(load "{tmp_path}/absent.json")', "<t>")


def test_cli_save_load_roundtrip(tmp_path, capsys):
    program = tmp_path / "p.egg"
    program.write_text(PROGRAM)
    snap = tmp_path / "s.json"
    assert cli_main([str(program), "--save", str(snap)]) == 0
    warm = tmp_path / "w.egg"
    warm.write_text("(check (= (Add (Num 0) (Num 3)) (Num 3)))\n(run 5)\n")
    capsys.readouterr()
    assert cli_main([str(warm), "--load", str(snap)]) == 0
    output = capsys.readouterr().out
    assert "check: ok" in output
    assert "saturated" in output


def test_cli_missing_snapshot_clean_error(tmp_path, capsys):
    program = tmp_path / "p.egg"
    program.write_text("(run 1)")
    missing = tmp_path / "nope.json"
    assert cli_main([str(program), "--load", str(missing)]) == 1
    err = capsys.readouterr().err
    assert str(missing) in err
    assert "error:" in err
    assert "Traceback" not in err


def test_cli_missing_program_clean_error(tmp_path, capsys):
    missing = tmp_path / "absent.egg"
    assert cli_main([str(missing)]) == 1
    err = capsys.readouterr().err
    assert str(missing) in err and "error:" in err


def test_cli_version(capsys):
    with pytest.raises(SystemExit) as excinfo:
        cli_main(["--version"])
    assert excinfo.value.code == 0
    assert f"repro {repro.__version__}" in capsys.readouterr().out


def test_cli_snapshot_migration_no_files(tmp_path, capsys):
    program = tmp_path / "p.egg"
    program.write_text(PROGRAM)
    first = tmp_path / "a.json"
    second = tmp_path / "b.json"
    assert cli_main([str(program), "--save", str(first)]) == 0
    # --load/--save with no files: a pure round-trip/migration pass.
    assert cli_main(["--load", str(first), "--save", str(second)]) == 0
    assert first.read_text() == second.read_text()


# ---------------------------------------------------------------------------
# Typed DSL surface
# ---------------------------------------------------------------------------


def _dsl_session():
    eg = DslEGraph()
    Math = eg.sort("Math")
    Num = eg.constructor("Num", ["i64"], Math)
    Add = eg.constructor("Add", [Math, Math], Math, op="+")
    x = var("x", Math)
    eg.register((Num(0) + x).to(x, name="add-zero"))
    eg.add(Num(0) + Num(7))
    eg.run(10)
    return eg, Num, Add


def test_dsl_from_snapshot_rehydrates_handles(tmp_path):
    eg, Num, Add = _dsl_session()
    path = tmp_path / "dsl.json"
    eg.save(str(path))
    loaded = DslEGraph.from_snapshot(str(path))
    Num2 = loaded._functions["Num"]
    assert loaded._sorts["Math"].decl_site == eg._sorts["Math"].decl_site
    # Operator bindings travel: + still builds Add applications.
    expr = Num2(0) + Num2(7)
    assert loaded.are_equal(expr, Num2(7))
    assert str(loaded.extract(Num2(7))) == str(eg.extract(Num(7)))
    assert len(loaded.explain(expr, Num2(7))) == len(eg.explain(Num(0) + Num(7), Num(7)))
    assert loaded._rulesets[""].rule_names == ["add-zero"]


def test_dsl_inplace_load_replaces_state(tmp_path):
    eg, _, _ = _dsl_session()
    path = tmp_path / "dsl.json"
    eg.save(str(path))
    other = DslEGraph()
    other.sort("Unrelated")
    other.load(str(path))
    assert "Unrelated" not in other._sorts
    assert set(other._functions) == {"Num", "Add"}


def test_dsl_roundtrip_byte_identical(tmp_path):
    eg, _, _ = _dsl_session()
    first = tmp_path / "a.json"
    second = tmp_path / "b.json"
    eg.save(str(first))
    DslEGraph.from_snapshot(str(first)).save(str(second))
    assert first.read_text() == second.read_text()


def test_dsl_snapshot_error_maps_to_dsl_error(tmp_path):
    eg = DslEGraph()
    eg.function("f", ["i64"], "i64", merge=lambda old, new: old)
    with pytest.raises(DslError):
        eg.save(str(tmp_path / "bad.json"))


def test_dsl_missing_snapshot_propagates_oserror(tmp_path):
    with pytest.raises(OSError):
        DslEGraph.from_snapshot(str(tmp_path / "absent.json"))


# ---------------------------------------------------------------------------
# Bench replay
# ---------------------------------------------------------------------------


def test_replay_snapshot_confirms_expected(tmp_path):
    workload = [w for w in default_workloads(quick=True) if w.name == "tc_chain"][0]
    engine = EGraph()
    workload.setup(engine)
    workload.run(engine)
    path = tmp_path / "tc.json"
    save_engine(
        engine,
        str(path),
        replay={"schedule": encode_schedule(Run(100)), "expected": expected_block(engine)},
    )
    lines = []
    assert replay_snapshot(str(path), repeats=1, log=lines.append) == 0
    assert any("expected facts confirmed" in line for line in lines)


def test_replay_snapshot_detects_stale_expectations(tmp_path):
    engine = EGraph()
    engine.relation("edge", ("i64", "i64"))
    engine.add(App("edge", 1, 2))
    path = tmp_path / "stale.json"
    expected = expected_block(engine)
    expected["table_rows"]["edge"] = 99
    save_engine(
        engine,
        str(path),
        replay={"schedule": encode_schedule(Run(1)), "expected": expected},
    )
    lines = []
    assert replay_snapshot(str(path), repeats=1, log=lines.append) == 1
    assert any("expected 99" in line for line in lines)
