"""Warm-start bench replay: time a schedule against a loaded snapshot.

``python -m repro.bench --replay SNAPSHOT`` loads a ``repro.snapshot/v1``
file and runs the schedule recorded in its ``replay`` block (default: one
iteration of the default ruleset).  Load and run are timed separately, so
the output shows what warm-starting buys: on a snapshot saved at
saturation the run phase finds no new work and finishes in a fraction of
the cold saturation time the snapshot encodes.

The ``replay`` block is written by the snapshot corpus builders (see
``tests/snapshots/``) and by any caller passing ``replay=`` to
:func:`repro.serialize.save_engine`::

    {
      "schedule": <encoded schedule>,          # see serialize.encode_schedule
      "expected": {
        "saturated": true,                     # run must end saturated
        "n_unions": 41,                        # union-find count afterwards
        "table_rows": {"path": 4950}           # row counts afterwards
      }
    }

Every ``expected`` key is optional; present ones are checked after the
replay run and a mismatch fails the replay (exit 1) — a snapshot whose
recorded facts no longer reproduce is stale or the engine regressed.
"""

from __future__ import annotations

import statistics
import time
from typing import Callable, Dict, List, Optional

from ..engine import EGraph
from ..engine.schedule import Run, Schedule
from ..serialize import SnapshotError, load_engine, read_document
from ..serialize.encode import decode_schedule


def _replay_schedule(document: Dict[str, object]) -> Schedule:
    replay = document.get("replay")
    if isinstance(replay, dict) and "schedule" in replay:
        return decode_schedule(replay["schedule"])
    return Run(1)


def _check_expected(engine: EGraph, document: Dict[str, object]) -> List[str]:
    """Mismatches between the engine and the replay block's expectations."""
    replay = document.get("replay")
    expected = replay.get("expected") if isinstance(replay, dict) else None
    if not isinstance(expected, dict):
        return []
    problems: List[str] = []
    if "n_unions" in expected and engine.uf.n_unions != expected["n_unions"]:
        problems.append(
            f"n_unions: expected {expected['n_unions']}, got {engine.uf.n_unions}"
        )
    for name, rows in (expected.get("table_rows") or {}).items():
        table = engine.tables.get(name)
        actual = len(table) if table is not None else None
        if actual != rows:
            problems.append(f"table {name}: expected {rows} row(s), got {actual}")
    return problems


def replay_snapshot(
    path: str,
    *,
    repeats: int = 3,
    strategy: Optional[str] = None,
    log: Callable[[str], None] = print,
) -> int:
    """Load ``path`` and time its replay schedule; returns an exit code.

    Each repeat loads a fresh engine from the snapshot (timed) and runs the
    replay schedule (timed); the summary reports median load and run times.
    The last repeat's engine is checked against the replay block's
    ``expected`` facts and, when the block expects saturation, the run
    report must confirm it.
    """
    try:
        document = read_document(path)
    except (OSError, SnapshotError) as error:
        log(f"error: {path}: {error}")
        return 1
    schedule = _replay_schedule(document)
    replay = document.get("replay")
    expected = replay.get("expected") if isinstance(replay, dict) else None
    expect_saturated = bool(expected.get("saturated")) if isinstance(expected, dict) else False

    load_times: List[float] = []
    run_times: List[float] = []
    engine = None
    report = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        engine, _ = load_engine(path, strategy=strategy)
        load_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        report = engine.run_schedule(schedule)
        run_times.append(time.perf_counter() - start)

    meta = document.get("meta")
    generator = meta.get("generator", "?") if isinstance(meta, dict) else "?"
    log(
        f"replay: {path} [{generator}] schedule={schedule!r}: "
        f"load {statistics.median_low(load_times) * 1000:.1f}ms, "
        f"run {statistics.median_low(run_times) * 1000:.1f}ms "
        f"({report.iterations} iteration(s), {report.num_matches} match(es), "
        f"saturated={report.saturated})"
    )
    problems = _check_expected(engine, document)
    if expect_saturated and not report.saturated:
        problems.append("run did not saturate but the replay block expects it")
    for problem in problems:
        log(f"FAIL {path}: {problem}")
    if problems:
        return 1
    log(f"replay: {path}: expected facts confirmed")
    return 0


def expected_block(engine: EGraph) -> Dict[str, object]:
    """The ``expected`` facts for a replay block, read off a live engine.

    Helper for snapshot writers: capture the post-run state so replays can
    verify it.  Assumes the engine was run to saturation before saving.
    """
    return {
        "saturated": True,
        "n_unions": engine.uf.n_unions,
        "table_rows": {name: len(table) for name, table in engine.tables.items()},
    }
