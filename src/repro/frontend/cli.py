"""The ``python -m repro`` command line: run .egg programs.

Each file runs on a fresh engine, in argument order; output lines
(``run``/``check``/``extract``/``query-extract`` results) stream to
stdout.  The first failing file stops the run: its error is printed as
``file.egg:line:col: message`` on stderr and the exit status is 1.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..engine.egraph import SEARCH_STRATEGIES
from ..errors import ReproError
from .evaluator import Evaluator


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run egglog (.egg) programs on the repro engine.",
    )
    parser.add_argument(
        "files",
        nargs="+",
        metavar="FILE",
        help=".egg program files to run in order ('-' reads stdin)",
    )
    parser.add_argument(
        "-s",
        "--strategy",
        choices=sorted(SEARCH_STRATEGIES),
        default="indexed",
        help="join strategy for rule search (default: indexed)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print engine statistics, per-rule match counts, and phase "
        "timings after each file",
    )
    return parser


def _print_stats(evaluator: Evaluator, name: str) -> None:
    """Engine size, per-rule match counts, and phase timings for one file."""
    stats = evaluator.egraph.stats()
    tables = ", ".join(
        f"{table}={size}" for table, size in sorted(stats["tables"].items())
    )
    print(
        f"stats: {name}: classes={stats['n_classes']} "
        f"unions={stats['n_unions']} tables: {tables or '(none)'}"
    )
    report = evaluator.report
    if report.iterations:
        print(
            f"stats: phases: search {report.search_time * 1000:.1f} ms / "
            f"apply {report.apply_time * 1000:.1f} ms / "
            f"rebuild {report.rebuild_time * 1000:.1f} ms "
            f"({report.iterations} iteration(s), "
            f"{report.delta_skips} delta search(es) skipped)"
        )
    if report.per_rule_matches:
        matches = ", ".join(
            f"{rule}={count}"
            for rule, count in sorted(report.per_rule_matches.items())
        )
        print(f"stats: rule matches: {matches}")


def _read(path: str) -> "tuple[str, str]":
    if path == "-":
        return sys.stdin.read(), "<stdin>"
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read(), path


def main(argv: Optional[List[str]] = None) -> int:
    args = build_arg_parser().parse_args(argv)
    for path in args.files:
        try:
            text, name = _read(path)
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        evaluator = Evaluator(strategy=args.strategy, sink=print)
        try:
            evaluator.run_program(text, name)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        if args.stats:
            _print_stats(evaluator, name)
    return 0
