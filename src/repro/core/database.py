"""The functional database backing egglog functions.

Unlike most Datalog engines, egglog is backed by a *functional* database
(Section 5.1): each function/relation is a map from argument tuples to a
single output value.  Each row additionally carries a timestamp — the
iteration at which it was inserted or last updated — which is what makes
semi-naïve evaluation (Section 4.3) possible: a delta query only needs to
look at rows whose timestamp is at least the rule's last-run timestamp.

Tables also maintain lazily-built hash indexes over column subsets, used by
the query engine for index-nested-loop joins and by rebuilding.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from .schema import FunctionDecl
from .values import Value

Key = Tuple[Value, ...]


@dataclass
class Row:
    """A single function entry ``f(key) -> value`` with its timestamp."""

    value: Value
    timestamp: int


class Table:
    """Backing store for one egglog function.

    Columns ``0 .. arity-1`` are the arguments, column ``arity`` is the
    output.  The table enforces nothing about canonicalization or merges —
    that is the engine's and the rebuilder's job — it only stores rows and
    provides lookups, scans, and indexes.
    """

    def __init__(self, decl: FunctionDecl) -> None:
        self.decl = decl
        self.data: Dict[Key, Row] = {}
        self._indexes: Dict[Tuple[int, ...], Dict[Tuple[Value, ...], List[Key]]] = {}
        self._index_versions: Dict[Tuple[int, ...], int] = {}
        self._version = 0
        # Append-only write log (parallel timestamp/key arrays) so that
        # ``new_keys`` — the semi-naïve delta (Section 4.3) — costs
        # O(|delta|) rather than a full-table scan.  The engine only writes
        # with non-decreasing timestamps; if a caller ever writes out of
        # order the log degrades gracefully to a scan.
        self._log_ts: List[int] = []
        self._log_keys: List[Key] = []
        self._log_sorted = True

    # -- basic access --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.data)

    def __contains__(self, key: Key) -> bool:
        return key in self.data

    @property
    def arity(self) -> int:
        return self.decl.arity

    @property
    def num_columns(self) -> int:
        return self.decl.arity + 1

    def get(self, key: Key) -> Optional[Value]:
        row = self.data.get(key)
        return row.value if row is not None else None

    def get_row(self, key: Key) -> Optional[Row]:
        return self.data.get(key)

    def put(self, key: Key, value: Value, timestamp: int) -> None:
        """Insert or overwrite a row.  Bumps the table version."""
        self.data[key] = Row(value, timestamp)
        self._version += 1
        if self._log_ts and timestamp < self._log_ts[-1]:
            self._log_sorted = False
        self._log_ts.append(timestamp)
        self._log_keys.append(key)
        if len(self._log_ts) > 64 and len(self._log_ts) > 4 * len(self.data):
            self._compact_log()

    def _compact_log(self) -> None:
        """Rebuild the write log from live rows (drops dead/duplicate entries)."""
        entries = sorted(
            ((row.timestamp, key) for key, row in self.data.items()),
            key=lambda entry: entry[0],
        )
        self._log_ts = [ts for ts, _key in entries]
        self._log_keys = [key for _ts, key in entries]
        self._log_sorted = True

    def remove(self, key: Key) -> Optional[Row]:
        """Remove and return a row (None if absent)."""
        row = self.data.pop(key, None)
        if row is not None:
            self._version += 1
        return row

    def rows(self) -> Iterator[Tuple[Key, Value, int]]:
        """Iterate over (key, value, timestamp) triples."""
        for key, row in self.data.items():
            yield key, row.value, row.timestamp

    def tuples(self) -> Iterator[Tuple[Value, ...]]:
        """Iterate over full rows as flat tuples (args..., output)."""
        for key, row in self.data.items():
            yield key + (row.value,)

    def new_keys(self, since: int) -> List[Key]:
        """Keys of rows inserted or updated at or after timestamp ``since``.

        This is the delta used by semi-naïve evaluation (Section 4.3): a
        rule's incremental search restricts one atom at a time to these rows.
        With the usual non-decreasing write timestamps this reads only the
        log suffix at or after ``since`` — O(|delta|), not O(|table|).
        """
        if not self._log_sorted:
            return [key for key, row in self.data.items() if row.timestamp >= since]
        start = bisect_left(self._log_ts, since)
        out: List[Key] = []
        seen = set()
        for key in self._log_keys[start:]:
            if key in seen:
                continue
            seen.add(key)
            row = self.data.get(key)
            # Skip keys removed since, or whose live row predates ``since``
            # (possible only after an out-of-order overwrite).
            if row is not None and row.timestamp >= since:
                out.append(key)
        return out

    # -- snapshots (push/pop support) ----------------------------------------

    def snapshot(self) -> tuple:
        """Capture the table's rows and write log for a later :meth:`restore`.

        Rows are shared, not copied: the engine never mutates a ``Row`` in
        place (``put`` always stores a fresh one), so structural sharing is
        safe and keeps ``push`` cheap.
        """
        return (dict(self.data), list(self._log_ts), list(self._log_keys), self._log_sorted)

    def restore(self, state: tuple) -> None:
        """Reinstall a state captured by :meth:`snapshot`."""
        data, log_ts, log_keys, log_sorted = state
        self.data = data
        self._log_ts = log_ts
        self._log_keys = log_keys
        self._log_sorted = log_sorted
        # Cached indexes describe the abandoned state; invalidate them all.
        self._indexes.clear()
        self._index_versions.clear()
        self._version += 1

    # -- indexes --------------------------------------------------------------

    def index(self, columns: Tuple[int, ...]) -> Dict[Tuple[Value, ...], List[Key]]:
        """Hash index mapping projections on ``columns`` to matching keys.

        Indexes are cached and rebuilt lazily when the table has changed.
        Column ``arity`` refers to the output value.
        """
        cached = self._indexes.get(columns)
        if cached is not None and self._index_versions.get(columns) == self._version:
            return cached
        arity = self.decl.arity
        index: Dict[Tuple[Value, ...], List[Key]] = {}
        for key, row in self.data.items():
            projection = tuple(
                row.value if col == arity else key[col] for col in columns
            )
            index.setdefault(projection, []).append(key)
        self._indexes[columns] = index
        self._index_versions[columns] = self._version
        return index

    def column_values(self, column: int) -> Dict[Value, List[Key]]:
        """Single-column index (used by generic join)."""
        grouped = self.index((column,))
        return {proj[0]: keys for proj, keys in grouped.items()}
