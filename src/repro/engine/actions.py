"""Actions: the right-hand sides of egglog rules.

An egglog rule (Section 3.1 of the paper) pairs a query with a sequence of
*actions* that run once per match, under the match's substitution:

* :class:`Let` binds a new variable to the value of an expression,
* :class:`Union` merges two eq-sorted values into one e-class,
* :class:`Set` writes ``f(args...) = value``, repairing functional-dependency
  violations with the function's *merge expression* (Section 3.2),
* :class:`Delete` removes a function entry,
* :class:`Panic` aborts execution with a message, and
* :class:`Expr` evaluates an expression for its side effect (inserting the
  term, e.g. asserting a relation fact).

The merge-resolution logic (:func:`resolve_merge` / :func:`set_function_value`)
lives here and is shared with rebuilding (``repro.engine.rebuild``), which
must apply the same merge expressions when canonicalized keys collide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Sequence, Tuple

from ..core.schema import FunctionDecl
from ..core.terms import Term, TermApp
from ..core.values import Value
from .errors import EGraphError, EGraphPanic

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .egraph import EGraph

Substitution = Dict[str, Value]


class Action:
    """Base class for actions (Section 3.1)."""


@dataclass(frozen=True)
class Let(Action):
    """Bind ``name`` to the value of ``expr`` for the rest of the actions."""

    name: str
    expr: Term


@dataclass(frozen=True)
class Union(Action):
    """Merge the e-classes of two eq-sorted expressions (Section 3.3)."""

    lhs: Term
    rhs: Term


@dataclass(frozen=True)
class Set(Action):
    """Write ``call.func(call.args...) = value``.

    If the (canonicalized) key is already mapped to a different output, the
    function's merge expression decides the stored value (Section 3.2).
    """

    call: TermApp
    value: Term


@dataclass(frozen=True)
class Delete(Action):
    """Remove the entry for ``call.func(call.args...)`` if present."""

    call: TermApp


@dataclass(frozen=True)
class Panic(Action):
    """Abort the run with ``message`` (used to signal impossible states)."""

    message: str


@dataclass(frozen=True)
class Expr(Action):
    """Evaluate an expression for effect — inserts the term into the database.

    This is how ground facts are asserted from rule bodies, e.g.
    ``Expr(App("edge", V("x"), V("z")))`` for a Unit-output relation.
    """

    expr: Term


# ---------------------------------------------------------------------------
# Merge resolution (shared by Set actions and rebuilding)
# ---------------------------------------------------------------------------


def resolve_merge(egraph: "EGraph", decl: FunctionDecl, old: Value, new: Value) -> Value:
    """Combine conflicting outputs ``old`` and ``new`` per ``decl.merge``.

    ``decl.merge`` has been normalized by the engine at declaration time to
    ``"union"``, ``"error"``, or a callable ``(old, new) -> Value``.
    Returns the value that should be stored; raises :class:`MergeError` for
    ``"error"`` merges and for merge functions that fail.

    The dispatch lives in ``EGraph.merge_fn``, which compiles it once per
    function into a cached closure; this wrapper is the per-call spelling.
    """
    return egraph.merge_fn(decl)(old, new)


def set_function_value(
    egraph: "EGraph", decl: FunctionDecl, key: Tuple[Value, ...], new: Value
) -> bool:
    """Store ``decl.name(key) = new``, applying the merge expression on conflict.

    ``key`` and ``new`` must already be canonical.  Returns True iff the
    database changed (new row, or the stored output changed).  Changed rows
    are stamped with the engine's current timestamp so semi-naïve evaluation
    (Section 4.3) sees them as new.
    """
    table = egraph.tables[decl.name]
    old = table.get(key)
    if old is None:
        table.put(key, new, egraph.timestamp)
        egraph.record_node(decl.name, key, new)
        egraph.note_update()
        return True
    if old == new or egraph.canonicalize(old) == egraph.canonicalize(new):
        return False
    merged = resolve_merge(egraph, decl, old, new)
    merged = egraph.canonicalize(merged)
    if merged == old:
        return False
    table.put(key, merged, egraph.timestamp)
    egraph.note_update()
    return True


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def _eval_call_key(
    egraph: "EGraph", call: TermApp, subst: Substitution
) -> Tuple[FunctionDecl, Tuple[Value, ...]]:
    """Evaluate the argument terms of a Set/Delete target into a canonical key."""
    decl = egraph.decls.get(call.func)
    if decl is None:
        raise EGraphError(f"action targets unknown function {call.func!r}")
    key = tuple(egraph.canonicalize(egraph.eval_term(a, subst)) for a in call.args)
    if len(key) != decl.arity:
        raise EGraphError(
            f"{call.func} expects {decl.arity} arguments, got {len(key)}"
        )
    return decl, key


def run_actions(
    egraph: "EGraph", actions: Sequence[Action], subst: Substitution
) -> Substitution:
    """Run ``actions`` under ``subst`` against ``egraph``; return final bindings.

    The substitution is copied; ``Let`` extends the copy.  Any expression
    evaluation uses get-or-default semantics (Section 3.2): terms absent from
    the database are inserted with the owning function's default output.
    """
    subst = dict(subst)
    for action in actions:
        if isinstance(action, Let):
            subst[action.name] = egraph.eval_term(action.expr, subst)
        elif isinstance(action, Union):
            lhs = egraph.eval_term(action.lhs, subst)
            rhs = egraph.eval_term(action.rhs, subst)
            egraph.union_values(lhs, rhs)
        elif isinstance(action, Set):
            decl, key = _eval_call_key(egraph, action.call, subst)
            value = egraph.canonicalize(egraph.eval_term(action.value, subst))
            set_function_value(egraph, decl, key, value)
        elif isinstance(action, Delete):
            decl, key = _eval_call_key(egraph, action.call, subst)
            if egraph.tables[decl.name].remove(key) is not None:
                egraph.note_update()
        elif isinstance(action, Panic):
            raise EGraphPanic(action.message)
        elif isinstance(action, Expr):
            egraph.eval_term(action.expr, subst)
        else:
            raise EGraphError(f"unknown action {action!r}")
    return subst
