"""Parameterized benchmark workloads.

Every workload is deterministic: generators take an explicit seed and use a
private :class:`random.Random`, so two runs on the same parameters exercise
the engine identically and timing differences are attributable to the
engine, not the input.

Three families:

* **Transitive closure** (:func:`transitive_closure`) — the paper's
  canonical Datalog workload: ``path(x,z) :- path(x,y), edge(y,z)`` on
  chain, random (Erdős–Rényi-style), and grid graphs.  Many semi-naïve
  iterations over a growing ``path`` table: exactly the shape where
  persistent indexes beat per-execution trie builds.
* **Math rewriting** (:func:`math_rewriting`) — equality saturation over a
  small arithmetic datatype (commutativity/associativity/identities) on a
  balanced expression of a given depth, run a bounded number of
  iterations.  Stresses e-node insertion, unions, and rebuilding together.
* **Congruence stress** (:func:`congruence_stress`) — towers of unary
  applications over leaf classes that are then unioned pairwise, forcing
  cascades of congruence repairs.  Measures the rebuild path in isolation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..core.schema import RunReport
from ..core.terms import App, V
from ..engine import EGraph, Rule
from ..engine.actions import Expr


@dataclass
class Workload:
    """One benchmark scenario: a database/ruleset builder plus a run phase.

    ``setup`` declares functions, asserts ground facts, and registers rules
    on a fresh engine; ``run`` drives it (usually the scheduler) and
    returns the :class:`RunReport` whose phase timings the runner records.
    """

    name: str
    family: str
    params: Dict[str, object]
    setup: Callable[[EGraph], None]
    run: Callable[[EGraph], RunReport]
    tables_of_interest: Tuple[str, ...] = ()


# ---------------------------------------------------------------------------
# Transitive closure
# ---------------------------------------------------------------------------


def _chain_edges(n: int) -> List[Tuple[int, int]]:
    return [(i, i + 1) for i in range(n - 1)]


def _random_edges(n: int, m: int, seed: int) -> List[Tuple[int, int]]:
    rng = random.Random(seed)
    edges = set()
    while len(edges) < m:
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b:
            edges.add((a, b))
    return sorted(edges)


def _grid_edges(side: int) -> List[Tuple[int, int]]:
    """Directed right/down edges of a ``side`` × ``side`` grid."""
    edges = []
    for row in range(side):
        for col in range(side):
            node = row * side + col
            if col + 1 < side:
                edges.append((node, node + 1))
            if row + 1 < side:
                edges.append((node, node + side))
    return edges


def transitive_closure(kind: str, *, n: int, m: int = 0, seed: int = 0) -> Workload:
    """Transitive closure on a ``kind`` graph (``chain``/``random``/``grid``).

    ``n`` is the node count (side² for grids, where ``n`` is the side);
    ``m`` the edge count for random graphs.
    """
    if kind == "chain":
        edges = _chain_edges(n)
    elif kind == "random":
        edges = _random_edges(n, m, seed)
    elif kind == "grid":
        edges = _grid_edges(n)
    else:
        raise ValueError(f"unknown graph kind {kind!r}")
    limit = len(edges) + max(n, 4) + 4  # enough iterations to saturate

    def setup(egraph: EGraph) -> None:
        egraph.relation("edge", ("i64", "i64"))
        egraph.relation("path", ("i64", "i64"))
        egraph.add_rules(
            Rule(
                facts=[App("edge", V("x"), V("y"))],
                actions=[Expr(App("path", V("x"), V("y")))],
                name="edge-to-path",
            ),
            Rule(
                facts=[App("path", V("x"), V("y")), App("edge", V("y"), V("z"))],
                actions=[Expr(App("path", V("x"), V("z")))],
                name="path-step",
            ),
        )
        for a, b in edges:
            egraph.add(App("edge", a, b))

    return Workload(
        name=f"tc_{kind}",
        family="transitive-closure",
        params={"kind": kind, "n": n, "m": m or len(edges), "seed": seed},
        setup=setup,
        run=lambda egraph: egraph.run(limit),
        tables_of_interest=("edge", "path"),
    )


# ---------------------------------------------------------------------------
# Math rewriting
# ---------------------------------------------------------------------------


def _math_term(depth: int, rng: random.Random):
    if depth == 0:
        return App("Num", rng.randrange(8))
    op = rng.choice(("Add", "Mul"))
    return App(op, _math_term(depth - 1, rng), _math_term(depth - 1, rng))


def math_rewriting(*, depth: int, iterations: int, seed: int = 0) -> Workload:
    """Equality saturation over arithmetic terms of a given depth.

    Rewrites (commutativity, associativity, ``x+0``, ``x*1``, ``x*0``) run
    a bounded number of iterations — saturation would be exponential, so
    the iteration count is a workload parameter.
    """

    def setup(egraph: EGraph) -> None:
        egraph.declare_sort("Math")
        egraph.constructor("Num", ("i64",), "Math")
        egraph.constructor("Add", ("Math", "Math"), "Math")
        egraph.constructor("Mul", ("Math", "Math"), "Math")
        a, b, c = V("a"), V("b"), V("c")
        egraph.add_rewrite(App("Add", a, b), App("Add", b, a), name="comm-add")
        egraph.add_rewrite(App("Mul", a, b), App("Mul", b, a), name="comm-mul")
        egraph.add_rewrite(
            App("Add", App("Add", a, b), c),
            App("Add", a, App("Add", b, c)),
            name="assoc-add",
        )
        egraph.add_rewrite(App("Add", a, App("Num", 0)), a, name="add-zero")
        egraph.add_rewrite(App("Mul", a, App("Num", 1)), a, name="mul-one")
        egraph.add_rewrite(App("Mul", a, App("Num", 0)), App("Num", 0), name="mul-zero")
        rng = random.Random(seed)
        egraph.add(_math_term(depth, rng))

    return Workload(
        name="math",
        family="math-rewriting",
        params={"depth": depth, "iterations": iterations, "seed": seed},
        setup=setup,
        run=lambda egraph: egraph.run(iterations),
        tables_of_interest=("Add", "Mul", "Num"),
    )


# ---------------------------------------------------------------------------
# Congruence-closure stress
# ---------------------------------------------------------------------------


def congruence_stress(*, leaves: int, height: int, seed: int = 0) -> Workload:
    """Union leaf classes under towers of unary ``f`` and count the fallout.

    Builds ``leaves`` towers ``f(f(...f(Leaf(i))))`` of the given height,
    then unions the leaves pairwise in a seeded random order.  Every union
    forces congruence repairs up the towers; the run phase is rebuilding,
    driven through :meth:`EGraph.rebuild` so the report isolates it.
    """

    def setup(egraph: EGraph) -> None:
        egraph.declare_sort("V")
        egraph.constructor("Leaf", ("i64",), "V")
        egraph.constructor("F", ("V",), "V")
        for index in range(leaves):
            term = App("Leaf", index)
            for _ in range(height):
                term = App("F", term)
            egraph.add(term)

    def run(egraph: EGraph) -> RunReport:
        import time

        rng = random.Random(seed)
        order = list(range(leaves))
        rng.shuffle(order)
        report = RunReport()
        start = time.perf_counter()
        for left, right in zip(order, order[1:]):
            egraph.union(App("Leaf", left), App("Leaf", right))
            egraph.rebuild()
            report.iterations += 1
        report.rebuild_time = time.perf_counter() - start
        report.saturated = True
        return report

    return Workload(
        name="congruence",
        family="congruence-closure",
        params={"leaves": leaves, "height": height, "seed": seed},
        setup=setup,
        run=run,
        tables_of_interest=("Leaf", "F"),
    )


# ---------------------------------------------------------------------------
# Proof production
# ---------------------------------------------------------------------------


def proof_explain(*, leaves: int, height: int, explains: int, seed: int = 0) -> Workload:
    """Proof-size workload: congruence towers, then a batch of ``explain``\\ s.

    Builds the :func:`congruence_stress` shape (towers of unary ``F`` over
    ``Leaf`` classes), unions the leaves pairwise, rebuilds once, then asks
    the engine to explain ``explains`` seeded-random pairs of tower *tops* —
    equalities that only hold through chains of congruence steps.  The
    report's ``num_matches`` carries the total number of proof steps
    produced, so the regression gate catches semantic drift in proof sizes,
    not just timing.
    """

    def top(index: int) -> App:
        term = App("Leaf", index)
        for _ in range(height):
            term = App("F", term)
        return term

    def setup(egraph: EGraph) -> None:
        egraph.declare_sort("V")
        egraph.constructor("Leaf", ("i64",), "V")
        egraph.constructor("F", ("V",), "V")
        for index in range(leaves):
            egraph.add(top(index))

    def run(egraph: EGraph) -> RunReport:
        import time

        rng = random.Random(seed)
        order = list(range(leaves))
        rng.shuffle(order)
        report = RunReport()
        start = time.perf_counter()
        for left, right in zip(order, order[1:]):
            egraph.union(App("Leaf", left), App("Leaf", right))
        egraph.rebuild()
        total_steps = 0
        for _ in range(explains):
            a, b = rng.randrange(leaves), rng.randrange(leaves)
            total_steps += len(egraph.explain(top(a), top(b)).steps)
        report.iterations = explains
        report.num_matches = total_steps
        report.saturated = True
        report.rebuild_time = time.perf_counter() - start
        return report

    return Workload(
        name="proofs",
        family="proof-production",
        params={"leaves": leaves, "height": height, "explains": explains, "seed": seed},
        setup=setup,
        run=run,
        tables_of_interest=("Leaf", "F"),
    )


# ---------------------------------------------------------------------------
# Default suites
# ---------------------------------------------------------------------------


def default_workloads(*, quick: bool = False, seed: int = 0) -> List[Workload]:
    """The standard suite; ``quick`` shrinks parameters to CI-smoke size."""
    if quick:
        return [
            transitive_closure("chain", n=28, seed=seed),
            transitive_closure("random", n=18, m=36, seed=seed),
            transitive_closure("grid", n=4, seed=seed),
            math_rewriting(depth=4, iterations=4, seed=seed),
            congruence_stress(leaves=60, height=4, seed=seed),
            proof_explain(leaves=40, height=4, explains=30, seed=seed),
        ]
    return [
        transitive_closure("chain", n=72, seed=seed),
        # Sparse (m ≈ 2n): long derivation chains, many semi-naïve
        # iterations — the regime the incremental indexes target.
        transitive_closure("random", n=48, m=96, seed=seed),
        transitive_closure("grid", n=7, seed=seed),
        math_rewriting(depth=5, iterations=5, seed=seed),
        congruence_stress(leaves=220, height=5, seed=seed),
        proof_explain(leaves=150, height=5, explains=100, seed=seed),
    ]
