"""Exception hierarchy for the egglog engine.

Errors correspond to the failure modes the paper's language defines:
merge-expression conflicts on functional dependencies (Section 3.2),
explicit ``panic`` actions, failed ``check`` commands, and extraction from
an e-class with no extractable representative.
"""

from __future__ import annotations

from ..errors import ReproError


class EGraphError(ReproError):
    """Base class for all engine errors."""


class MergeError(EGraphError):
    """A functional-dependency violation could not be repaired.

    Raised when a function declared with ``merge="error"`` receives two
    distinct outputs for the same (canonicalized) argument tuple, or when a
    user merge function fails (Section 3.2, merge expressions).
    """


class EGraphPanic(EGraphError):
    """An explicit ``panic`` action fired (Section 3.1, actions)."""


class CheckError(EGraphError):
    """A ``check`` command found no matches for its facts."""


class ExtractError(EGraphError):
    """Extraction could not find a representative term for an e-class."""
