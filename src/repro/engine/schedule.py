"""Run schedules: composable control over rule execution (``run-schedule``).

egglog's surface language offers more than a bare iteration limit: the
``run-schedule`` command composes *schedules* — run a ruleset to
saturation, sequence phases, repeat a phase a fixed number of times.
These are the combinators:

* :class:`Run` — up to ``limit`` scheduler iterations of one ruleset
  (stopping early at saturation), the primitive every schedule bottoms
  out in.
* :class:`Seq` — run sub-schedules in order.
* :class:`Repeat` — run a sequence of sub-schedules up to ``times`` times,
  stopping early once a whole pass changes nothing.
* :class:`Saturate` — repeat a sequence of sub-schedules until a whole
  pass changes nothing.

Termination of ``Saturate`` is inherited from the engine's own saturation
test: a pass that performs no inserts, updates, unions, or deletes cannot
enable new matches, so the loop stops.  The scheduler interprets these
(:meth:`repro.engine.scheduler.Scheduler.run_schedule`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from .rule import DEFAULT_RULESET


@dataclass(frozen=True)
class Run:
    """Run one ruleset for up to ``limit`` iterations (early-stop on saturation)."""

    limit: int = 1
    ruleset: str = DEFAULT_RULESET


@dataclass(frozen=True)
class Seq:
    """Run each sub-schedule once, in order."""

    schedules: Tuple["Schedule", ...]


@dataclass(frozen=True)
class Repeat:
    """Run the sub-schedules as a pass, up to ``times`` passes."""

    times: int
    schedules: Tuple["Schedule", ...]


@dataclass(frozen=True)
class Saturate:
    """Run the sub-schedules as a pass until a pass changes nothing."""

    schedules: Tuple["Schedule", ...]


Schedule = Union[Run, Seq, Repeat, Saturate]


def saturate(*schedules: Schedule) -> Saturate:
    """Sugar: ``saturate(...)`` with default ``Run()`` when no body is given."""
    return Saturate(schedules or (Run(),))


def seq(*schedules: Schedule) -> Seq:
    """Sugar for :class:`Seq`."""
    return Seq(schedules)


def repeat(times: int, *schedules: Schedule) -> Repeat:
    """Sugar: ``repeat(n, ...)`` with default ``Run()`` when no body is given."""
    return Repeat(times, schedules or (Run(),))
