"""Session layer: many named e-graph sessions forked from warm bases.

This package is the engine-facing half of the service layer (the HTTP half
lives in :mod:`repro.server`).  A :class:`SessionManager` owns named **base**
e-graphs — built by running ``.egg`` programs or loading ``repro.snapshot/v1``
files — and forks per-client :class:`Session` objects from them through
in-memory snapshot documents, no disk I/O on the fork path.  Sessions accept
``.egg`` command batches and JSON-encoded programs
(:mod:`repro.session.program`), run schedules under budgets, and answer
extract/check/explain queries.

Everything here is transport-agnostic and thread-safe: the manager and each
session carry their own locks, so any server (or a plain thread pool) can
drive them.
"""

from .errors import (
    CapacityError,
    CheckpointError,
    DuplicateNameError,
    ProgramError,
    SessionError,
    UnknownBaseError,
    UnknownSessionError,
)
from .manager import Session, SessionManager
from .program import report_json, run_ops
from .store import CheckpointStore

__all__ = [
    "CapacityError",
    "CheckpointError",
    "CheckpointStore",
    "DuplicateNameError",
    "ProgramError",
    "Session",
    "SessionError",
    "SessionManager",
    "UnknownBaseError",
    "UnknownSessionError",
    "report_json",
    "run_ops",
]
