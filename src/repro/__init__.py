"""repro: a Python reproduction of egglog.

egglog ("Better Together: Unifying Datalog and Equality Saturation",
Zhang et al., PACMPL 7(PLDI), 2023) unifies Datalog and equality saturation
in one fixpoint engine.  ``repro.core`` holds the substrate (union-find,
functional database, query engines, primitives, terms); ``repro.engine``
holds the engine itself (rules, actions, rebuilding, the semi-naïve
scheduler, and the string-level ``EGraph`` facade); ``repro.dsl`` is the
blessed embedded surface — typed sort/function handles,
operator-overloaded expressions, first-class rulesets — re-exported here
(``repro.EGraph`` *is* ``repro.dsl.EGraph``); ``repro.frontend``
implements the paper's textual .egg language on top
(``python -m repro program.egg``).
"""

from ._version import __version__
from .dsl import (
    DslError,
    EGraph,
    ExplainStep,
    Explanation,
    Expr,
    Extracted,
    Function,
    Rewrite,
    Ruleset,
    Sort,
    delete,
    eq,
    let,
    lit,
    panic,
    repeat,
    rule,
    saturate,
    seq,
    set_,
    union,
    var,
    vars_,
)
from .errors import ReproError
from .frontend import Evaluator, run_program

__all__ = [
    "DslError",
    "EGraph",
    "Evaluator",
    "ExplainStep",
    "Explanation",
    "Expr",
    "Extracted",
    "Function",
    "ReproError",
    "Rewrite",
    "Ruleset",
    "Sort",
    "delete",
    "eq",
    "let",
    "lit",
    "panic",
    "repeat",
    "rule",
    "run_program",
    "saturate",
    "seq",
    "set_",
    "union",
    "var",
    "vars_",
    "__version__",
]
