"""Named e-graph sessions forked from warm bases, under an LRU capacity cap.

The :class:`SessionManager` is the service's state: a registry of **bases**
(template engines built once — by running an ``.egg`` program or decoding a
``repro.snapshot/v1`` file — then kept warm in memory) and a table of live
**sessions** (engines forked from those templates).  Forking never touches
disk or JSON: :meth:`EGraph.fork` copies the template structurally, and the
fork *shares* the template's primitive registry, so the process-level
compile cache (:mod:`repro.engine.compilecache`) serves every sibling the
same compiled query plans.

Concurrency model: the manager takes one re-entrant lock for table surgery
(create/evict/remove), and each session carries its own mutex held for the
duration of a batch.  A session whose mutex is held is *busy* and immune to
eviction; capacity pressure evicts the least-recently-used idle session
instead, or fails with :class:`CapacityError` when every session is busy.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..core.values import Value
from ..engine.compilecache import CACHE
from ..engine.egraph import EGraph
from ..frontend.errors import FrontendError
from ..frontend.evaluator import Evaluator
from ..serialize.encode import decode_values
from ..serialize.snapshot import engine_from_document, read_document
from .errors import (
    CapacityError,
    DuplicateNameError,
    ProgramError,
    UnknownBaseError,
    UnknownSessionError,
)
from .program import Json, run_ops


def _egg_globals(document: Dict[str, Any]) -> List[Any]:
    surfaces = document.get("surfaces")
    egg = surfaces.get("egg", {}) if isinstance(surfaces, dict) else {}
    return egg.get("globals", []) if isinstance(egg, dict) else []


@dataclass
class BaseInfo:
    """One named base: a warm template engine every session forks from.

    The template is never run after installation — every mutation happens
    on forks — so concurrent forking (serialized by the manager lock) reads
    a stable structure.
    """

    name: str
    engine: EGraph
    globals_values: Dict[str, Value]
    source: str  # "egg" | "snapshot"
    created_at: float = field(default_factory=time.monotonic)
    forks: int = 0

    def info(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "source": self.source,
            "forks": self.forks,
            "functions": len(self.engine.tables),
            "rows": self.engine.node_count(),
        }


class Session:
    """One live engine plus its ``.egg`` evaluator, guarded by a mutex.

    All entry points serialize on :attr:`lock`: a session is a
    single-threaded engine that many clients may *own* but only one may
    *drive* at a time.  The manager checks the same mutex to decide whether
    a session is evictable.
    """

    def __init__(self, session_id: str, base: Optional[str], evaluator: Evaluator) -> None:
        self.id = session_id
        self.base = base
        self.evaluator = evaluator
        self.engine: EGraph = evaluator.egraph
        self.lock = threading.Lock()
        self.created_at = time.monotonic()
        self.last_used = self.created_at
        self.batches = 0

    def touch(self) -> None:
        self.last_used = time.monotonic()
        self.batches += 1

    def run_egg(self, text: str) -> List[str]:
        """Run a batch of ``.egg`` commands; returns the lines it printed."""
        with self.lock:
            self.touch()
            try:
                return self.evaluator.run_program(text, f"<session {self.id}>")
            except FrontendError as error:
                raise ProgramError(str(error)) from error

    def run_program(self, ops: Json) -> List[Json]:
        """Run a JSON-encoded program (see :mod:`repro.session.program`)."""
        with self.lock:
            self.touch()
            return run_ops(self.engine, ops, self.evaluator.globals)

    def info(self) -> Dict[str, Any]:
        now = time.monotonic()
        return {
            "id": self.id,
            "base": self.base,
            "busy": self.lock.locked(),
            "batches": self.batches,
            "age_s": round(now - self.created_at, 3),
            "idle_s": round(now - self.last_used, 3),
            "nodes": self.engine.node_count(),
        }


class SessionManager:
    """Owns every base and session; all public methods are thread-safe."""

    def __init__(
        self,
        *,
        strategy: str = "indexed",
        max_sessions: int = 64,
        idle_ttl_s: Optional[float] = None,
    ) -> None:
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions}")
        self.strategy = strategy
        self.max_sessions = max_sessions
        self.idle_ttl_s = idle_ttl_s
        self._lock = threading.RLock()
        self._bases: Dict[str, BaseInfo] = {}
        self._sessions: "OrderedDict[str, Session]" = OrderedDict()
        self._ids = itertools.count(1)
        self.evictions = 0

    # -- bases ----------------------------------------------------------------

    def add_base_from_program(self, name: str, text: str) -> Dict[str, Any]:
        """Build a base by running an ``.egg`` program on a fresh engine.

        The evaluator's engine becomes the template directly: it is warm —
        its compiled query plans already sit in the process cache under its
        registry — so every fork starts with the cache hot.
        """
        self._check_base_name(name)
        evaluator = Evaluator(strategy=self.strategy)
        try:
            evaluator.run_program(text, f"<base {name}>")
        except FrontendError as error:
            raise ProgramError(str(error)) from error
        return self._install_base(
            name, evaluator.egraph, dict(evaluator.globals), "egg"
        )

    def add_base_from_snapshot(self, name: str, path: str) -> Dict[str, Any]:
        """Register a ``repro.snapshot/v1`` file as a base.

        The document is decoded exactly once, here; every session then forks
        the resulting template engine without touching the file again.
        """
        self._check_base_name(name)
        document = read_document(path)
        engine = engine_from_document(document, strategy=self.strategy)
        globals_values = decode_values(_egg_globals(document), "egg globals")
        return self._install_base(name, engine, globals_values, "snapshot")

    def _check_base_name(self, name: str) -> None:
        if not name or not isinstance(name, str):
            raise ProgramError(f"base name must be a non-empty string, got {name!r}")
        with self._lock:
            if name in self._bases:
                raise DuplicateNameError(f"base {name!r} already exists")

    def _install_base(
        self, name: str, engine: EGraph, globals_values: Dict[str, Value], source: str
    ) -> Dict[str, Any]:
        base = BaseInfo(
            name=name, engine=engine, globals_values=globals_values, source=source
        )
        with self._lock:
            if name in self._bases:
                raise DuplicateNameError(f"base {name!r} already exists")
            self._bases[name] = base
        return base.info()

    def remove_base(self, name: str) -> None:
        with self._lock:
            if name not in self._bases:
                raise UnknownBaseError(f"no base named {name!r}")
            del self._bases[name]

    def bases(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [base.info() for base in self._bases.values()]

    # -- sessions -------------------------------------------------------------

    def create_session(self, base: Optional[str] = None) -> Session:
        """Create a session — empty, or forked in memory from a named base."""
        with self._lock:
            if base is not None:
                if base not in self._bases:
                    raise UnknownBaseError(f"no base named {base!r}")
                info = self._bases[base]
                session = self._new_session(
                    base, info.engine.fork(strategy=self.strategy), info.globals_values
                )
                info.forks += 1
            else:
                session = Session(self._next_id(), None, Evaluator(strategy=self.strategy))
            self._admit(session)
            return session

    def fork_session(self, session_id: str) -> Session:
        """Clone a live session: structural engine fork plus its globals."""
        parent = self.get(session_id)
        with parent.lock:
            engine = parent.engine.fork()
            globals_values = parent.evaluator.globals
        with self._lock:
            session = self._new_session(parent.base, engine, globals_values)
            self._admit(session)
            return session

    def _new_session(
        self, base: Optional[str], engine: EGraph, globals_values: Dict[str, Value]
    ) -> Session:
        evaluator = Evaluator(engine)
        evaluator.globals = dict(globals_values)
        return Session(self._next_id(), base, evaluator)

    def _next_id(self) -> str:
        return f"s{next(self._ids)}"

    def _admit(self, session: Session) -> None:
        """Insert under the capacity cap, evicting idle LRU sessions first."""
        self._sweep_idle()
        while len(self._sessions) >= self.max_sessions:
            victim = next(
                (s for s in self._sessions.values() if not s.lock.locked()), None
            )
            if victim is None:
                raise CapacityError(
                    f"all {self.max_sessions} sessions are busy; try again later"
                )
            del self._sessions[victim.id]
            self.evictions += 1
        self._sessions[session.id] = session

    def _sweep_idle(self) -> None:
        if self.idle_ttl_s is None:
            return
        now = time.monotonic()
        expired = [
            s.id
            for s in self._sessions.values()
            if not s.lock.locked() and now - s.last_used > self.idle_ttl_s
        ]
        for session_id in expired:
            del self._sessions[session_id]
            self.evictions += 1

    def get(self, session_id: str) -> Session:
        """Look up a session and mark it most-recently-used."""
        with self._lock:
            session = self._sessions.get(session_id)
            if session is None:
                raise UnknownSessionError(f"no session {session_id!r} (evicted or never created)")
            self._sessions.move_to_end(session_id)
            session.last_used = time.monotonic()
            return session

    def remove_session(self, session_id: str) -> None:
        with self._lock:
            if session_id not in self._sessions:
                raise UnknownSessionError(f"no session {session_id!r}")
            del self._sessions[session_id]

    def sessions(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [session.info() for session in self._sessions.values()]

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "sessions": len(self._sessions),
                "max_sessions": self.max_sessions,
                "bases": len(self._bases),
                "evictions": self.evictions,
                "strategy": self.strategy,
                "idle_ttl_s": self.idle_ttl_s,
                "compile_cache": CACHE.stats(),
            }
