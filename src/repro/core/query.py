"""Conjunctive queries over the egglog database.

A rule's query is a flat conjunction of:

* *table atoms* ``f(a1, ..., an) -> o`` over egglog functions, and
* *primitive atoms* — interpreted computations or guards such as
  ``(+ x y) -> z`` or ``(!= x y)``.

Because the database is kept canonical with respect to the built-in
equivalence relation, evaluating these queries with ordinary relational joins
is exactly e-matching (pattern matching modulo equality) — this is the
"relational e-matching" insight the paper builds on.

Two join strategies are provided:

* :func:`search_indexed` — an index-nested-loop join with a greedy atom
  ordering (bound-variables-first, then smallest table).  This is the default
  strategy.
* :func:`repro.core.genericjoin.search_generic` — a worst-case optimal
  variable-at-a-time generic join, as used by relational e-matching.

Both support *delta* searches for semi-naïve evaluation: one designated atom
is restricted to rows whose timestamp is at least ``since``.

These interpreted strategies serve one-off public queries (``query``,
``check``) and act as the reference implementation; the scheduler runs
compiled rules through the positional executors in
:mod:`repro.core.compile`, which enumerate matches in exactly the same
order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from .builtins import PrimitiveRegistry
from .database import Table
from .values import BOOL, UNIT, Value


@dataclass(frozen=True)
class QVar:
    """A query variable."""

    name: str

    def __repr__(self) -> str:
        return f"?{self.name}"


Arg = Union[QVar, Value]


@dataclass(frozen=True)
class TableAtom:
    """An atom ``func(args...) -> out`` over an egglog function table."""

    func: str
    args: Tuple[Arg, ...]
    out: Arg

    def columns(self) -> Tuple[Arg, ...]:
        return self.args + (self.out,)

    def variables(self) -> Iterator[str]:
        for col in self.columns():
            if isinstance(col, QVar):
                yield col.name


@dataclass(frozen=True)
class PrimAtom:
    """A primitive computation or guard.

    If ``out`` is None the primitive is a guard: it must evaluate to boolean
    true (or unit).  Otherwise the result is unified with ``out`` — binding it
    if it is an unbound variable, or comparing for equality otherwise.
    """

    op: str
    args: Tuple[Arg, ...]
    out: Optional[Arg] = None

    def variables(self) -> Iterator[str]:
        for col in self.args:
            if isinstance(col, QVar):
                yield col.name
        if isinstance(self.out, QVar):
            yield self.out.name

    def input_variables(self) -> Set[str]:
        return {a.name for a in self.args if isinstance(a, QVar)}


@dataclass
class Query:
    """A conjunctive query: table atoms plus primitive atoms."""

    atoms: List[TableAtom] = field(default_factory=list)
    prims: List[PrimAtom] = field(default_factory=list)

    def variables(self) -> Set[str]:
        result: Set[str] = set()
        for atom in self.atoms:
            result.update(atom.variables())
        for prim in self.prims:
            result.update(prim.variables())
        return result

    def table_variables(self) -> Set[str]:
        result: Set[str] = set()
        for atom in self.atoms:
            result.update(atom.variables())
        return result


Substitution = Dict[str, Value]


class PrimFailure(Exception):
    """Raised when a primitive guard cannot be evaluated in an action context."""


def apply_prims(
    prims: Sequence[PrimAtom],
    bindings: Substitution,
    registry: PrimitiveRegistry,
) -> Optional[Substitution]:
    """Evaluate primitive atoms against ``bindings``.

    Repeatedly applies every primitive whose inputs are fully bound; a
    primitive may bind its output variable.  Returns the extended bindings on
    success, or None if some guard fails.  Primitives whose inputs never
    become bound cause a failure as well (the query is unsafe).
    """
    bindings = dict(bindings)
    pending = list(prims)
    progress = True
    while pending and progress:
        progress = False
        still_pending: List[PrimAtom] = []
        for prim in pending:
            if not prim.input_variables() <= bindings.keys():
                still_pending.append(prim)
                continue
            args = tuple(
                bindings[a.name] if isinstance(a, QVar) else a for a in prim.args
            )
            result = registry.call(prim.op, args)
            if result is None:
                return None
            if prim.out is None:
                if result.sort == BOOL and not result.data:
                    return None
                if result.sort not in (BOOL, UNIT):
                    return None
            elif isinstance(prim.out, QVar):
                existing = bindings.get(prim.out.name)
                if existing is None:
                    bindings[prim.out.name] = result
                elif existing != result:
                    return None
            else:
                if prim.out != result:
                    return None
            progress = True
        pending = still_pending
    if pending:
        return None
    return bindings


def plan_order(
    atoms: Sequence[TableAtom],
    tables: Dict[str, Table],
    delta_index: Optional[int],
) -> List[int]:
    """Greedy join order: the delta atom first, then atoms that share the most
    already-bound variables, tie-broken by smallest table.

    Shared by the interpreted :func:`search_indexed` below and the compiled
    executor (:mod:`repro.core.compile`) so both enumerate matches in the
    same order for the same database state.
    """
    remaining = list(range(len(atoms)))
    order: List[int] = []
    bound: Set[str] = set()

    def take(index: int) -> None:
        order.append(index)
        remaining.remove(index)
        bound.update(atoms[index].variables())

    if delta_index is not None:
        take(delta_index)
    while remaining:
        best = None
        best_key = None
        for index in remaining:
            atom = atoms[index]
            atom_vars = set(atom.variables())
            n_bound = len(atom_vars & bound)
            size = len(tables[atom.func]) if atom.func in tables else 0
            key = (-n_bound, size)
            if best_key is None or key < best_key:
                best_key = key
                best = index
        take(best)  # type: ignore[arg-type]
    return order


def _bind_row(
    atom: TableAtom, row: Tuple[Value, ...], bindings: Substitution
) -> Optional[Substitution]:
    """Try to extend ``bindings`` so that ``atom`` matches the full ``row``."""
    new_bindings = bindings
    copied = False
    for col, value in zip(atom.columns(), row):
        if isinstance(col, QVar):
            existing = new_bindings.get(col.name)
            if existing is None:
                if not copied:
                    new_bindings = dict(new_bindings)
                    copied = True
                new_bindings[col.name] = value
            elif existing != value:
                return None
        else:
            if col != value:
                return None
    return new_bindings if copied else dict(new_bindings)


def search_indexed(
    tables: Dict[str, Table],
    registry: PrimitiveRegistry,
    query: Query,
    delta_atom: Optional[int] = None,
    since: int = 0,
) -> Iterator[Substitution]:
    """Index-nested-loop join over the query's table atoms.

    ``delta_atom``/``since`` implement the semi-naïve restriction: when given,
    the designated atom only matches rows with ``timestamp >= since``.
    """
    atoms = query.atoms
    if not atoms:
        result = apply_prims(query.prims, {}, registry)
        if result is not None:
            yield result
        return

    for atom in atoms:
        if atom.func not in tables:
            return
    order = plan_order(atoms, tables, delta_atom)

    def recurse(position: int, bindings: Substitution) -> Iterator[Substitution]:
        if position == len(order):
            final = apply_prims(query.prims, bindings, registry)
            if final is not None:
                yield final
            return
        atom_index = order[position]
        atom = atoms[atom_index]
        table = tables[atom.func]
        columns = atom.columns()
        is_delta = delta_atom is not None and atom_index == delta_atom

        bound_cols: List[int] = []
        bound_vals: List[Value] = []
        for col_index, col in enumerate(columns):
            if isinstance(col, QVar):
                value = bindings.get(col.name)
                if value is not None:
                    bound_cols.append(col_index)
                    bound_vals.append(value)
            else:
                bound_cols.append(col_index)
                bound_vals.append(col)

        if is_delta:
            candidate_keys = table.new_keys(since)
        elif bound_cols:
            index = table.index(tuple(bound_cols))
            # Snapshot the entry: the index is live (incrementally maintained)
            # and this generator may outlive subsequent table writes.
            candidate_keys = list(index.get(tuple(bound_vals), ()))
        else:
            candidate_keys = list(table.data.keys())

        for key in candidate_keys:
            row = table.get_row(key)
            if row is None:
                continue
            if is_delta and row.timestamp < since:
                continue
            full = key + (row.value,)
            extended = _bind_row(atom, full, bindings)
            if extended is None:
                continue
            yield from recurse(position + 1, extended)

    yield from recurse(0, {})
