"""Worst-case optimal generic join for egglog queries.

This is the join algorithm used by relational e-matching (Zhang et al. 2022)
and by the egglog query engine described in Section 5.1 of the paper: instead
of joining one *atom* at a time, generic join binds one *variable* at a time,
intersecting the candidate values contributed by every atom that mentions the
variable.  On cyclic or multi-pattern queries this avoids the intermediate
blowups of pairwise joins.

The tries generic join descends are *persistent* whenever possible: each
atom is planned against its table's registered column-trie indexes
(:mod:`repro.core.index`), which are maintained incrementally as the table
changes — constants are resolved by descending the trie's constant prefix,
and the semi-naïve delta atom reads a timestamp-bucket slice instead of
filtering rows.  Atoms whose ordering has no registered index (one-off
queries, repeated variables) fall back to the original per-execution
nested-dict trie build.

The global variable order is structural (occurrence count, then first
occurrence) rather than cardinality-based so that a compiled rule's index
orderings are stable across iterations; the scheduler registers them with
the tables up front.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .builtins import PrimitiveRegistry
from .database import Table
from .index import descend_constants, plan_query
from .query import Query, QVar, Substitution, TableAtom, apply_prims
from .values import Value


def _atom_rows(
    table: Table, restrict_new: bool, since: int
) -> Iterator[Tuple[Value, ...]]:
    """Rows of ``table`` as full tuples, optionally restricted to new rows.

    The ``restrict_new``/``since`` pair is the semi-naïve delta restriction
    (Section 4.3): only rows stamped at or after ``since`` participate —
    enumerated via the table's write log, so the delta atom costs
    O(|delta|), not a full scan.
    """
    if restrict_new:
        for key in table.new_keys(since):
            row = table.data[key]
            yield key + (row.value,)
        return
    for key, row in table.data.items():
        yield key + (row.value,)


def _project_atom(
    atom: TableAtom, rows: Iterator[Tuple[Value, ...]]
) -> Tuple[List[str], List[Tuple[Value, ...]]]:
    """Filter rows by the atom's constants and repeated variables, then
    project each row onto the atom's distinct variables (first-occurrence
    order).  Returns (variable names, projected rows)."""
    columns = atom.columns()
    var_positions: Dict[str, int] = {}
    var_order: List[str] = []
    for position, col in enumerate(columns):
        if isinstance(col, QVar) and col.name not in var_positions:
            var_positions[col.name] = position
            var_order.append(col.name)

    projected: List[Tuple[Value, ...]] = []
    for row in rows:
        ok = True
        for position, col in enumerate(columns):
            if isinstance(col, QVar):
                if row[var_positions[col.name]] != row[position]:
                    ok = False
                    break
            elif col != row[position]:
                ok = False
                break
        if ok:
            projected.append(tuple(row[var_positions[name]] for name in var_order))
    return var_order, projected


def _build_trie(rows: Sequence[Tuple[Value, ...]], permutation: Sequence[int]) -> Dict:
    """Build a nested-dict trie over ``rows`` keyed in ``permutation`` order."""
    root: Dict = {}
    if not permutation:
        # Zero-variable atom: the trie is just a non-emptiness marker.
        return {"__nonempty__": True} if rows else {}
    for row in rows:
        node = root
        for position in permutation[:-1]:
            node = node.setdefault(row[position], {})
        node.setdefault(row[permutation[-1]], True)
    return root


def search_generic(
    tables: Dict[str, Table],
    registry: PrimitiveRegistry,
    query: Query,
    delta_atom: Optional[int] = None,
    since: int = 0,
    use_indexes: bool = True,
) -> Iterator[Substitution]:
    """Run ``query`` with a variable-at-a-time worst-case optimal join.

    ``delta_atom``/``since`` implement the semi-naïve restriction: when given,
    the designated atom only contributes rows with ``timestamp >= since``.
    ``use_indexes=False`` forces the per-execution trie build for every atom
    (the pre-index baseline, kept for ``repro.bench`` comparisons).
    """
    atoms = query.atoms
    if not atoms:
        result = apply_prims(query.prims, {}, registry)
        if result is not None:
            yield result
        return
    for atom in atoms:
        if atom.func not in tables:
            return

    plan = plan_query(query)
    var_order = plan.var_order
    var_rank = plan.var_rank
    n_atoms = len(atoms)

    # The delta atom goes first: if nothing is new since the watermark, the
    # search exits before any other atom pays for projection or trie work.
    atom_order = list(range(n_atoms))
    if delta_atom is not None:
        atom_order.remove(delta_atom)
        atom_order.insert(0, delta_atom)

    tries: List[Optional[Dict]] = [None] * n_atoms
    atom_sorted_vars: List[Tuple[str, ...]] = [()] * n_atoms
    for index in atom_order:
        atom = atoms[index]
        table = tables[atom.func]
        restrict = delta_atom is not None and index == delta_atom
        spec = plan.specs[index]
        if use_indexes and spec is not None:
            trie = table.trie(spec.order)
            if trie is not None:
                root = trie.delta_root(since) if restrict else trie.root
                node = descend_constants(root, spec.const_values)
                if node is None:
                    # An empty atom (whether it has variables or is ground)
                    # means the whole conjunction has no answers.
                    return
                tries[index] = node
                atom_sorted_vars[index] = spec.var_names
                continue
        names, rows = _project_atom(atom, _atom_rows(table, restrict, since))
        if not rows:
            return
        sorted_names = tuple(sorted(names, key=lambda v: var_rank[v]))
        permutation = [names.index(v) for v in sorted_names]
        tries[index] = _build_trie(rows, permutation)
        atom_sorted_vars[index] = sorted_names

    def recurse(
        depth: int, nodes: List[Dict], consumed: Tuple[int, ...], bindings: Substitution
    ) -> Iterator[Substitution]:
        if depth == len(var_order):
            final = apply_prims(query.prims, dict(bindings), registry)
            if final is not None:
                yield final
            return
        variable = var_order[depth]
        relevant = [
            index
            for index in range(n_atoms)
            if consumed[index] < len(atom_sorted_vars[index])
            and atom_sorted_vars[index][consumed[index]] == variable
        ]
        if not relevant:
            yield from recurse(depth + 1, nodes, consumed, bindings)
            return
        smallest = min(relevant, key=lambda index: len(nodes[index]))
        # Snapshot the iterated level: persistent tries are live structures,
        # and a caller consuming this generator lazily may mutate the
        # database between yields (same reason search_indexed snapshots its
        # candidate keys).  Deeper levels pass through this same loop.
        for value in list(nodes[smallest]):
            new_nodes = list(nodes)
            new_consumed = list(consumed)
            ok = True
            for index in relevant:
                child = nodes[index].get(value)
                if child is None:
                    ok = False
                    break
                new_nodes[index] = child if isinstance(child, dict) else {}
                new_consumed[index] = consumed[index] + 1
            if not ok:
                continue
            bindings[variable] = value
            yield from recurse(depth + 1, new_nodes, tuple(new_consumed), bindings)
            del bindings[variable]

    yield from recurse(0, tries, tuple(0 for _ in range(n_atoms)), {})  # type: ignore[arg-type]


def search_generic_adhoc(
    tables: Dict[str, Table],
    registry: PrimitiveRegistry,
    query: Query,
    delta_atom: Optional[int] = None,
    since: int = 0,
) -> Iterator[Substitution]:
    """Generic join that always rebuilds its tries per execution.

    This is the pre-index behaviour, kept as a named strategy so the
    benchmark harness can measure what the persistent indexes buy.
    """
    return search_generic(
        tables, registry, query, delta_atom=delta_atom, since=since, use_indexes=False
    )
