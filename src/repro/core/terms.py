"""Terms and patterns.

Terms are the tree-shaped surface syntax of egglog expressions (the exprs of
Section 3.1 of the paper): nested
applications of function symbols to literals and variables.  The core engine
works on *flattened* conjunctive queries (see ``repro.core.query``), but the
library API, the rewrite/rule sugar, the extraction results, and the text
language all speak in terms.

A term containing no variables is *ground*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple, Union

from typing import Protocol, runtime_checkable

from .values import Value, from_python


@dataclass(frozen=True)
class Term:
    """Base class for terms (patterns)."""

    def is_ground(self) -> bool:
        return not any(True for _ in self.variables())

    def variables(self) -> Iterator[str]:
        raise NotImplementedError

    def substitute(self, mapping: Dict[str, "Term"]) -> "Term":
        raise NotImplementedError


@dataclass(frozen=True)
class TermVar(Term):
    """A pattern variable."""

    name: str

    def variables(self) -> Iterator[str]:
        yield self.name

    def substitute(self, mapping: Dict[str, Term]) -> Term:
        return mapping.get(self.name, self)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class TermLit(Term):
    """A literal (primitive constant) wrapped as a term."""

    value: Value

    def variables(self) -> Iterator[str]:
        return iter(())

    def substitute(self, mapping: Dict[str, Term]) -> Term:
        return self

    def __str__(self) -> str:
        return repr(self.value.data)


@dataclass(frozen=True)
class TermApp(Term):
    """An application ``f(t1, ..., tn)`` of a function symbol to sub-terms."""

    func: str
    args: Tuple[Term, ...] = ()

    def variables(self) -> Iterator[str]:
        for arg in self.args:
            yield from arg.variables()

    def substitute(self, mapping: Dict[str, Term]) -> Term:
        return TermApp(self.func, tuple(a.substitute(mapping) for a in self.args))

    def __str__(self) -> str:
        if not self.args:
            return f"({self.func})"
        return "(" + self.func + " " + " ".join(str(a) for a in self.args) + ")"


@runtime_checkable
class SupportsTerm(Protocol):
    """Anything that can lower itself to a :class:`Term`.

    This is the coercion hook embedded surface languages plug into: an
    object exposing ``__term__`` (e.g. a ``repro.dsl`` expression handle) is
    accepted anywhere the engine takes a term — ``add``, ``union``,
    ``rewrite``, action/fact constructors — without the engine depending on
    the surface layer.
    """

    def __term__(self) -> "Term": ...


TermLike = Union[Term, SupportsTerm, Value, int, float, str, bool]


def V(name: str) -> TermVar:
    """Shorthand for a pattern variable."""
    return TermVar(name)


def L(value: TermLike) -> TermLit:
    """Shorthand for a literal term (accepts plain Python scalars)."""
    if isinstance(value, TermLit):
        return value
    if isinstance(value, Value):
        return TermLit(value)
    return TermLit(from_python(value))


def App(func: str, *args: TermLike) -> TermApp:
    """Shorthand for an application term; scalar args are lifted to literals."""
    return TermApp(func, tuple(as_term(a) for a in args))


def as_term(obj: TermLike) -> Term:
    """Coerce a Python scalar, Value, ``__term__`` provider, or Term to a Term."""
    if isinstance(obj, Term):
        return obj
    lower = getattr(obj, "__term__", None)
    if lower is not None:
        term = lower()
        if not isinstance(term, Term):
            raise TypeError(f"__term__ of {obj!r} returned non-Term {term!r}")
        return term
    if isinstance(obj, Value):
        return TermLit(obj)
    return TermLit(from_python(obj))


def term_size(term: Term) -> int:
    """Number of function applications and literals in a term (AST size)."""
    if isinstance(term, TermApp):
        return 1 + sum(term_size(a) for a in term.args)
    return 1


def term_depth(term: Term) -> int:
    """Depth of the term tree (literals and variables have depth 1)."""
    if isinstance(term, TermApp) and term.args:
        return 1 + max(term_depth(a) for a in term.args)
    return 1
