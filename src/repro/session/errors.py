"""Session-layer errors, each mapping to one HTTP status in the server."""

from __future__ import annotations


class SessionError(Exception):
    """Base class for session-layer failures (HTTP 400 unless refined)."""


class UnknownSessionError(SessionError):
    """No session under that id — evicted, deleted, or never created (404)."""


class UnknownBaseError(SessionError):
    """No base e-graph registered under that name (404)."""


class DuplicateNameError(SessionError):
    """A base or session with that name already exists (409)."""


class CapacityError(SessionError):
    """The session table is full and nothing is evictable right now (503)."""


class ProgramError(SessionError):
    """A submitted program is malformed or failed against the engine (422)."""


class CheckpointError(SessionError):
    """A checkpoint could not be written or read back — a server-side
    durability failure (unreadable state dir, corrupt snapshot file), not a
    client mistake (500)."""
