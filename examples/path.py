"""Transitive closure as Datalog with a ``min`` merge — shortest path lengths.

This is the paper's flagship Datalog-side example (Section 2), written in
the embedded DSL: ``path`` is not a relation but a *function* from node
pairs to the best known path length, declared with ``merge="min"``.
Re-deriving a longer path is a no-op; a shorter one overwrites and
(because the row's timestamp bumps) propagates through semi-naïve
evaluation until the fixpoint.

Run with::

    pip install -e .          # once (see README: Install & run)
    python examples/path.py
"""

import os
import sys
from typing import Tuple

# ``python examples/path.py`` prepends examples/ to sys.path, where the
# sibling ``math.py`` would shadow the stdlib ``math`` module for
# transitive imports (fractions -> math).  Drop that entry; the repro
# package itself comes from the installed environment
# (``pip install -e .``), not a path hack.
_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path[:] = [p for p in sys.path if os.path.abspath(p or os.getcwd()) != _HERE]

from repro import EGraph, Function, rule, set_, vars_  # noqa: E402
from repro.dsl import i64  # noqa: E402

EDGES = [(1, 2), (2, 3), (3, 4), (1, 3), (4, 5), (5, 2)]


def build_engine() -> Tuple[EGraph, Function, Function]:
    eg = EGraph()
    edge = eg.relation("edge", i64, i64)
    path = eg.function("path", (i64, i64), i64, merge="min")

    x, y, z = vars_("x y z", i64)
    (d,) = vars_("d", i64)
    eg.register(
        # (rule ((edge x y)) ((set (path x y) 1)))
        rule(name="edge-is-path").when(edge(x, y)).then(set_(path(x, y), 1)),
        # (rule ((= d (path x y)) (edge y z)) ((set (path x z) (+ d 1))))
        rule(name="extend-path")
        .when(d == path(x, y), edge(y, z))
        .then(set_(path(x, z), d + 1)),
    )
    return eg, edge, path


def main() -> None:
    eg, edge, path = build_engine()
    for a, b in EDGES:
        eg.add(edge(a, b))

    report = eg.run(100)
    print(f"run: {report.summary()}")
    assert report.saturated, "transitive closure must reach a fixpoint"

    lengths = {(key[0].data, key[1].data): value.data for key, value in path.rows()}
    print(f"{len(lengths)} shortest path lengths:")
    for (src, dst), dist in sorted(lengths.items()):
        print(f"  path({src}, {dst}) = {dist}")

    # Spot-check the min merge: 1->4 goes via the 1->3 shortcut (2 hops),
    # not via 1->2->3->4 (3 hops); 1->5 rides the shortcut too.
    assert lengths[(1, 4)] == 2
    assert lengths[(1, 5)] == 3
    # The 5->2 back edge closes a cycle; every node on it reaches itself.
    assert lengths[(2, 2)] == 4
    print("ok: min-merged shortest paths are correct")


if __name__ == "__main__":
    main()
