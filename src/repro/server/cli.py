"""``repro-serve``: the e-graph session service as a console command.

Boots a :class:`~repro.session.SessionManager`, optionally preloads named
bases from ``.egg`` programs or ``repro.snapshot/v1`` files, and serves the
HTTP API until SIGINT/SIGTERM.  The first line on stdout is always::

    repro-serve listening on http://HOST:PORT

so scripts can bind ``--port 0`` and scrape the ephemeral port.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from typing import List, Optional

from ..session import SessionError, SessionManager
from .app import App
from .http import serve


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve e-graph sessions over JSON/HTTP (see docs/SERVER.md).",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default %(default)s)")
    parser.add_argument(
        "--port", type=int, default=8642, help="bind port; 0 picks one (default %(default)s)"
    )
    parser.add_argument(
        "--strategy",
        default="indexed",
        choices=("indexed", "generic", "generic-adhoc"),
        help="join strategy for every engine (default %(default)s)",
    )
    parser.add_argument(
        "--max-sessions",
        type=int,
        default=64,
        metavar="N",
        help="LRU capacity cap on live sessions (default %(default)s)",
    )
    parser.add_argument(
        "--idle-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="evict sessions idle longer than this (default: never)",
    )
    parser.add_argument(
        "--base",
        action="append",
        default=[],
        metavar="NAME=PATH",
        help="preload a base from a .egg program or a .json snapshot; repeatable",
    )
    return parser


def _preload_bases(manager: SessionManager, specs: List[str]) -> None:
    for spec in specs:
        name, sep, path = spec.partition("=")
        if not sep or not name or not path:
            raise SystemExit(f"repro-serve: --base wants NAME=PATH, got {spec!r}")
        try:
            if path.endswith(".json"):
                info = manager.add_base_from_snapshot(name, path)
            else:
                with open(path, "r", encoding="utf-8") as handle:
                    info = manager.add_base_from_program(name, handle.read())
        except (OSError, SessionError) as error:
            raise SystemExit(f"repro-serve: cannot load base {name!r}: {error}") from error
        print(f"repro-serve base {name!r}: {info['functions']} function(s), "
              f"{info['rows']} row(s) [{info['source']}]", flush=True)


async def _run(app: App, host: str, port: int) -> None:
    server = await serve(app.handle, host, port)
    bound = server.sockets[0].getsockname()
    print(f"repro-serve listening on http://{bound[0]}:{bound[1]}", flush=True)

    stop = asyncio.get_event_loop().create_future()

    def request_stop() -> None:
        if not stop.done():
            stop.set_result(None)

    loop = asyncio.get_event_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, request_stop)
        except NotImplementedError:  # pragma: no cover - non-unix loops
            pass
    try:
        await stop
    finally:
        server.close()
        await server.wait_closed()
    print("repro-serve stopped", flush=True)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    manager = SessionManager(
        strategy=args.strategy,
        max_sessions=args.max_sessions,
        idle_ttl_s=args.idle_ttl,
    )
    _preload_bases(manager, args.base)
    try:
        asyncio.run(_run(App(manager), args.host, args.port))
    except KeyboardInterrupt:  # pragma: no cover - signal handler usually wins
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
