"""Primitive registry: overload resolution and failure-as-None semantics."""

from fractions import Fraction

import pytest

from repro.core.builtins import default_registry
from repro.core.values import (
    BOOL,
    I64,
    RATIONAL,
    Value,
    boolean,
    f64,
    i64,
    rational,
    string,
)

REG = default_registry()


def test_arithmetic_overloads_resolve_by_sort():
    assert REG.call("+", (i64(2), i64(3))) == i64(5)
    assert REG.call("+", (f64(1.5), f64(2.5))) == f64(4.0)
    assert REG.call("+", (string("foo"), string("bar"))) == string("foobar")
    assert REG.call("+", (rational(1, 2), rational(1, 3))) == rational(5, 6)
    assert REG.call("min", (i64(4), i64(9))) == i64(4)
    assert REG.call("max", (i64(4), i64(9))) == i64(9)


def test_division_overloads_differ_per_sort():
    assert REG.call("/", (i64(7), i64(2))) == i64(3)  # floor division on i64
    assert REG.call("/", (f64(7.0), f64(2.0))) == f64(3.5)
    assert REG.call("/", (rational(7), rational(2))) == rational(7, 2)


def test_shifts_and_modulo():
    assert REG.call("<<", (i64(3), i64(1))) == i64(6)
    assert REG.call(">>", (i64(12), i64(2))) == i64(3)
    assert REG.call("%", (i64(7), i64(3))) == i64(1)


def test_failure_is_none_not_an_exception():
    # Mixed sorts: no overload accepts them.
    assert REG.call("+", (i64(1), f64(2.0))) is None
    # Division by zero is a failure, not a crash.
    assert REG.call("/", (i64(1), i64(0))) is None
    assert REG.call("rational", (i64(1), i64(0))) is None
    # Unknown primitive.
    assert REG.call("no-such-prim", (i64(1),)) is None
    # Wrong arity — including for the polymorphic comparisons.
    assert REG.call("+", (i64(1),)) is None
    assert REG.call("=", (i64(1), i64(2), i64(3))) is None
    assert REG.call("!=", (i64(1),)) is None


def test_sort_agnostic_overload_with_arity_mismatch_is_not_applicable():
    reg = default_registry()
    reg.register("pair?", lambda a, b: boolean(True), None, BOOL)  # any sorts
    assert reg.call("pair?", (i64(1), i64(2))) == boolean(True)
    # Too few / too many args: the overload is skipped, not crashed into.
    assert reg.call("pair?", (i64(1),)) is None
    assert reg.call("pair?", (i64(1), i64(2), i64(3))) is None


def test_type_errors_inside_primitive_bodies_stay_loud():
    reg = default_registry()

    def buggy(a, b):
        return boolean(a.data < "oops")  # int < str: a genuine bug

    reg.register("buggy", buggy, None, BOOL)
    with pytest.raises(TypeError):
        reg.call("buggy", (i64(1), i64(2)))


def test_polymorphic_equality_and_comparisons():
    assert REG.call("=", (i64(3), i64(3))) == boolean(True)
    assert REG.call("!=", (i64(3), i64(4))) == boolean(True)
    assert REG.call("=", (string("a"), string("b"))) == boolean(False)
    assert REG.call("<", (i64(1), i64(2))) == boolean(True)
    assert REG.call(">=", (string("b"), string("a"))) == boolean(True)


def test_booleans_and_conversions():
    assert REG.call("and", (boolean(True), boolean(False))) == boolean(False)
    assert REG.call("not", (boolean(False),)) == boolean(True)
    assert REG.call("to-f64", (i64(3),)) == f64(3.0)
    assert REG.call("to-rational", (i64(3),)) == Value(RATIONAL, Fraction(3))
    assert REG.call("numer", (rational(3, 4),)) == i64(3)
    assert REG.call("denom", (rational(3, 4),)) == i64(4)


def test_set_primitives():
    empty = REG.call("set-empty", ())
    one = REG.call("set-insert", (empty, i64(1)))
    two = REG.call("set-insert", (one, i64(2)))
    assert REG.call("set-contains", (two, i64(1))) == boolean(True)
    assert REG.call("set-length", (two,)) == i64(2)
    assert REG.call("set-union", (one, two)) == two
    assert REG.call("set-diff", (two, one)) == REG.call("set-singleton", (i64(2),))


def test_result_sort_is_best_effort():
    assert REG.result_sort("+", (I64, I64)) == I64
    assert REG.result_sort("<", (I64, I64)) == BOOL
    assert REG.result_sort("no-such-prim", (I64,)) is None


def test_f64_nan_values_are_interchangeable():
    # Regression: two NaNs built from different float objects used to be
    # distinct dict keys (containers check identity before ==), so a NaN
    # stored under one key was unreachable through another.  f64 now
    # canonicalizes every NaN payload onto one shared object.
    a = f64(float("nan"))
    b = f64(float("inf") - float("inf"))
    assert a == b
    assert hash(a) == hash(b)
    assert {a: 1}[b] == 1
    assert a.data is b.data


def test_f64_negative_zero_collapses_to_positive_zero():
    assert f64(-0.0) == f64(0.0)
    import math

    assert math.copysign(1.0, f64(-0.0).data) == 1.0
    assert {f64(-0.0): "z"}[f64(0.0)] == "z"


def test_f64_nan_and_zero_round_trip_through_tables():
    from repro.core.terms import App, L
    from repro.engine import EGraph, Set
    from repro.engine.actions import run_actions

    eg = EGraph()
    eg.function("nan_at", ("f64",), "i64")
    eg.function("measure", ("i64",), "f64", merge=lambda old, new: new)
    # NaN as an output: looking the row up must return the stored value
    # even though NaN != NaN.
    run_actions(eg, [Set(App("measure", L(1)), L(f64(float("nan"))))], {})
    got = eg.lookup(App("measure", 1))
    assert got is not None and got.data != got.data
    # NaN and -0.0 as keys: a fresh NaN / +0.0 literal reaches the row.
    run_actions(eg, [Set(App("nan_at", L(f64(float("nan")))), L(7))], {})
    run_actions(eg, [Set(App("nan_at", L(f64(-0.0))), L(8))], {})
    assert eg.lookup(App("nan_at", f64(float("inf") - float("inf")))) == i64(7)
    assert eg.lookup(App("nan_at", f64(0.0))) == i64(8)
