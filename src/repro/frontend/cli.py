"""The ``python -m repro`` command line: run .egg programs.

Each file runs on a fresh engine, in argument order; output lines
(``run``/``check``/``extract``/``query-extract`` results) stream to
stdout.  The first failing file stops the run: its error is printed as
``file.egg:line:col: message`` on stderr and the exit status is 1.

``--load SNAPSHOT`` warm-starts every file's session from a saved
snapshot instead of an empty engine; ``--save SNAPSHOT`` writes the final
session state (after the last file) back out.  With no files at all,
``--load``/``--save`` together act as a snapshot round-trip/migration
pass.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .._version import package_version
from ..engine.egraph import SEARCH_STRATEGIES
from ..errors import ReproError
from ..serialize import SnapshotError
from .evaluator import Evaluator


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run egglog (.egg) programs on the repro engine.",
    )
    parser.add_argument(
        "files",
        nargs="*",
        metavar="FILE",
        help=".egg program files to run in order ('-' reads stdin)",
    )
    parser.add_argument(
        "-s",
        "--strategy",
        choices=sorted(SEARCH_STRATEGIES),
        default="indexed",
        help="join strategy for rule search (default: indexed)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print engine statistics, per-rule match counts, and phase "
        "timings after each file",
    )
    parser.add_argument(
        "--load",
        metavar="SNAPSHOT",
        help="warm-start each session from this repro.snapshot/v1 file",
    )
    parser.add_argument(
        "--save",
        metavar="SNAPSHOT",
        help="write the final session state to this snapshot file",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"repro {package_version()}",
    )
    return parser


def _print_stats(evaluator: Evaluator, name: str) -> None:
    """Engine size, per-rule match counts, and phase timings for one file."""
    stats = evaluator.egraph.stats()
    tables = ", ".join(
        f"{table}={size}" for table, size in sorted(stats["tables"].items())
    )
    print(
        f"stats: {name}: classes={stats['n_classes']} "
        f"unions={stats['n_unions']} tables: {tables or '(none)'}"
    )
    report = evaluator.report
    if report.iterations:
        print(
            f"stats: phases: search {report.search_time * 1000:.1f} ms / "
            f"apply {report.apply_time * 1000:.1f} ms / "
            f"rebuild {report.rebuild_time * 1000:.1f} ms "
            f"({report.iterations} iteration(s), "
            f"{report.delta_skips} delta search(es) skipped)"
        )
    if report.per_rule_matches:
        matches = ", ".join(
            f"{rule}={count}"
            for rule, count in sorted(report.per_rule_matches.items())
        )
        print(f"stats: rule matches: {matches}")


def _read(path: str) -> "tuple[str, str]":
    if path == "-":
        return sys.stdin.read(), "<stdin>"
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read(), path


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    if not args.files and not (args.load or args.save):
        parser.error("at least one FILE is required (or --load/--save)")
    evaluator: Optional[Evaluator] = None
    for path in args.files or [None]:
        evaluator = Evaluator(strategy=args.strategy, sink=print)
        if args.load:
            try:
                evaluator.load_snapshot(args.load)
            except (OSError, SnapshotError) as error:
                print(f"error: {args.load}: {error}", file=sys.stderr)
                return 1
        if path is None:
            break  # no files: --load/--save round trip only
        try:
            text, name = _read(path)
        except OSError as error:
            print(f"error: {path}: {error.strerror or error}", file=sys.stderr)
            return 1
        try:
            evaluator.run_program(text, name)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        if args.stats:
            _print_stats(evaluator, name)
    if args.save and evaluator is not None:
        try:
            evaluator.save_snapshot(args.save)
        except (OSError, SnapshotError) as error:
            print(f"error: {args.save}: {error}", file=sys.stderr)
            return 1
    return 0
