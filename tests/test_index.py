"""Incremental index maintenance invariants (core/index.py).

The load-bearing property: a registered :class:`TrieIndex` maintained
incrementally through arbitrary interleavings of insert / overwrite /
delete / union / rebuild / push / pop must be *indistinguishable* from a
trie built fresh from the table's rows — and its timestamp-bucket delta
views must equal fresh tries over exactly the rows at or after the
watermark.  Directed cases pin the mechanics; a hypothesis property drives
random op sequences; engine-level cases cover unions, rebuilding, and
snapshot restore through the real write paths.
"""

import pytest

from repro.core.database import Table
from repro.core.index import (
    AtomIndexSpec,
    TrieIndex,
    descend_constants,
    plan_query,
)
from repro.core.query import Query, QVar, TableAtom
from repro.core.schema import FunctionDecl
from repro.core.terms import App, V
from repro.core.values import UNIT_VALUE, i64
from repro.engine import EGraph, Rule
from repro.engine.actions import Expr


def key(*nums):
    return tuple(i64(n) for n in nums)


def fresh_trie(table, order, since=None):
    """Reference semantics: a trie built from scratch over the live rows."""
    reference = TrieIndex(order)
    reference.rebuild_from(
        (k + (row.value,), row.timestamp)
        for k, row in table.data.items()
        if since is None or row.timestamp >= since
    )
    return reference.root


def assert_index_matches(table, order, timestamps=(0, 1, 2, 3)):
    trie = table.trie(order)
    assert trie is not None
    assert trie.root == fresh_trie(table, order)
    for since in timestamps:
        assert trie.delta_root(since) == fresh_trie(table, order, since=since)


# ---------------------------------------------------------------------------
# Directed TrieIndex cases
# ---------------------------------------------------------------------------


def make_table(name="f", arity=2, out="i64"):
    return Table(FunctionDecl(name, tuple("i64" for _ in range(arity)), out))


def test_trie_insert_remove_prunes_empty_nodes():
    trie = TrieIndex((0, 1, 2))
    trie.insert(key(1, 2, 10), 0)
    trie.insert(key(1, 3, 10), 0)
    assert trie.root == {i64(1): {i64(2): {i64(10): True}, i64(3): {i64(10): True}}}
    trie.remove(key(1, 2, 10), 0)
    assert trie.root == {i64(1): {i64(3): {i64(10): True}}}
    trie.remove(key(1, 3, 10), 0)
    assert trie.root == {} and trie.buckets == {}


def test_trie_overwrite_moves_between_buckets():
    table = make_table()
    table.ensure_trie((0, 1, 2))
    table.put(key(1, 2), i64(10), 0)
    table.put(key(3, 4), i64(30), 1)
    # Overwrite re-stamps the row: it must leave bucket 0 and join bucket 2.
    table.put(key(1, 2), i64(20), 2)
    trie = table.trie((0, 1, 2))
    assert sorted(trie.buckets) == [1, 2]
    assert_index_matches(table, (0, 1, 2))
    assert trie.delta_root(2) == {i64(1): {i64(2): {i64(20): True}}}


def test_trie_delta_merges_multiple_buckets():
    table = make_table()
    table.ensure_trie((1, 0, 2))
    for ts, (a, b) in enumerate([(1, 2), (2, 3), (1, 3), (4, 2)]):
        table.put(key(a, b), UNIT_VALUE, ts)
    assert_index_matches(table, (1, 0, 2), timestamps=(0, 1, 2, 3, 4))


def test_ensure_trie_builds_from_existing_rows_and_is_idempotent():
    table = make_table()
    table.put(key(1, 2), UNIT_VALUE, 0)
    trie = table.ensure_trie((0, 1, 2))
    assert trie.root == fresh_trie(table, (0, 1, 2))
    assert table.ensure_trie((0, 1, 2)) is trie
    assert table.trie((1, 0, 2)) is None  # never builds implicitly


def test_restore_marks_tries_stale_and_they_self_heal():
    table = make_table()
    table.put(key(1, 2), UNIT_VALUE, 0)
    table.ensure_trie((0, 1, 2))
    snapshot = table.snapshot()
    table.put(key(3, 4), UNIT_VALUE, 1)
    table.remove(key(1, 2))
    table.restore(snapshot)
    trie = table.trie((0, 1, 2))
    assert not trie.stale
    assert trie.root == {i64(1): {i64(2): {UNIT_VALUE: True}}}
    assert_index_matches(table, (0, 1, 2))


def test_descend_constants_views():
    trie = TrieIndex((0, 1, 2))
    trie.insert(key(1, 2, 10), 0)
    node = descend_constants(trie.root, (i64(1),))
    assert node == {i64(2): {i64(10): True}}
    assert descend_constants(trie.root, (i64(9),)) is None
    # Fully-constant atoms yield a non-empty marker, or None when absent.
    assert descend_constants(trie.root, (i64(1), i64(2), i64(10)))
    assert descend_constants(trie.root, (i64(1), i64(2), i64(99))) is None


# ---------------------------------------------------------------------------
# Query planning
# ---------------------------------------------------------------------------


def test_plan_query_is_structural_and_deterministic():
    x, y, z = QVar("x"), QVar("y"), QVar("z")
    query = Query(
        atoms=[
            TableAtom("path", (x, y), QVar("o1")),
            TableAtom("edge", (y, z), QVar("o2")),
        ]
    )
    plan = plan_query(query)
    # y occurs twice -> first; ties broken by first occurrence.
    assert plan.var_order == ("y", "x", "o1", "z", "o2")
    assert plan.specs[0] == AtomIndexSpec(order=(1, 0, 2), const_values=(), var_names=("y", "x", "o1"))
    assert plan.specs[1] == AtomIndexSpec(order=(0, 1, 2), const_values=(), var_names=("y", "z", "o2"))
    assert plan_query(query) == plan  # same structure, same plan


def test_plan_atom_constants_first_and_repeated_vars_fall_back():
    x = QVar("x")
    query = Query(atoms=[TableAtom("edge", (i64(7), x), QVar("o"))])
    plan = plan_query(query)
    assert plan.specs[0].order == (0, 1, 2)
    assert plan.specs[0].const_values == (i64(7),)
    # Repeated variable: no index spec, the ad-hoc path handles equality.
    loop = Query(atoms=[TableAtom("edge", (x, x), QVar("o"))])
    assert plan_query(loop).specs[0] is None


# ---------------------------------------------------------------------------
# Engine-level invariants: the real write paths
# ---------------------------------------------------------------------------


def tc_engine():
    egraph = EGraph(strategy="generic")
    egraph.relation("edge", ("i64", "i64"))
    egraph.relation("path", ("i64", "i64"))
    egraph.add_rules(
        Rule(
            facts=[App("edge", V("x"), V("y"))],
            actions=[Expr(App("path", V("x"), V("y")))],
            name="base",
        ),
        Rule(
            facts=[App("path", V("x"), V("y")), App("edge", V("y"), V("z"))],
            actions=[Expr(App("path", V("x"), V("z")))],
            name="step",
        ),
    )
    return egraph


def assert_all_indexes_match(egraph):
    for table in egraph.tables.values():
        for order in table.trie_orders():
            assert_index_matches(
                table, order, timestamps=range(egraph.timestamp + 2)
            )


def test_rule_registration_creates_planned_orderings():
    egraph = tc_engine()
    assert (0, 1, 2) in egraph.tables["edge"].trie_orders()
    assert (1, 0, 2) in egraph.tables["path"].trie_orders()


def test_indexes_survive_run_union_rebuild_pushpop_interleaving():
    egraph = tc_engine()
    for a, b in [(1, 2), (2, 3), (3, 4)]:
        egraph.add(App("edge", a, b))
    assert_all_indexes_match(egraph)
    egraph.run(10)
    assert_all_indexes_match(egraph)

    egraph.push()
    egraph.add(App("edge", 4, 5))
    egraph.run(10)
    assert_all_indexes_match(egraph)
    egraph.pop()
    # Restored state: stale tries must self-heal to the pre-push rows.
    assert_all_indexes_match(egraph)
    assert len(egraph.tables["edge"]) == 3

    egraph.run(10)
    assert_all_indexes_match(egraph)


def test_indexes_follow_canonicalization_during_rebuild():
    egraph = EGraph(strategy="generic")
    egraph.declare_sort("V")
    egraph.constructor("Leaf", ("i64",), "V")
    egraph.constructor("F", ("V",), "V")
    egraph.add_rule(
        Rule(facts=[App("F", V("x"))], actions=[Expr(App("F", App("F", V("x"))))], name="noop")
    )
    a = egraph.add(App("F", App("Leaf", 1)))
    b = egraph.add(App("F", App("Leaf", 2)))
    egraph.run(1)
    assert_all_indexes_match(egraph)
    # Union the leaves: rebuild rewrites F-rows to canonical ids; the
    # maintained tries must track every remove/re-insert it performs.
    egraph.union(App("Leaf", 1), App("Leaf", 2))
    egraph.rebuild()
    assert egraph.canonicalize(a) == egraph.canonicalize(b)
    assert_all_indexes_match(egraph)
    egraph.run(2)
    assert_all_indexes_match(egraph)


def test_generic_and_adhoc_agree_after_runs():
    results = {}
    for strategy in ("generic", "generic-adhoc", "indexed"):
        egraph = EGraph(strategy=strategy)
        egraph.relation("edge", ("i64", "i64"))
        egraph.relation("path", ("i64", "i64"))
        egraph.add_rules(
            Rule(
                facts=[App("edge", V("x"), V("y"))],
                actions=[Expr(App("path", V("x"), V("y")))],
                name="base",
            ),
            Rule(
                facts=[App("path", V("x"), V("y")), App("edge", V("y"), V("z"))],
                actions=[Expr(App("path", V("x"), V("z")))],
                name="step",
            ),
        )
        for a, b in [(1, 2), (2, 3), (3, 1), (3, 4)]:
            egraph.add(App("edge", a, b))
        egraph.run(12)
        results[strategy] = sorted(
            (k[0].data, k[1].data) for k, _v in egraph.table_rows("path")
        )
    assert results["generic"] == results["generic-adhoc"] == results["indexed"]


# ---------------------------------------------------------------------------
# Hypothesis: random op sequences through the Table API
# ---------------------------------------------------------------------------

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

ORDERS = [(0, 1, 2), (1, 0, 2), (2, 0, 1)]


@st.composite
def op_sequences(draw):
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["put", "remove", "snapshot", "restore"]),
                st.integers(0, 3),  # first arg
                st.integers(0, 3),  # second arg
                st.integers(0, 4),  # value / timestamp salt
            ),
            min_size=1,
            max_size=25,
        )
    )
    return ops


@settings(max_examples=80, deadline=None)
@given(ops=op_sequences())
def test_random_op_interleavings_keep_indexes_exact(ops):
    table = Table(FunctionDecl("f", ("i64", "i64"), "i64"))
    for order in ORDERS:
        table.ensure_trie(order)
    hash_index = table.index((0,))
    saved = None
    timestamp = 0
    for op, a, b, salt in ops:
        if op == "put":
            timestamp += salt % 2  # non-decreasing, sometimes repeating
            table.put(key(a, b), i64(salt), timestamp)
        elif op == "remove":
            table.remove(key(a, b))
        elif op == "snapshot":
            saved = table.snapshot()
        elif op == "restore" and saved is not None:
            table.restore(saved)
            hash_index = table.index((0,))  # dropped by restore; rebuild
    for order in ORDERS:
        assert_index_matches(table, order, timestamps=range(timestamp + 2))
    # The hash index must agree with a from-scratch grouping too.
    expected = {}
    for k, _row in table.data.items():
        expected.setdefault((k[0],), set()).add(k)
    assert {proj: set(keys) for proj, keys in hash_index.items()} == expected
