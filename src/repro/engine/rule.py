"""Rules: queries paired with actions, plus rewrite/birewrite sugar.

A rule (Section 3.1 of the paper) is ``facts => actions``: when the
conjunction of facts matches, the actions run under the match's
substitution.  Facts are written as *terms* (``repro.core.terms``) and
flattened here into the conjunctive queries the search engine executes
(``repro.core.query``) — each nested application gets a fresh variable for
its output column, which is exactly the term-flattening the paper describes
when lowering patterns to relational queries (Section 5.1, relational
e-matching).

``rewrite(lhs, rhs)`` is the equality-saturation sugar of Section 3.4: it
matches ``lhs``, binds its e-class to a root variable, and unions that class
with ``rhs``.  ``birewrite`` adds the symmetric rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union as TyUnion

from ..core.query import Arg, PrimAtom, Query, QVar, TableAtom
from ..core.terms import Term, TermApp, TermLit, TermLike, TermVar, as_term
from .actions import Action, Union
from .errors import EGraphError

DEFAULT_RULESET = ""

# The reserved variable a rewrite binds the matched e-class to.  The "$"
# prefix keeps generated names out of the user's namespace.
REWRITE_ROOT = "$root"


@dataclass(frozen=True)
class EqFact:
    """A body fact ``lhs = rhs`` equating two patterns (Section 3.1)."""

    lhs: Term
    rhs: Term


Fact = TyUnion[Term, EqFact]


def eq(lhs: TermLike, rhs: TermLike) -> EqFact:
    """Build an equality fact; plain Python scalars are lifted to literals."""
    return EqFact(as_term(lhs), as_term(rhs))


@dataclass
class Rule:
    """An uncompiled rule: term-level facts and actions.

    ``EGraph.add_rule`` compiles this into a :class:`CompiledRule` by
    flattening the facts into a conjunctive query (it needs the engine's
    declarations to tell table functions from primitives).
    """

    facts: Sequence[Fact]
    actions: Sequence[Action]
    name: Optional[str] = None
    ruleset: str = DEFAULT_RULESET


@dataclass
class CompiledRule:
    """A rule lowered to a flat query, ready for the scheduler.

    ``last_run`` is the semi-naïve watermark (Section 4.3): the next search
    only needs matches involving at least one row with
    ``timestamp >= last_run``.
    """

    name: str
    query: Query
    actions: Tuple[Action, ...]
    ruleset: str = DEFAULT_RULESET
    last_run: int = 0
    #: Compiled executors keyed by strategy name (``repro.engine.program``).
    #: Owned by the engine: entries are pinned to its compile epoch and
    #: rebuilt on mismatch; a replaced rule starts with an empty cache.
    exec_cache: Dict[str, Any] = field(
        default_factory=dict, repr=False, compare=False
    )


class _Gensym:
    """Fresh query-variable supply for flattening ("$0", "$1", ...)."""

    def __init__(self) -> None:
        self._counter = 0

    def __call__(self) -> QVar:
        var = QVar(f"${self._counter}")
        self._counter += 1
        return var


def _flatten_term(
    term: Term,
    query: Query,
    is_table: Callable[[str], bool],
    gensym: _Gensym,
    out: Optional[Arg] = None,
) -> Arg:
    """Flatten ``term`` into atoms appended to ``query``; return its value arg.

    If ``out`` is given, the term's value is constrained to equal it: an
    application uses it as the output column, while a variable or literal
    emits an equality guard.
    """
    if isinstance(term, TermVar):
        arg: Arg = QVar(term.name)
        if out is not None and out != arg:
            query.prims.append(PrimAtom("value-eq", (arg, out), None))
        return out if out is not None else arg
    if isinstance(term, TermLit):
        if out is not None and out != term.value:
            query.prims.append(PrimAtom("value-eq", (term.value, out), None))
        return out if out is not None else term.value
    if isinstance(term, TermApp):
        args = tuple(_flatten_term(a, query, is_table, gensym) for a in term.args)
        result = out if out is not None else gensym()
        if is_table(term.func):
            query.atoms.append(TableAtom(term.func, args, result))
        else:
            query.prims.append(PrimAtom(term.func, args, result))
        return result
    raise EGraphError(f"cannot flatten {term!r} into a query")


def _flatten_fact(
    fact: Fact, query: Query, is_table: Callable[[str], bool], gensym: _Gensym
) -> None:
    if isinstance(fact, EqFact):
        lhs, rhs = fact.lhs, fact.rhs
        # Flatten the simpler side into an argument first, then constrain the
        # other side's value to it.
        if isinstance(lhs, (TermVar, TermLit)):
            anchor = _flatten_term(lhs, query, is_table, gensym)
            _flatten_term(rhs, query, is_table, gensym, out=anchor)
        elif isinstance(rhs, (TermVar, TermLit)):
            anchor = _flatten_term(rhs, query, is_table, gensym)
            _flatten_term(lhs, query, is_table, gensym, out=anchor)
        else:
            anchor = _flatten_term(lhs, query, is_table, gensym)
            _flatten_term(rhs, query, is_table, gensym, out=anchor)
        return
    if isinstance(fact, TermApp):
        if is_table(fact.func):
            _flatten_term(fact, query, is_table, gensym)
        else:
            # A top-level primitive fact is a guard: it must evaluate to true.
            args = tuple(_flatten_term(a, query, is_table, gensym) for a in fact.args)
            query.prims.append(PrimAtom(fact.func, args, None))
        return
    raise EGraphError(f"a fact must be an application or an equality, got {fact!r}")


def compile_facts(
    facts: Sequence[Fact], is_table: Callable[[str], bool]
) -> Query:
    """Flatten a sequence of facts into one conjunctive query."""
    query = Query()
    gensym = _Gensym()
    for fact in facts:
        _flatten_fact(fact, query, is_table, gensym)
    return query


def compile_rule(
    rule: Rule, is_table: Callable[[str], bool], default_name: str
) -> CompiledRule:
    """Lower a :class:`Rule` into a :class:`CompiledRule`."""
    query = compile_facts(list(rule.facts), is_table)
    return CompiledRule(
        name=rule.name or default_name,
        query=query,
        actions=tuple(rule.actions),
        ruleset=rule.ruleset,
    )


# ---------------------------------------------------------------------------
# Rewrite sugar (Section 3.4)
# ---------------------------------------------------------------------------


def rewrite(
    lhs: TermLike,
    rhs: TermLike,
    *,
    conditions: Sequence[Fact] = (),
    name: Optional[str] = None,
    ruleset: str = DEFAULT_RULESET,
) -> Rule:
    """``lhs => rhs``: wherever ``lhs`` matches, union its e-class with ``rhs``.

    ``conditions`` are extra body facts (guards) that must hold for the
    rewrite to fire.  The matched class is bound to a reserved root variable
    so the action can refer to it.
    """
    lhs_term, rhs_term = as_term(lhs), as_term(rhs)
    if not isinstance(lhs_term, TermApp):
        raise EGraphError(f"rewrite left-hand side must be an application, got {lhs_term!r}")
    root = TermVar(REWRITE_ROOT)
    facts: List[Fact] = [EqFact(root, lhs_term)]
    facts.extend(conditions)
    return Rule(
        facts=facts,
        actions=[Union(root, rhs_term)],
        name=name or f"rewrite {lhs_term} => {rhs_term}",
        ruleset=ruleset,
    )


def birewrite(
    lhs: TermLike,
    rhs: TermLike,
    *,
    conditions: Sequence[Fact] = (),
    name: Optional[str] = None,
    ruleset: str = DEFAULT_RULESET,
) -> Tuple[Rule, Rule]:
    """Bidirectional rewrite: both ``lhs => rhs`` and ``rhs => lhs``."""
    base = name or f"birewrite {as_term(lhs)} <=> {as_term(rhs)}"
    forward = rewrite(lhs, rhs, conditions=conditions, name=f"{base} (fwd)", ruleset=ruleset)
    backward = rewrite(rhs, lhs, conditions=conditions, name=f"{base} (bwd)", ruleset=ruleset)
    return forward, backward
