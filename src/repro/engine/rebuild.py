"""Rebuilding: restore congruence closure after unions (Section 4).

Unions performed by actions leave the database *incongruent*: a row
``f(a) -> x`` may mention an id ``a`` that is no longer the canonical
representative of its class, and two keys that canonicalize to the same
tuple may disagree on their outputs.  Rebuilding repairs both to fixpoint:

1. Take the union-find's dirty set (:meth:`UnionFind.take_dirty` — the ids
   made non-canonical since the last rebuild).  If it is empty, the database
   is already congruent and rebuilding is a no-op.
2. For every table, re-canonicalize the rows that mention a stale id.  A
   re-canonicalized key may collide with an existing row; the collision is
   resolved with the function's declared merge expression (Section 3.2) via
   the same :func:`~repro.engine.actions.set_function_value` used by ``set``
   actions.  For eq-sorted outputs the default merge is ``union``, which is
   exactly congruence: ``a = b  ==>  f(a) = f(b)``.
3. Merges performed in step 2 dirty new classes, so repeat until the dirty
   set stays empty.

Repaired rows are stamped with the current timestamp, so semi-naïve
evaluation (Section 4.3) revisits them — the paper's observation that
rebuilding and rule application interleave soundly.

Because insertions always store canonical values, a row can only become
stale through a union, and every union records its displaced representative
in the dirty set.  Each round therefore repairs exactly the rows that
mention a dirty id, found with one hash-index probe per (dirty id,
eq-sorted column).  The hash indexes (and any registered trie indexes —
see ``repro.core.index``) are maintained incrementally by the table on
every put/remove, so a repair round costs O(|dirty| + |repaired rows|),
not O(|table|) per changed table.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Set, Tuple

from ..core.database import Table
from ..core.proofs import congruence_justification
from ..core.values import Value
from .actions import set_function_value

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .egraph import EGraph

Key = Tuple[Value, ...]


def rebuild(egraph: "EGraph") -> int:
    """Repair congruence closure to fixpoint; return the number of rounds.

    Idempotent: returns 0 immediately when no unions happened since the last
    rebuild (the union-find has no dirty classes).
    """
    uf = egraph.uf
    rounds = 0
    while uf.has_dirty:
        # Consume the dirty set; merges during this round repopulate it and
        # trigger another round.
        dirty = uf.take_dirty()
        rounds += 1
        for table in egraph.tables.values():
            _repair_table(egraph, table, dirty)
    return rounds


def _repair_table(egraph: "EGraph", table: Table, dirty: Set[int]) -> int:
    """Re-canonicalize rows of one table touching ``dirty`` ids.

    Rows always store ids that were canonical at insert time, so a stale
    column value is *exactly* a dirty id — one index probe per (dirty id,
    eq-sorted column) finds every affected row.  Returns the repair count.
    """
    decl = table.decl
    eq_cols = egraph.eq_columns(decl)
    if not eq_cols:
        return 0  # Purely primitive table: unions cannot touch it.

    stale: List[Key] = []
    seen: Set[Key] = set()
    for col, sort_name in eq_cols:
        index = table.index((col,))
        for ident in dirty:
            for key in index.get((Value(sort_name, ident),), ()):
                if key not in seen:
                    seen.add(key)
                    stale.append(key)

    if not stale:
        return 0  # No row of this table mentions a dirty id.

    # The index probes above are done for this round, and the writes below
    # only read rows (never indexes), so the remove/re-insert churn of the
    # repair loop batches its index maintenance: a key whose canonical form
    # is itself costs one net trie/index update instead of two, and keys
    # merged several times in one round settle once.  Tiny rounds (a
    # handful of stale keys, the common shape under one-union-at-a-time
    # rebuilds) skip the batch — its flush setup would cost more than the
    # direct per-put maintenance it replaces.
    repaired = 0
    canonicalize = egraph.canonicalize
    use_batch = len(stale) > 8
    if use_batch:
        table.begin_batch()
    # Output collisions resolved below are congruence steps on this function
    # (``a = b ==> f(a) = f(b)``); scope the ambient union justification so
    # the proof forest records them as such.
    prev_reason = egraph.set_union_reason(congruence_justification(decl.name))
    try:
        for key in stale:
            row = table.get_row(key)
            if row is None:
                continue  # Merged away while repairing an earlier sibling.
            canon_key = tuple([canonicalize(v) for v in key])
            canon_value = canonicalize(row.value)
            table.remove(key)
            set_function_value(egraph, decl, canon_key, canon_value)
            repaired += 1
    finally:
        egraph.set_union_reason(prev_reason)
        if use_batch:
            table.end_batch()
    return repaired
