"""Property-based snapshot tests: arbitrary sessions must round-trip.

Hypothesis drives a small arithmetic engine through arbitrary
interleavings of edits (add / union / run), scope operations
(push / pop), and saturation runs, then demands the two snapshot
invariants hold at whatever state the session landed in:

* ``save -> load -> save`` is byte-identical — the format captures all
  serialized state, deterministically;
* the loaded engine is observationally equivalent under *every* join
  strategy — same equalities, same extractions, same explanation lengths
  (snapshots are strategy-portable; derived indexes are rebuilt, not
  loaded).
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core.terms import App, V  # noqa: E402
from repro.engine import EGraph  # noqa: E402
from repro.serialize import dumps_document, engine_document, engine_from_document  # noqa: E402

STRATEGIES = ["indexed", "generic", "generic-adhoc"]

# One step of a session: (op, payload). Numbers index into a small term
# pool so unions/adds collide often enough to exercise congruence.
steps = st.lists(
    st.one_of(
        st.tuples(st.just("add"), st.integers(0, 5), st.integers(0, 5)),
        st.tuples(st.just("union"), st.integers(0, 5), st.integers(0, 5)),
        st.tuples(st.just("run"), st.integers(1, 3)),
        st.tuples(st.just("push")),
        st.tuples(st.just("pop")),
    ),
    max_size=14,
)


def _term(a: int, b: int):
    if b == 0:
        return App("Num", a)
    return App("Add", App("Num", a), App("Num", b))


def _session(operations) -> EGraph:
    engine = EGraph()
    engine.declare_sort("Math")
    engine.constructor("Num", ("i64",), "Math")
    engine.constructor("Add", ("Math", "Math"), "Math")
    engine.add_rewrite(App("Add", App("Num", 0), V("x")), V("x"), name="add-zero")
    engine.add_rewrite(
        App("Add", V("x"), V("y")), App("Add", V("y"), V("x")), name="commute"
    )
    depth = 0
    for operation in operations:
        if operation[0] == "add":
            engine.add(_term(operation[1], operation[2]))
        elif operation[0] == "union":
            engine.union(_term(operation[1], 0), _term(operation[2], 0))
        elif operation[0] == "run":
            engine.run(operation[1])
        elif operation[0] == "push":
            engine.push()
            depth += 1
        elif operation[0] == "pop" and depth > 0:
            engine.pop()
            depth -= 1
    engine.rebuild()
    engine._ensure_canonical()
    return engine


@settings(max_examples=25, deadline=None)
@given(operations=steps)
def test_arbitrary_sessions_roundtrip_byte_identical(operations):
    engine = _session(operations)
    first = dumps_document(engine_document(engine))
    loaded = engine_from_document(engine_document(engine))
    second = dumps_document(engine_document(loaded))
    assert first == second


@settings(max_examples=25, deadline=None)
@given(operations=steps)
def test_loaded_engine_observationally_equivalent(operations):
    engine = _session(operations)
    document = engine_document(engine)
    probes = [_term(a, b) for a in range(3) for b in range(2)]
    for strategy in STRATEGIES:
        loaded = engine_from_document(document, strategy=strategy)
        for lhs in probes:
            assert (loaded.lookup(lhs) is None) == (engine.lookup(lhs) is None)
            for rhs in probes:
                if engine.lookup(lhs) is None or engine.lookup(rhs) is None:
                    continue
                equal = engine.are_equal(lhs, rhs)
                assert loaded.are_equal(lhs, rhs) == equal
                if equal:
                    assert loaded.extract(lhs) == engine.extract(lhs)
                    assert len(loaded.explain(lhs, rhs)) == len(engine.explain(lhs, rhs))
