"""The ``repro.snapshot/v1`` document format: whole-engine save and load.

A snapshot is a single JSON document capturing *everything* an
:class:`~repro.engine.egraph.EGraph` observably is:

* declared sorts and the registered literal-coercion pairs,
* function declarations with merge/default/cost/provenance,
* every table's rows with their semi-naïve timestamps, in insertion order
  (extraction tie-breaking and match enumeration depend on row order, so
  the snapshot preserves it),
* the union-find — parents, sizes, dirty set, union count — plus the proof
  forest and the e-node log, so ``explain`` keeps working after a reload,
* compiled rules (flat queries + actions) with their semi-naïve
  watermarks, and rulesets in declaration order,
* the scheduler epoch: current timestamp and update counter.

Derived state — hash indexes, column tries, compiled executors, merge-fn
caches, the push/pop stack — is deliberately *not* serialized; the engine
rebuilds all of it lazily on first use, so a loaded engine is exactly as
warm as the database itself.

Document layout::

    {
      "schema":   "repro.snapshot/v1",
      "digest":   "sha256:<hex of canonical meta/state/surfaces/replay>",
      "meta":     {"generator": ..., "strategy": ..., "proofs": ...},
      "state":    {...engine state as above...},
      "surfaces": {...optional, owned by frontends (egg globals, dsl handles)...},
      "replay":   {...optional recorded schedule + expected facts...}
    }

Loaders ignore ``surfaces`` sections they do not understand and tolerate
additive fields; see ``docs/PERSISTENCE.md`` for the compatibility policy.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, List, Optional, Tuple

from .._version import package_version
from ..core.schema import MERGE_ERROR, MERGE_UNION, FunctionDecl
from ..core.terms import Term
from ..core.values import (
    BUILTIN_SORTS,
    Value,
    from_python,
    literal_coercion_pairs,
)
from ..engine.egraph import EGraph as EngineEGraph
from ..engine.errors import EGraphError
from ..engine.rule import DEFAULT_RULESET, CompiledRule
from .encode import (
    Json,
    decode_action,
    decode_justification,
    decode_query,
    decode_term,
    decode_value,
    encode_action,
    encode_justification,
    encode_query,
    encode_term,
    encode_value,
    require,
)
from .errors import SnapshotError, SnapshotFormatError

#: The current snapshot schema identifier.  Bumped only on breaking layout
#: changes; additive changes keep the identifier (see docs/PERSISTENCE.md).
SCHEMA = "repro.snapshot/v1"

#: Document sections covered by the integrity digest, in canonical order.
_DIGESTED = ("meta", "state", "surfaces", "replay")


# ---------------------------------------------------------------------------
# Digest / io
# ---------------------------------------------------------------------------


def compute_digest(document: Dict[str, Any]) -> str:
    """The integrity digest over a document's digested sections.

    The digest hashes the *canonical compact* JSON rendering (sorted keys,
    no whitespace), so it is independent of on-disk pretty-printing.
    """
    payload = {key: document[key] for key in _DIGESTED if key in document}
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return "sha256:" + hashlib.sha256(blob.encode("utf-8")).hexdigest()


def dumps_document(document: Dict[str, Any]) -> str:
    """Render a snapshot document to its canonical on-disk text."""
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def write_snapshot(document: Dict[str, Any], path: str) -> None:
    """Write a snapshot document to ``path``, atomically.

    The document goes to a sibling temp file first (written, flushed, and
    fsynced), then lands via ``os.replace`` — so a crash at any instant
    leaves either the old complete file or the new complete file, never a
    truncated hybrid.  A stale temp file from an earlier crash is simply
    overwritten by the next save; readers never look at it.
    """
    from ..testing.faults import trip

    text = dumps_document(document)
    tmp = path + ".tmp"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            # Two writes so the "disk died mid-write" injection point fires
            # with a genuinely partial document on disk.
            half = len(text) // 2
            handle.write(text[:half])
            trip("snapshot.write", tag=path)
            handle.write(text[half:])
            handle.flush()
            os.fsync(handle.fileno())
        trip("snapshot.rename", tag=path)
        os.replace(tmp, path)
    except BaseException:
        # Best-effort cleanup; an ``exit``-action fault (or a real crash)
        # skips this, which is exactly the stale-temp case handled above.
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def read_document(path: str) -> Dict[str, Any]:
    """Read and validate a snapshot document from ``path``.

    Raises :class:`SnapshotFormatError` for malformed JSON, an unknown
    schema, or a failed integrity digest.  File-system errors (missing
    file, permissions) propagate as ``OSError`` for the caller to locate.
    """
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise SnapshotFormatError(f"{path}: not valid JSON ({error})") from None
    if not isinstance(document, dict):
        raise SnapshotFormatError(f"{path}: snapshot must be a JSON object")
    validate_document(document, where=path)
    return document


def validate_document(document: Dict[str, Any], *, where: str = "snapshot") -> None:
    """Check the schema identifier and integrity digest of a document."""
    schema = document.get("schema")
    if schema != SCHEMA:
        raise SnapshotFormatError(
            f"{where}: unknown snapshot schema {schema!r} (this build reads {SCHEMA!r})"
        )
    stored = document.get("digest")
    actual = compute_digest(document)
    if stored != actual:
        raise SnapshotFormatError(
            f"{where}: integrity digest mismatch (stored {stored!r}, "
            f"computed {actual!r}) — the snapshot was corrupted or hand-edited"
        )


# ---------------------------------------------------------------------------
# Merge / default codecs (need engine context, hence not in encode.py)
# ---------------------------------------------------------------------------


def _encode_merge(decl: FunctionDecl) -> Json:
    merge = decl.merge
    if merge == MERGE_UNION:
        return {"kind": "union"}
    if merge == MERGE_ERROR:
        return {"kind": "error"}
    if callable(merge):
        prim = getattr(merge, "__repro_prim__", None)
        if prim is not None:
            return {"kind": "primitive", "name": prim}
        term = getattr(merge, "__repro_term__", None)
        if isinstance(term, Term):
            return {"kind": "term", "term": encode_term(term)}
        where = f" (declared at {decl.decl_site})" if decl.decl_site else ""
        raise SnapshotError(
            f"cannot serialize function {decl.name!r}{where}: its merge is an "
            f"arbitrary Python callable; use a merge primitive name or a "
            f"merge expression instead"
        )
    raise SnapshotError(
        f"cannot serialize function {decl.name!r}: unnormalized merge {merge!r}"
    )


def _decode_merge(engine: EngineEGraph, name: str, obj: Json) -> object:
    if not isinstance(obj, dict) or "kind" not in obj:
        raise SnapshotFormatError(f"function {name!r}: malformed merge {obj!r}")
    kind = obj["kind"]
    if kind == "union":
        return MERGE_UNION
    if kind == "error":
        return MERGE_ERROR
    if kind == "primitive":
        prim = obj.get("name")
        if not isinstance(prim, str):
            raise SnapshotFormatError(f"function {name!r}: malformed merge {obj!r}")
        if prim not in engine.registry:
            raise SnapshotError(
                f"function {name!r} needs merge primitive {prim!r}, which is "
                f"not registered in this engine"
            )
        return prim  # engine.function re-normalizes (and re-tags) it
    if kind == "term":
        term = decode_term(obj.get("term"))
        return merge_from_term(engine, term)
    raise SnapshotFormatError(f"function {name!r}: unknown merge kind {kind!r}")


def merge_from_term(engine: EngineEGraph, term: Term) -> object:
    """Build a merge callable evaluating ``term`` over ``old``/``new``.

    This mirrors the .egg evaluator's merge lowering; the term is kept on
    the closure so a later save round-trips byte-identically.
    """

    def merge_fn(old: Value, new: Value) -> Optional[Value]:
        return engine.eval_term(term, {"old": old, "new": new})

    merge_fn.__repro_term__ = term  # type: ignore[attr-defined]
    return merge_fn


def _encode_default(decl: FunctionDecl) -> Json:
    default = decl.default
    if default is None:
        return None
    if callable(default):
        where = f" (declared at {decl.decl_site})" if decl.decl_site else ""
        raise SnapshotError(
            f"cannot serialize function {decl.name!r}{where}: its default is a "
            f"Python callable; use a constant default instead"
        )
    if not isinstance(default, Value):
        default = from_python(default)
    return {"value": encode_value(default)}


def _decode_default(name: str, obj: Json) -> Optional[Value]:
    if obj is None:
        return None
    if not isinstance(obj, dict) or "value" not in obj:
        raise SnapshotFormatError(f"function {name!r}: malformed default {obj!r}")
    return decode_value(obj["value"])


# ---------------------------------------------------------------------------
# Engine -> document
# ---------------------------------------------------------------------------


def engine_document(
    engine: EngineEGraph,
    *,
    surfaces: Optional[Dict[str, Any]] = None,
    replay: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Capture ``engine`` as a complete ``repro.snapshot/v1`` document.

    ``surfaces`` carries frontend-owned state (.egg globals, DSL handle
    metadata); ``replay`` carries a recorded schedule plus expected facts
    for the corpus/warm-start gates.  Both are optional and opaque to the
    engine loader.
    """
    uf_parent, uf_size, uf_dirty, uf_unions, forest = engine.uf.snapshot()
    state: Dict[str, Any] = {
        "sorts": [
            {"name": name, "eq": sort.is_eq_sort}
            for name, sort in engine.sorts.items()
            if name not in BUILTIN_SORTS
        ],
        "coercions": [[src, dst] for src, dst in literal_coercion_pairs()],
        "functions": [
            {
                "name": decl.name,
                "args": list(decl.arg_sorts),
                "out": decl.out_sort,
                "merge": _encode_merge(decl),
                "default": _encode_default(decl),
                "cost": decl.cost,
                "unextractable": decl.unextractable,
                "constructor": decl.is_datatype_constructor,
                "decl_site": decl.decl_site,
            }
            for decl in engine.decls.values()
        ],
        "tables": [
            {
                "name": name,
                "rows": [
                    [
                        [encode_value(col) for col in key],
                        encode_value(row.value),
                        row.timestamp,
                    ]
                    for key, row in table.data.items()
                ],
            }
            for name, table in engine.tables.items()
        ],
        "unionfind": {
            "parent": uf_parent,
            "size": uf_size,
            "dirty": sorted(uf_dirty),
            "n_unions": uf_unions,
        },
        "proofs": _encode_proofs(engine, forest),
        "rules": [
            {
                "name": rule.name,
                "ruleset": rule.ruleset,
                "last_run": rule.last_run,
                "query": encode_query(rule.query),
                "actions": [encode_action(action) for action in rule.actions],
            }
            for rule in engine.rules.values()
        ],
        "rulesets": [
            {"name": name, "rules": list(rules)}
            for name, rules in engine.rulesets.items()
        ],
        "timestamp": engine.timestamp,
        "updates": engine.updates,
    }
    document: Dict[str, Any] = {
        "schema": SCHEMA,
        "meta": {
            "generator": f"egglog-repro {package_version()}",
            "strategy": engine.strategy,
            "proofs": engine.uf.proofs is not None,
        },
        "state": state,
    }
    if surfaces is not None:
        document["surfaces"] = surfaces
    if replay is not None:
        document["replay"] = replay
    document["digest"] = compute_digest(document)
    return document


def _encode_proofs(engine: EngineEGraph, forest: Optional[tuple]) -> Json:
    if forest is None:
        return None
    parent, edges = forest
    log = engine._proof_log or {}
    return {
        "forest": {
            "parent": list(parent),
            "edges": [encode_justification(edge) for edge in edges],
        },
        "log": [
            [func, [encode_value(col) for col in key], encode_value(value)]
            for (func, key), value in log.items()
        ],
    }


# ---------------------------------------------------------------------------
# Document -> engine
# ---------------------------------------------------------------------------


def engine_from_document(
    document: Dict[str, Any],
    *,
    strategy: Optional[str] = None,
    registry: Any = None,
) -> EngineEGraph:
    """Reconstruct a fresh engine from a validated snapshot document.

    ``strategy`` overrides the recorded join strategy (snapshots are
    strategy-portable: only ``meta`` records it, no derived index state is
    stored).  ``registry`` supplies a custom primitive registry; the
    snapshot's functions and rules are validated against it.
    """
    meta = require(document, "meta", dict, "document")
    state = require(document, "state", dict, "document")
    proofs = bool(meta.get("proofs", True))
    recorded_strategy = meta.get("strategy", "indexed")
    if not isinstance(recorded_strategy, str):
        raise SnapshotFormatError(f"meta.strategy must be a string, got {recorded_strategy!r}")
    try:
        engine = EngineEGraph(
            strategy=strategy if strategy is not None else recorded_strategy,
            registry=registry,
            proofs=proofs,
        )
    except EGraphError as error:
        raise SnapshotFormatError(str(error)) from None

    _load_coercions(state)
    _load_sorts(engine, state)
    _load_functions(engine, state)
    _load_unionfind(engine, state, proofs)
    _load_tables(engine, state)
    _load_proof_log(engine, state, proofs)
    _load_rules(engine, state)

    engine.timestamp = require(state, "timestamp", int, "state")
    engine._updates = require(state, "updates", int, "state")
    return engine


def _load_coercions(state: Dict[str, Any]) -> None:
    registered = set(literal_coercion_pairs())
    for pair in require(state, "coercions", list, "state"):
        if not isinstance(pair, list) or len(pair) != 2:
            raise SnapshotFormatError(f"malformed coercion pair {pair!r}")
        if (pair[0], pair[1]) not in registered:
            raise SnapshotError(
                f"snapshot needs literal coercion {pair[0]!r} -> {pair[1]!r}, "
                f"which is not registered in this process; import the module "
                f"that registers it before loading"
            )


def _load_sorts(engine: EngineEGraph, state: Dict[str, Any]) -> None:
    for entry in require(state, "sorts", list, "state"):
        name = require(entry, "name", str, "sort")
        if not entry.get("eq", False):
            raise SnapshotFormatError(
                f"sort {name!r}: only eq-sorts are serializable in {SCHEMA}"
            )
        try:
            engine.declare_sort(name)
        except EGraphError as error:
            raise SnapshotFormatError(str(error)) from None


def _load_functions(engine: EngineEGraph, state: Dict[str, Any]) -> None:
    for entry in require(state, "functions", list, "state"):
        name = require(entry, "name", str, "function")
        args = require(entry, "args", list, f"function {name!r}")
        try:
            engine.function(
                name,
                [str(a) for a in args],
                require(entry, "out", str, f"function {name!r}"),
                merge=_decode_merge(engine, name, entry.get("merge")),
                default=_decode_default(name, entry.get("default")),
                cost=require(entry, "cost", int, f"function {name!r}"),
                unextractable=bool(entry.get("unextractable", False)),
                is_datatype_constructor=bool(entry.get("constructor", False)),
                decl_site=str(entry.get("decl_site", "")),
            )
        except EGraphError as error:
            raise SnapshotFormatError(str(error)) from None


def _load_unionfind(engine: EngineEGraph, state: Dict[str, Any], proofs: bool) -> None:
    section = require(state, "unionfind", dict, "state")
    parent = require(section, "parent", list, "unionfind")
    size = require(section, "size", list, "unionfind")
    if len(parent) != len(size):
        raise SnapshotFormatError("unionfind parent/size arrays disagree in length")
    forest_state: Optional[tuple] = None
    if proofs:
        proofs_section = state.get("proofs")
        if not isinstance(proofs_section, dict):
            raise SnapshotFormatError(
                "meta.proofs is true but the snapshot has no proofs section"
            )
        forest = require(proofs_section, "forest", dict, "proofs")
        f_parent = require(forest, "parent", list, "proof forest")
        f_edges = require(forest, "edges", list, "proof forest")
        if len(f_parent) != len(parent) or len(f_edges) != len(parent):
            raise SnapshotFormatError(
                "proof forest arrays disagree with the union-find in length"
            )
        forest_state = (
            list(f_parent),
            [decode_justification(edge) for edge in f_edges],
        )
    engine.uf.restore(
        (
            list(parent),
            list(size),
            set(require(section, "dirty", list, "unionfind")),
            require(section, "n_unions", int, "unionfind"),
            forest_state,
        )
    )


def _load_tables(engine: EngineEGraph, state: Dict[str, Any]) -> None:
    for entry in require(state, "tables", list, "state"):
        name = require(entry, "name", str, "table")
        table = engine.tables.get(name)
        if table is None:
            raise SnapshotFormatError(f"table {name!r} has no matching function")
        rows: List[Tuple[Tuple[Value, ...], Value, int]] = []
        for row in require(entry, "rows", list, f"table {name!r}"):
            if not isinstance(row, list) or len(row) != 3 or not isinstance(row[2], int):
                raise SnapshotFormatError(f"table {name!r}: malformed row {row!r}")
            key = tuple(decode_value(col) for col in row[0])
            if len(key) != table.arity:
                raise SnapshotFormatError(
                    f"table {name!r}: row arity {len(key)} != declared {table.arity}"
                )
            rows.append((key, decode_value(row[1]), row[2]))
        table.load_rows(rows)


def _load_proof_log(engine: EngineEGraph, state: Dict[str, Any], proofs: bool) -> None:
    if not proofs:
        return
    section = require(state, "proofs", dict, "state")
    log: Dict[Tuple[str, Tuple[Value, ...]], Value] = {}
    for entry in require(section, "log", list, "proofs"):
        if not isinstance(entry, list) or len(entry) != 3 or not isinstance(entry[0], str):
            raise SnapshotFormatError(f"malformed proof-log entry {entry!r}")
        key = tuple(decode_value(col) for col in entry[1])
        log[(entry[0], key)] = decode_value(entry[2])
    engine._proof_log = log


def _load_rules(engine: EngineEGraph, state: Dict[str, Any]) -> None:
    for entry in require(state, "rules", list, "state"):
        name = require(entry, "name", str, "rule")
        query = decode_query(require(entry, "query", dict, f"rule {name!r}"))
        for atom in query.atoms:
            if atom.func not in engine.decls:
                raise SnapshotFormatError(
                    f"rule {name!r} matches unknown function {atom.func!r}"
                )
        actions = tuple(
            decode_action(a) for a in require(entry, "actions", list, f"rule {name!r}")
        )
        rule = CompiledRule(
            name=name,
            query=query,
            actions=actions,
            ruleset=str(entry.get("ruleset", DEFAULT_RULESET)),
            last_run=require(entry, "last_run", int, f"rule {name!r}"),
        )
        try:
            engine._validate_symbols(rule.query, f"rule {name!r}")
            engine._validate_actions(rule.actions, f"rule {name!r}")
        except EGraphError as error:
            raise SnapshotFormatError(str(error)) from None
        if name in engine.rules:
            raise SnapshotFormatError(f"duplicate rule {name!r} in snapshot")
        engine.rules[name] = rule

    rulesets: Dict[str, List[str]] = {}
    for entry in require(state, "rulesets", list, "state"):
        rs_name = require(entry, "name", str, "ruleset")
        members = require(entry, "rules", list, f"ruleset {rs_name!r}")
        for member in members:
            if member not in engine.rules:
                raise SnapshotFormatError(
                    f"ruleset {rs_name!r} lists unknown rule {member!r}"
                )
        rulesets[rs_name] = [str(m) for m in members]
    rulesets.setdefault(DEFAULT_RULESET, [])
    engine.rulesets = rulesets

    if engine.uses_trie_indexes:
        for rule in engine.rules.values():
            engine.register_rule_indexes(rule)


# ---------------------------------------------------------------------------
# Convenience entry points
# ---------------------------------------------------------------------------


def save_engine(
    engine: EngineEGraph,
    path: str,
    *,
    surfaces: Optional[Dict[str, Any]] = None,
    replay: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Snapshot ``engine`` to ``path``; returns the written document."""
    document = engine_document(engine, surfaces=surfaces, replay=replay)
    write_snapshot(document, path)
    return document


def load_engine(
    path: str,
    *,
    strategy: Optional[str] = None,
    registry: Any = None,
) -> Tuple[EngineEGraph, Dict[str, Any]]:
    """Load ``path``; returns the reconstructed engine and the document."""
    document = read_document(path)
    engine = engine_from_document(document, strategy=strategy, registry=registry)
    return engine, document
