"""Both join strategies must agree — the triangle query and delta searches."""

import pytest

from repro.core.builtins import default_registry
from repro.core.database import Table
from repro.core.genericjoin import search_generic
from repro.core.query import PrimAtom, Query, QVar, TableAtom, search_indexed
from repro.core.schema import FunctionDecl
from repro.core.values import UNIT, UNIT_VALUE, i64

STRATEGIES = [search_indexed, search_generic]


def edge_table(edges, timestamps=None):
    table = Table(FunctionDecl("edge", ("i64", "i64"), UNIT))
    for index, (a, b) in enumerate(edges):
        ts = timestamps[index] if timestamps else 0
        table.put((i64(a), i64(b)), UNIT_VALUE, ts)
    return table


def triangle_query():
    x, y, z = QVar("x"), QVar("y"), QVar("z")
    return Query(
        atoms=[
            TableAtom("edge", (x, y), QVar("o1")),
            TableAtom("edge", (y, z), QVar("o2")),
            TableAtom("edge", (z, x), QVar("o3")),
        ]
    )


EDGES = [(1, 2), (2, 3), (3, 1), (2, 4), (4, 2), (4, 5), (5, 6), (6, 4), (1, 1)]


def solutions(matches):
    return sorted(
        (m["x"].data, m["y"].data, m["z"].data) for m in matches
    )


@pytest.mark.parametrize("search", STRATEGIES)
def test_triangle_query_finds_all_cycles(search):
    tables = {"edge": edge_table(EDGES)}
    result = solutions(search(tables, default_registry(), triangle_query()))
    # 1-2-3 rotations, 2-4 two-cycles are not triangles unless closed, the
    # 4-5-6 cycle's rotations, and the 1-1 self-loop triangle.
    assert (1, 2, 3) in result
    assert (2, 3, 1) in result and (3, 1, 2) in result
    assert (4, 5, 6) in result and (5, 6, 4) in result and (6, 4, 5) in result
    assert (1, 1, 1) in result
    assert all((a, b) in EDGES and (b, c) in EDGES and (c, a) in EDGES for a, b, c in result)


def test_strategies_agree_exactly():
    tables = {"edge": edge_table(EDGES)}
    indexed = solutions(search_indexed(tables, default_registry(), triangle_query()))
    generic = solutions(search_generic(tables, default_registry(), triangle_query()))
    assert indexed == generic
    assert len(indexed) == len(set(indexed))  # no duplicate matches


@pytest.mark.parametrize("search", STRATEGIES)
def test_delta_restriction_only_matches_new_rows(search):
    # Two triangles; only the second was inserted at timestamp 1.
    edges = [(1, 2), (2, 3), (3, 1), (7, 8), (8, 9), (9, 7)]
    stamps = [0, 0, 0, 1, 1, 1]
    tables = {"edge": edge_table(edges, stamps)}
    new_only = solutions(
        search(tables, default_registry(), triangle_query(), delta_atom=0, since=1)
    )
    assert all(a in (7, 8, 9) for a, _, _ in new_only)
    assert (7, 8, 9) in new_only
    everything = solutions(
        search(tables, default_registry(), triangle_query(), delta_atom=0, since=0)
    )
    assert (1, 2, 3) in everything and (7, 8, 9) in everything


@pytest.mark.parametrize("search", STRATEGIES)
def test_primitive_guards_filter_matches(search):
    tables = {"edge": edge_table(EDGES)}
    query = triangle_query()
    query.prims.append(PrimAtom("<", (QVar("x"), QVar("y")), None))
    result = solutions(search(tables, default_registry(), query))
    assert result and all(x < y for x, y, _ in result)


@pytest.mark.parametrize("search", STRATEGIES)
def test_primitive_binders_extend_bindings(search):
    tables = {"edge": edge_table([(1, 2)])}
    query = Query(
        atoms=[TableAtom("edge", (QVar("x"), QVar("y")), QVar("_o"))],
        prims=[PrimAtom("+", (QVar("x"), QVar("y")), QVar("s"))],
    )
    matches = list(search(tables, default_registry(), query))
    assert len(matches) == 1
    assert matches[0]["s"] == i64(3)


@pytest.mark.parametrize("search", STRATEGIES)
def test_missing_table_means_no_matches(search):
    query = triangle_query()
    assert list(search({}, default_registry(), query)) == []
