"""Versioned engine snapshots: the ``repro.snapshot/v1`` format.

Save a running :class:`~repro.engine.egraph.EGraph` to a single JSON
document — sorts, functions, tables, union-find, proof forest, rules,
scheduler epoch — and reconstruct an equivalent engine later, in another
process or another version.  See ``docs/PERSISTENCE.md`` for the schema
specification and compatibility policy.

Most callers go through the surfaced APIs (``(save ...)``/``(load ...)``
in .egg programs, ``--save``/``--load`` on the CLI, ``EGraph.save()`` /
``EGraph.from_snapshot()`` in both the engine and typed DSL, and
``repro-bench --replay``); this package is the shared implementation.
"""

from .encode import decode_schedule, decode_value, encode_schedule, encode_value
from .errors import SnapshotError, SnapshotFormatError
from .snapshot import (
    SCHEMA,
    compute_digest,
    dumps_document,
    engine_document,
    engine_from_document,
    load_engine,
    read_document,
    save_engine,
    validate_document,
    write_snapshot,
)

__all__ = [
    "SCHEMA",
    "SnapshotError",
    "SnapshotFormatError",
    "compute_digest",
    "decode_schedule",
    "decode_value",
    "dumps_document",
    "encode_schedule",
    "encode_value",
    "engine_document",
    "engine_from_document",
    "load_engine",
    "read_document",
    "save_engine",
    "validate_document",
    "write_snapshot",
]
