"""``python -m repro.bench``: run the benchmark suite, emit BENCH_*.json.

Examples::

    python -m repro.bench                 # full suite, 3 repeats, cwd output
    python -m repro.bench --quick         # CI-smoke sizes, 1 repeat
    python -m repro.bench --only tc       # transitive-closure workloads only
    python -m repro.bench --variants generic-index,generic-adhoc
    python -m repro.bench --profile --only math   # cProfile instead of timing
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .._version import package_version
from .runner import DEFAULT_VARIANTS, profile_workload, run_suite
from .server import SERVER_BENCH_NAME
from .workloads import default_workloads


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Benchmark the repro engine; writes one BENCH_<name>.json "
        "per workload.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-smoke sizes and a single repeat per variant",
    )
    parser.add_argument(
        "--out",
        default=".",
        metavar="DIR",
        help="directory for BENCH_*.json files (default: current directory)",
    )
    parser.add_argument(
        "--only",
        default=None,
        metavar="SUBSTRING",
        help="run only workloads whose name contains SUBSTRING",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        metavar="N",
        help="repeats per (workload, variant); default 3, or 1 with --quick",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for the workload generators (default: 0)",
    )
    parser.add_argument(
        "--variants",
        default=None,
        metavar="NAMES",
        help="comma-separated variant subset of: "
        + ", ".join(sorted(DEFAULT_VARIANTS)),
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list workload names and exit",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="cProfile each selected workload (top-20 cumulative functions) "
        "instead of timing; profiles the first selected variant's strategy",
    )
    parser.add_argument(
        "--replay",
        metavar="SNAPSHOT",
        help="instead of the suite: load this repro.snapshot/v1 file and "
        "time its recorded replay schedule (warm-start bench)",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"repro-bench {package_version()}",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_arg_parser().parse_args(argv)
    if args.replay:
        from .replay import replay_snapshot

        repeats = args.repeats if args.repeats is not None else (1 if args.quick else 3)
        return replay_snapshot(args.replay, repeats=repeats)
    workloads = default_workloads(quick=args.quick, seed=args.seed)
    # The server bench has its own variant pair (fork-warm vs cold-load),
    # so it only runs with the default engine-variant selection.
    include_server = args.variants is None and not args.profile
    if args.only:
        workloads = [w for w in workloads if args.only in w.name]
        include_server = include_server and args.only in SERVER_BENCH_NAME
        if not workloads and not include_server:
            print(f"error: no workload matches {args.only!r}", file=sys.stderr)
            return 1
    if args.list:
        for workload in workloads:
            print(f"{workload.name}  [{workload.family}]  {workload.params}")
        if include_server:
            print(f"{SERVER_BENCH_NAME}  [server]  fork-warm vs cold-load")
        return 0
    variants = dict(DEFAULT_VARIANTS)
    if args.variants:
        names = [name.strip() for name in args.variants.split(",") if name.strip()]
        unknown = [name for name in names if name not in DEFAULT_VARIANTS]
        if unknown:
            print(
                f"error: unknown variant(s) {', '.join(unknown)}; "
                f"pick from {', '.join(sorted(DEFAULT_VARIANTS))}",
                file=sys.stderr,
            )
            return 1
        variants = {name: DEFAULT_VARIANTS[name] for name in names}
    repeats = args.repeats if args.repeats is not None else (1 if args.quick else 3)
    if repeats < 1:
        print("error: --repeats must be positive", file=sys.stderr)
        return 1
    if args.profile:
        strategy = next(iter(variants.values()))
        for workload in workloads:
            profile_workload(workload, strategy)
        return 0
    if workloads:
        run_suite(
            workloads,
            variants=variants,
            repeats=repeats,
            out_dir=Path(args.out),
        )
    if include_server:
        from .runner import write_document
        from .server import server_document

        document = server_document(quick=args.quick, repeats=repeats)
        path = write_document(document, Path(args.out))
        comparison = document["comparison"]
        print(
            f"bench: {SERVER_BENCH_NAME}: "
            f"fork-warm={comparison['candidate_run_s'] * 1000:.1f}ms, "
            f"cold-load={comparison['baseline_run_s'] * 1000:.1f}ms "
            f"(fork speedup over cold: {comparison['speedup']:.2f}x) -> {path}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
