"""HTTP service layer: JSON over HTTP/1.1 in front of the session manager.

Stdlib-only by design — :mod:`asyncio` sockets, hand-rolled HTTP framing
(:mod:`repro.server.http`), and a small route table (:mod:`repro.server.app`).
The event loop only shuffles bytes; every engine call runs in a worker
thread, so slow saturations on one session never stall another client's
requests.  ``repro-serve`` (:mod:`repro.server.cli`) is the console entry.

See ``docs/SERVER.md`` for the wire protocol.
"""

from .app import App
from .cli import main
from .http import HttpError, serve

__all__ = ["App", "HttpError", "main", "serve"]
