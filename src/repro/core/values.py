"""Sorts and runtime values for the egglog core.

egglog distinguishes two kinds of sorts (Section 4.2 of the paper):

* *Uninterpreted sorts* (``EqSort``): their values are opaque integer ids
  drawn from a union-find, and the user may ``union`` them.  These play the
  role of e-class ids in equality saturation.
* *Primitive sorts* (``PrimitiveSort``): interpreted base types such as
  ``i64``, ``f64``, ``bool``, ``String``, ``Rational``, ``Unit`` and container
  sorts such as ``Set``.  Interpreted constants are only equal to themselves.

A runtime :class:`Value` pairs a sort name with a payload: an ``int`` id for
eq-sorts, or the corresponding Python object for primitives.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from operator import itemgetter
from typing import Any, Hashable

# ---------------------------------------------------------------------------
# Sorts
# ---------------------------------------------------------------------------

I64 = "i64"
F64 = "f64"
BOOL = "bool"
STRING = "String"
UNIT = "Unit"
RATIONAL = "Rational"


@dataclass(frozen=True)
class Sort:
    """Base class for sorts.  ``name`` is globally unique within an engine."""

    name: str

    @property
    def is_eq_sort(self) -> bool:
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


@dataclass(frozen=True)
class EqSort(Sort):
    """A user-declared uninterpreted sort whose values can be unified."""

    @property
    def is_eq_sort(self) -> bool:
        return True


@dataclass(frozen=True)
class PrimitiveSort(Sort):
    """An interpreted base sort (i64, String, ...)."""

    @property
    def is_eq_sort(self) -> bool:
        return False


@dataclass(frozen=True)
class SetSort(Sort):
    """A container sort holding a frozenset of element values."""

    element: str = STRING

    @property
    def is_eq_sort(self) -> bool:
        return False


BUILTIN_SORTS = {
    I64: PrimitiveSort(I64),
    F64: PrimitiveSort(F64),
    BOOL: PrimitiveSort(BOOL),
    STRING: PrimitiveSort(STRING),
    UNIT: PrimitiveSort(UNIT),
    RATIONAL: PrimitiveSort(RATIONAL),
}


# ---------------------------------------------------------------------------
# Values
# ---------------------------------------------------------------------------


class Value(tuple):
    """A runtime value: a sort name plus a hashable payload.

    For eq-sorts the payload is an integer id into that engine's union-find.
    Note that two ``Value`` objects with different ids may still denote the
    same equivalence class; use ``engine.canonicalize`` before comparing.

    Values are immutable and are the single hottest object in the engine:
    every database key column, index projection, and trie level is a
    ``Value`` used as a dict key, so rows (tuples of Values) are hashed and
    compared millions of times per run.  The class is therefore a ``tuple``
    subclass ``(sort, data)`` with ``__slots__ = ()``: hashing and equality
    run entirely in C (the dataclass-generated ``__hash__`` this replaced —
    a Python-level call building a fresh tuple per invocation — alone
    accounted for ~15% of end-to-end run time on the transitive-closure
    benchmarks).  ``sort`` and ``data`` stay available as attributes via
    C-level item getters.
    """

    __slots__ = ()

    def __new__(cls, sort: str, data: Hashable) -> "Value":
        return tuple.__new__(cls, (sort, data))

    sort = property(itemgetter(0), doc="The value's sort name.")
    data = property(itemgetter(1), doc="The value's payload.")

    def __getnewargs__(self) -> "tuple[str, Hashable]":
        return (self[0], self[1])

    def __repr__(self) -> str:
        return f"{self[0]}#{self[1]!r}"


UNIT_VALUE = Value(UNIT, ())


def i64(value: int) -> Value:
    """Construct an ``i64`` value."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"i64 payload must be an int, got {value!r}")
    return Value(I64, value)


# All NaN payloads collapse onto this single object.  ``NaN != NaN`` would
# otherwise defeat hash-consed equality (dict probes compare by identity
# first, then ``==``), so distinct NaN objects used as table keys or interned
# values would silently never match.  Sharing one object restores reflexive
# key equality and a stable hash without special-casing the hot Value paths.
_CANONICAL_NAN = float("nan")


def f64(value: float) -> Value:
    """Construct an ``f64`` value.

    Payloads are canonicalized: every NaN maps to one shared NaN object
    (restoring key equality, since containers match identical objects before
    calling ``==``) and ``-0.0`` collapses to ``0.0`` (the two compare equal
    but print differently, which would leak nondeterminism into output).
    """
    data = float(value)
    if data != data:
        data = _CANONICAL_NAN
    elif data == 0.0:
        data = 0.0  # Collapse -0.0.
    return Value(F64, data)


def boolean(value: bool) -> Value:
    """Construct a ``bool`` value."""
    return Value(BOOL, bool(value))


def string(value: str) -> Value:
    """Construct a ``String`` value."""
    if not isinstance(value, str):
        raise TypeError(f"String payload must be a str, got {value!r}")
    return Value(STRING, value)


def rational(numer: int, denom: int = 1) -> Value:
    """Construct a ``Rational`` value (exact fraction)."""
    return Value(RATIONAL, Fraction(numer, denom))


def rational_from_fraction(frac: Fraction) -> Value:
    """Wrap an existing :class:`fractions.Fraction` as a Rational value."""
    return Value(RATIONAL, frac)


def value_set(sort_name: str, items: Any = ()) -> Value:
    """Construct a set value of the given set-sort name."""
    return Value(sort_name, frozenset(items))


def from_python(obj: Any) -> Value:
    """Best-effort conversion of a plain Python object into a Value.

    This is a convenience for the library API and tests; the language layer
    always constructs values with explicit sorts.
    """
    if isinstance(obj, Value):
        return obj
    if isinstance(obj, bool):
        return boolean(obj)
    if isinstance(obj, int):
        return i64(obj)
    if isinstance(obj, float):
        return f64(obj)
    if isinstance(obj, str):
        return string(obj)
    if isinstance(obj, Fraction):
        return rational_from_fraction(obj)
    raise TypeError(f"cannot convert {obj!r} to an egglog value")


def to_python(value: Value) -> Any:
    """Unwrap a primitive Value back into its Python payload."""
    return value.data


# ---------------------------------------------------------------------------
# Literal parsing / coercion per sort (used by the text frontend)
# ---------------------------------------------------------------------------

# Widening conversions the language applies to literals: an integer literal
# may be written where an f64 or Rational is expected (the paper's examples
# write ``(f 1)`` for f64-sorted arguments).  Narrowing is never implicit.
_LITERAL_COERCIONS = {
    (I64, F64): lambda data: f64(float(data)),
    (I64, RATIONAL): lambda data: rational_from_fraction(Fraction(data)),
}


def register_literal_coercion(from_sort: str, to_sort: str, convert) -> None:
    """Register a widening literal coercion ``from_sort -> to_sort``.

    ``convert`` receives the literal's payload and returns a :class:`Value`
    of ``to_sort``.  The registered pair extends the widening table that
    :func:`coerce_literal` consults — which both the .egg evaluator and the
    embedded DSL's literal lifting go through — so surface layers can teach
    the core new interpreted sorts without the core importing them.
    Re-registering a pair overwrites the previous conversion; coercions
    between the same sort are rejected (they would shadow the exact-match
    fast path).
    """
    if from_sort == to_sort:
        raise ValueError(f"literal coercion {from_sort!r} -> itself is not allowed")
    _LITERAL_COERCIONS[(from_sort, to_sort)] = convert


def literal_coercion_pairs() -> "list[tuple[str, str]]":
    """The registered coercion pairs, sorted — stable for serialization.

    Snapshots record these so a loader can verify the running process has
    every coercion the saved session relied on (surface layers register
    extras for their interpreted sorts).
    """
    return sorted(_LITERAL_COERCIONS)


def coerce_literal(value: Value, sort_name: str) -> "Value | None":
    """Adapt a literal value to ``sort_name``; None if no sound coercion.

    An exact sort match is returned unchanged; otherwise only the widening
    coercions in :data:`_LITERAL_COERCIONS` apply.  Eq-sorted values never
    coerce (their ids are meaningless under any other sort).
    """
    if value.sort == sort_name:
        return value
    convert = _LITERAL_COERCIONS.get((value.sort, sort_name))
    if convert is None:
        return None
    return convert(value.data)


def parse_literal(sort_name: str, text: str) -> Value:
    """Parse the text of a literal under an expected sort.

    A library utility for embedders that receive sort-annotated text
    (config values, tool arguments) and need a :class:`Value`.  The .egg
    reader does *not* use this: it types literals by lexical shape and
    relies on :func:`coerce_literal` at use sites.
    """
    if sort_name == I64:
        return i64(int(text, 0))
    if sort_name == F64:
        return f64(float(text))
    if sort_name == BOOL:
        if text in ("true", "false"):
            return boolean(text == "true")
        raise ValueError(f"bool literal must be true/false, got {text!r}")
    if sort_name == STRING:
        return string(text)
    if sort_name == RATIONAL:
        return rational_from_fraction(Fraction(text))
    if sort_name == UNIT:
        return UNIT_VALUE
    raise ValueError(f"sort {sort_name!r} has no literal syntax")
