"""Proof forest: per-union justifications and explanation extraction.

egglog inherits egg's proof/explanation machinery: alongside the union-find
it keeps a *proof forest* — a second forest over the same ids whose edges are
never path-compressed and each carry a :class:`Justification` recording *why*
the two endpoints were merged (an explicit ``union`` action, a named rule
firing, or a congruence step ``a = b ==> f(a) = f(b)`` during rebuilding).

The union-find's trees answer "are these equal?" in near-constant time; the
proof forest answers "why are these equal?".  Within one equivalence class
the proof forest is a free tree over the class's members, so the *minimal*
explanation of ``a = b`` is the unique tree path between them
(:meth:`ProofForest.explain_path`), found by walking both ids to the root
and splicing at the lowest common ancestor.

Recording an edge uses egg's re-rooting trick: to add ``a —just— b`` when
``a`` already has a parent, reverse the path from ``a`` to its current root
(shifting each edge's justification one hop toward the old root) so ``a``
becomes the root of its tree, then hang ``a`` under ``b``.  Re-rooting
preserves every existing tree path, so earlier justifications survive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

# Justification kinds.
RULE = "rule"
CONGRUENCE = "congruence"
EXPLICIT_KIND = "union"


@dataclass(frozen=True)
class Justification:
    """Why a single union happened.

    ``kind`` is one of ``"rule"`` (a named rule's action fired),
    ``"congruence"`` (rebuilding merged the outputs of two rows whose keys
    canonicalized together; ``name`` is the function), or ``"union"`` (an
    explicit user/program union; ``name`` is empty).
    """

    kind: str
    name: str = ""

    def describe(self) -> str:
        """Human-readable rendering, used by the .egg frontend printer."""
        if self.name:
            return f"{self.kind} {self.name}"
        return self.kind


#: The ambient justification for unions nobody claimed: explicit merges.
EXPLICIT = Justification(EXPLICIT_KIND)


# Justifications are interned per name: rebuilding constructs one per
# repaired table per round, which would otherwise dominate small rounds.
_RULE_CACHE: Dict[str, Justification] = {}
_CONGRUENCE_CACHE: Dict[str, Justification] = {}


def rule_justification(name: str) -> Justification:
    """Justification for a union performed by rule ``name``'s actions."""
    just = _RULE_CACHE.get(name)
    if just is None:
        just = _RULE_CACHE[name] = Justification(RULE, name)
    return just


def congruence_justification(func: str) -> Justification:
    """Justification for a congruence merge on function ``func``."""
    just = _CONGRUENCE_CACHE.get(func)
    if just is None:
        just = _CONGRUENCE_CACHE[func] = Justification(CONGRUENCE, func)
    return just


@dataclass(frozen=True)
class ProofStep:
    """One edge of an explanation chain: ``lhs`` ~ ``rhs`` because of ``justification``."""

    lhs: int
    rhs: int
    justification: Justification


@dataclass(frozen=True)
class Explanation:
    """A rewrite chain proving ``lhs`` ~ ``rhs`` within sort ``sort``.

    ``steps`` is a connected chain: ``steps[0].lhs == lhs``,
    ``steps[-1].rhs == rhs`` and each step's ``rhs`` is the next step's
    ``lhs``.  An empty chain proves the reflexive case ``lhs == rhs``.
    """

    sort: str
    lhs: int
    rhs: int
    steps: Tuple[ProofStep, ...]

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)


class ProofForest:
    """Justification-carrying forest over dense integer ids ``0..n-1``.

    Kept in lockstep with a :class:`~repro.core.unionfind.UnionFind`: every
    ``make_set`` grows both, every merging union records exactly one edge
    here (between the *original* ids the caller named, not their canonical
    roots — that keeps the forest connected within each class).  Edges are
    never compressed, so justifications are never lost.
    """

    __slots__ = ("_parent", "_edge")

    def __init__(self) -> None:
        self._parent: List[int] = []
        self._edge: List[Optional[Justification]] = []

    def __len__(self) -> int:
        return len(self._parent)

    @property
    def n_edges(self) -> int:
        """Number of justification edges (equals the union-find's n_unions)."""
        return sum(1 for i, p in enumerate(self._parent) if p != i)

    def make_set(self) -> int:
        """Add a fresh singleton tree; returns the new id."""
        ident = len(self._parent)
        self._parent.append(ident)
        self._edge.append(None)
        return ident

    # -- recording -------------------------------------------------------------

    def record(self, a: int, b: int, justification: Justification) -> None:
        """Record that ``a`` and ``b`` were merged because of ``justification``.

        Called once per *merging* union (the union-find filters out unions of
        already-equal ids).  ``a`` and ``b`` must be ids from trees that were
        distinct before this union.
        """
        self._reroot(a)
        self._parent[a] = b
        self._edge[a] = justification

    def _reroot(self, a: int) -> None:
        """Reverse the path from ``a`` to its root so ``a`` becomes the root.

        Edge labels shift one hop: the edge that labelled ``n_i — n_{i+1}``
        still labels that pair afterwards, just stored on the other endpoint.
        """
        parent = self._parent
        edge = self._edge
        prev = a
        carry = edge[a]
        cur = parent[a]
        parent[a] = a
        edge[a] = None
        while cur != prev:
            nxt = parent[cur]
            nxt_edge = edge[cur]
            parent[cur] = prev
            edge[cur] = carry
            prev = cur
            carry = nxt_edge
            cur = nxt

    # -- explanation -----------------------------------------------------------

    def _path_to_root(self, ident: int) -> List[int]:
        parent = self._parent
        path = [ident]
        while parent[ident] != ident:
            ident = parent[ident]
            path.append(ident)
        return path

    def explain_path(self, a: int, b: int) -> Optional[List[ProofStep]]:
        """The minimal chain of justified steps from ``a`` to ``b``.

        Returns ``None`` when the ids live in different trees (i.e. were
        never made equal).  The chain is the unique tree path ``a → lca ←
        b``; each step's justification is the recorded edge, traversed in
        whichever direction the path needs (equality is symmetric).
        """
        if a == b:
            return []
        path_a = self._path_to_root(a)
        depth_of = {node: i for i, node in enumerate(path_a)}
        # Walk b upward until we hit an ancestor of a (the LCA).
        parent = self._parent
        edge = self._edge
        path_b = [b]
        node = b
        while node not in depth_of:
            if parent[node] == node:
                return None  # Different trees: a and b were never unified.
            node = parent[node]
            path_b.append(node)
        lca = node
        steps: List[ProofStep] = []
        # Downhill half: a → lca, edges stored on the child.
        for i in range(depth_of[lca]):
            child = path_a[i]
            up = path_a[i + 1]
            just = edge[child]
            assert just is not None
            steps.append(ProofStep(child, up, just))
        # Uphill half: lca → b, the recorded edges point child→parent so the
        # chain traverses them in reverse.
        for j in range(len(path_b) - 2, -1, -1):
            child = path_b[j]
            up = path_b[j + 1]
            just = edge[child]
            assert just is not None
            steps.append(ProofStep(up, child, just))
        return steps

    # -- snapshots (push/pop support) ------------------------------------------

    def snapshot(self) -> tuple:
        """Capture the forest for a later :meth:`restore`."""
        return (list(self._parent), list(self._edge))

    def restore(self, state: tuple) -> None:
        """Reinstall a captured state.

        Copies defensively: the snapshot tuple stays pristine even if the
        forest keeps growing after the restore, so restoring the same
        snapshot twice is sound (mirrors ``UnionFind.restore``).
        """
        parent, edge = state
        self._parent = list(parent)
        self._edge = list(edge)
