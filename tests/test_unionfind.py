"""Union-find: canonicalization, path compression, dirty tracking."""

import pytest

from repro.core.unionfind import UnionFind


def test_fresh_sets_are_distinct_singletons():
    uf = UnionFind()
    a, b, c = uf.make_sets(3)
    assert len(uf) == 3
    assert len({a, b, c}) == 3
    assert uf.n_classes() == 3
    for ident in (a, b, c):
        assert uf.find(ident) == ident
        assert uf.is_canonical(ident)


def test_union_merges_and_find_agrees():
    uf = UnionFind()
    a, b, c = uf.make_sets(3)
    root = uf.union(a, b)
    assert root in (a, b)
    assert uf.same(a, b)
    assert not uf.same(a, c)
    assert uf.n_classes() == 2
    assert uf.n_unions == 1
    # Union of already-joined ids is a no-op.
    assert uf.union(a, b) == root
    assert uf.n_unions == 1


def test_union_by_size_keeps_larger_representative():
    uf = UnionFind()
    a, b, c, d = uf.make_sets(4)
    big = uf.union(a, b)  # class of size 2
    root = uf.union(c, big)  # size-1 class joins size-2 class
    assert root == big
    assert uf.find(c) == big
    assert uf.find(d) == d


def test_path_compression_flattens_chains():
    uf = UnionFind()
    ids = uf.make_sets(8)
    for left, right in zip(ids, ids[1:]):
        uf.union(left, right)
    root = uf.find(ids[0])
    # After find() every id on the path points (near-)directly at the root.
    for ident in ids:
        uf.find(ident)
        assert uf._parent[ident] == root
    assert uf.n_classes() == 1


def test_dirty_set_records_displaced_representatives():
    uf = UnionFind()
    a, b, c = uf.make_sets(3)
    assert not uf.has_dirty
    root = uf.union(a, b)
    loser = b if root == a else a
    assert uf.has_dirty
    assert uf.take_dirty() == {loser}
    # take_dirty clears.
    assert not uf.has_dirty
    assert uf.take_dirty() == set()
    # A redundant union does not dirty anything.
    uf.union(a, b)
    assert not uf.has_dirty
    uf.union(root, c)
    assert uf.has_dirty


def test_union_all_and_class_members():
    uf = UnionFind()
    ids = uf.make_sets(5)
    root = uf.union_all(ids[:4])
    assert uf.n_classes() == 2
    assert sorted(uf.class_members(root)) == sorted(ids[:4])
    assert uf.class_members(ids[4]) == [ids[4]]
    with pytest.raises(ValueError):
        uf.union_all([])
