"""Equality saturation: prove ``a * 2`` equal to ``a << 1`` and extract it.

This is the paper's equality-saturation side (Section 2): datatype
constructors are functions whose outputs live in an uninterpreted sort, a
``rewrite`` is sugar for a rule that unions the matched e-class with the
right-hand side, and extraction picks the cheapest representative of an
e-class by declared per-node costs (``Mul`` is deliberately expensive, the
strength-reduced ``Shl`` cheap).

Run with:  python examples/math.py
"""

import pathlib
import sys

# Replace (not prepend to) the script-directory entry: this file itself
# would otherwise shadow the stdlib `math` module for transitive imports.
sys.path[0] = str(pathlib.Path(__file__).resolve().parents[1] / "src")

from repro.core.terms import App, V  # noqa: E402
from repro.core.values import I64, STRING  # noqa: E402
from repro.engine import EGraph, rewrite  # noqa: E402


def build_engine() -> EGraph:
    eg = EGraph()
    eg.declare_sort("Math")
    eg.constructor("Num", (I64,), "Math", cost=1)
    eg.constructor("Var", (STRING,), "Math", cost=1)
    eg.constructor("Add", ("Math", "Math"), "Math", cost=2)
    eg.constructor("Mul", ("Math", "Math"), "Math", cost=4)
    eg.constructor("Shl", ("Math", "Math"), "Math", cost=1)

    eg.add_rules(
        rewrite(App("Mul", V("x"), V("y")), App("Mul", V("y"), V("x")), name="mul-comm"),
        rewrite(App("Add", V("x"), V("y")), App("Add", V("y"), V("x")), name="add-comm"),
        # Strength reduction: x * 2  =>  x << 1
        rewrite(
            App("Mul", V("x"), App("Num", 2)),
            App("Shl", V("x"), App("Num", 1)),
            name="mul2-to-shl",
        ),
        # x * 1  =>  x
        rewrite(App("Mul", V("x"), App("Num", 1)), V("x"), name="mul-identity"),
    )
    return eg


def main() -> None:
    eg = build_engine()

    expr = App("Mul", App("Num", 2), App("Var", "a"))  # (* 2 a)
    target = App("Shl", App("Var", "a"), App("Num", 1))  # (<< a 1)
    eg.add(expr)

    report = eg.run(limit=10)
    print(f"run: {report.summary()}")
    assert report.saturated, "this tiny ruleset must saturate"

    # check proves the equivalence (commutativity bridges (* 2 a) to (* a 2),
    # then strength reduction unions it with (<< a 1)).
    eg.check_equal(expr, target)
    print(f"proved: {expr} == {target}")

    cost, best = eg.extract_with_cost(expr)
    print(f"extracted: {best} at cost {cost}")
    assert best == target, f"expected the shifted form, got {best}"
    assert cost == 3  # Shl(1) + Var(1) + Num(1); the Mul form costs 6
    print("ok: extraction picked the strength-reduced term")


if __name__ == "__main__":
    main()
