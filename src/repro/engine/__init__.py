"""The egglog engine: rules, actions, rebuilding, scheduling, extraction.

This package turns the substrate in :mod:`repro.core` into the unified
Datalog + equality-saturation engine of the paper:

* :mod:`repro.engine.actions` — rule right-hand sides and merge resolution
* :mod:`repro.engine.rule` — rules, facts, and rewrite/birewrite sugar
* :mod:`repro.engine.rebuild` — congruence-closure rebuilding (Section 4)
* :mod:`repro.engine.scheduler` — semi-naïve fixpoint iteration (Section 4.3)
* :mod:`repro.engine.schedule` — run-schedule combinators (saturate/seq/repeat)
* :mod:`repro.engine.egraph` — the user-facing :class:`EGraph` facade
"""

from .actions import Action, Delete, Expr, Let, Panic, Set, Union
from .budget import STOP_DEADLINE, STOP_MAX_NODES, Budget
from .egraph import SEARCH_STRATEGIES, EGraph
from .errors import CheckError, EGraphError, EGraphPanic, ExtractError, MergeError
from .rule import (
    DEFAULT_RULESET,
    CompiledRule,
    EqFact,
    Rule,
    birewrite,
    eq,
    rewrite,
)
from .schedule import Repeat, Run, Saturate, Schedule, Seq, repeat, saturate, seq
from .scheduler import Scheduler

__all__ = [
    "Action",
    "Budget",
    "CheckError",
    "CompiledRule",
    "DEFAULT_RULESET",
    "Delete",
    "EGraph",
    "EGraphError",
    "EGraphPanic",
    "EqFact",
    "Expr",
    "ExtractError",
    "Let",
    "MergeError",
    "Panic",
    "Repeat",
    "Rule",
    "Run",
    "SEARCH_STRATEGIES",
    "STOP_DEADLINE",
    "STOP_MAX_NODES",
    "Saturate",
    "Schedule",
    "Scheduler",
    "Seq",
    "Set",
    "Union",
    "birewrite",
    "eq",
    "repeat",
    "rewrite",
    "saturate",
    "seq",
]
