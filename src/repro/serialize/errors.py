"""Errors raised by the snapshot subsystem."""

from __future__ import annotations

from ..errors import ReproError


class SnapshotError(ReproError):
    """Base class for snapshot save/load failures.

    Raised when engine state cannot be serialized (e.g. a function whose
    merge is an arbitrary Python callable) or when a loaded snapshot asks
    for capabilities the running engine does not have (an unregistered
    literal coercion, an unknown merge primitive).
    """


class SnapshotFormatError(SnapshotError):
    """The snapshot document itself is malformed.

    Covers unreadable JSON, an unknown ``schema`` identifier, a failed
    integrity digest, and structurally invalid ``state`` sections.
    """
