"""``repro-serve``: the e-graph session service as a console command.

Boots a :class:`~repro.session.SessionManager`, optionally preloads named
bases from ``.egg`` programs or ``repro.snapshot/v1`` files, and serves the
HTTP API until SIGINT/SIGTERM.  The first line on stdout is always::

    repro-serve listening on http://HOST:PORT

so scripts can bind ``--port 0`` and scrape the ephemeral port.

With ``--state-dir DIR`` sessions survive the process: evicted/expired
sessions are checkpointed there and transparently restored on next touch,
and shutdown drains in-flight batches then checkpoints every live session
so a restart with the same directory picks up where it left off.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from typing import List, Optional

from ..session import SessionError, SessionManager
from .app import App
from .http import serve


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve e-graph sessions over JSON/HTTP (see docs/SERVER.md).",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default %(default)s)")
    parser.add_argument(
        "--port", type=int, default=8642, help="bind port; 0 picks one (default %(default)s)"
    )
    parser.add_argument(
        "--strategy",
        default="indexed",
        choices=("indexed", "generic", "generic-adhoc"),
        help="join strategy for every engine (default %(default)s)",
    )
    parser.add_argument(
        "--max-sessions",
        type=int,
        default=64,
        metavar="N",
        help="LRU capacity cap on live sessions (default %(default)s)",
    )
    parser.add_argument(
        "--idle-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="evict sessions idle longer than this (default: never)",
    )
    parser.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help="checkpoint sessions to DIR on eviction/expiry/shutdown and "
        "restore them on demand (default: sessions are memory-only)",
    )
    parser.add_argument(
        "--deadline-ms",
        type=int,
        default=None,
        metavar="MS",
        help="default per-batch run budget; requests may override (default: none)",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=None,
        metavar="N",
        help="refuse work with 503 past N in-flight requests (default: unbounded)",
    )
    parser.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="close keep-alive connections idle longer than this (default: never)",
    )
    parser.add_argument(
        "--read-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="answer 408 when a request's headers/body stall past this (default: never)",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="on shutdown, wait at most this long for in-flight batches "
        "before checkpointing (default %(default)s)",
    )
    parser.add_argument(
        "--base",
        action="append",
        default=[],
        metavar="NAME=PATH",
        help="preload a base from a .egg program or a .json snapshot; repeatable",
    )
    return parser


def _preload_bases(manager: SessionManager, specs: List[str]) -> None:
    for spec in specs:
        name, sep, path = spec.partition("=")
        if not sep or not name or not path:
            raise SystemExit(f"repro-serve: --base wants NAME=PATH, got {spec!r}")
        try:
            if path.endswith(".json"):
                info = manager.add_base_from_snapshot(name, path)
            else:
                with open(path, "r", encoding="utf-8") as handle:
                    info = manager.add_base_from_program(name, handle.read())
        except (OSError, SessionError) as error:
            raise SystemExit(f"repro-serve: cannot load base {name!r}: {error}") from error
        print(f"repro-serve base {name!r}: {info['functions']} function(s), "
              f"{info['rows']} row(s) [{info['source']}]", flush=True)


async def _run(app: App, host: str, port: int, args: argparse.Namespace) -> None:
    server = await serve(
        app.handle,
        host,
        port,
        idle_timeout_s=args.idle_timeout,
        read_timeout_s=args.read_timeout,
    )
    bound = server.sockets[0].getsockname()
    print(f"repro-serve listening on http://{bound[0]}:{bound[1]}", flush=True)

    stop = asyncio.get_event_loop().create_future()

    def request_stop() -> None:
        if not stop.done():
            stop.set_result(None)

    loop = asyncio.get_event_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, request_stop)
        except NotImplementedError:  # pragma: no cover - non-unix loops
            pass
    try:
        await stop
    finally:
        # Graceful drain: stop accepting connections, refuse new work,
        # let in-flight batches finish, then persist every live session.
        server.close()
        await server.wait_closed()
        drained = await app.drain(args.drain_timeout)
        if not drained:
            print("repro-serve drain timed out; checkpointing anyway", flush=True)
        if app.manager.store is not None:
            written = await loop.run_in_executor(None, app.manager.checkpoint_all)
            print(f"repro-serve checkpointed {written} session(s)", flush=True)
    print("repro-serve stopped", flush=True)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    manager = SessionManager(
        strategy=args.strategy,
        max_sessions=args.max_sessions,
        idle_ttl_s=args.idle_ttl,
        state_dir=args.state_dir,
    )
    if manager.store is not None and len(manager.store):
        print(
            f"repro-serve state dir has {len(manager.store)} restorable session(s)",
            flush=True,
        )
    _preload_bases(manager, args.base)
    app = App(manager, deadline_ms=args.deadline_ms, max_pending=args.max_pending)
    try:
        asyncio.run(_run(app, args.host, args.port, args))
    except KeyboardInterrupt:  # pragma: no cover - signal handler usually wins
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
