"""The compiled hot path: slot plans, action programs, cache invalidation.

Covers the compilation layer (``repro.core.compile`` +
``repro.engine.program``): compiled searches must agree with the
interpreted strategies match-for-match, compiled action programs must agree
with ``run_actions``, and every event that can strand a stale plan — a rule
edited through a ruleset, push/pop around a compiled run, a strategy switch
mid-session — must recompile (no stale-slot reads).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compile import assign_slots
from repro.core.database import Row, Table
from repro.core.schema import FunctionDecl
from repro.core.terms import App, L, V
from repro.core.values import I64, UNIT, Value, i64
from repro.engine import EGraph, EGraphError, Rule
from repro.engine.actions import Delete, Expr, Let, Panic, Set, Union, run_actions
from repro.engine.rule import compile_facts

STRATEGIES = ["indexed", "generic", "generic-adhoc"]


def tc_engine(strategy="indexed", edges=((1, 2), (2, 3), (3, 4), (1, 3))):
    eg = EGraph(strategy=strategy)
    eg.relation("edge", (I64, I64))
    eg.relation("path", (I64, I64))
    eg.add_rules(
        Rule(
            name="base",
            facts=[App("edge", V("x"), V("y"))],
            actions=[Expr(App("path", V("x"), V("y")))],
        ),
        Rule(
            name="step",
            facts=[App("path", V("x"), V("y")), App("edge", V("y"), V("z"))],
            actions=[Expr(App("path", V("x"), V("z")))],
        ),
    )
    for a, b in edges:
        eg.add(App("edge", a, b))
    return eg


def path_rows(eg):
    return sorted((k[0][1], k[1][1]) for k, _v in eg.table_rows("path"))


# -- slot assignment ----------------------------------------------------------


def test_assign_slots_table_vars_first_then_prim_vars():
    query = compile_facts(
        [App("edge", V("x"), V("y")), App(">", V("y"), V("bound"))],
        lambda name: name == "edge",
    )
    slot_of, names = assign_slots(query)
    assert names[:2] == ("x", "y")
    assert "bound" in slot_of and slot_of["bound"] == names.index("bound")
    assert len(names) == len(set(names)) == len(slot_of)


# -- compiled search vs interpreted search ------------------------------------


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_compiled_search_matches_interpreted(strategy):
    eg = tc_engine(strategy)
    eg.run(10)
    # The public query path stays on the interpreted strategies; the
    # scheduler's searches ran compiled.  Both must see the same closure.
    matches = eg.query(App("path", V("a"), V("b")))
    assert len(matches) == len(path_rows(eg))
    rule = eg.rules["step"]
    exec_ = eg.rule_exec(rule)
    compiled = {exec_.substitution(m)["x"] for m in exec_.search_full(eg.tables)}
    interpreted = {m["x"] for m in eg.search(rule.query)}
    assert compiled == interpreted


def test_all_strategies_agree_on_closure():
    closures = []
    for strategy in STRATEGIES:
        eg = tc_engine(strategy, edges=((1, 2), (2, 3), (2, 4), (4, 1)))
        report = eg.run(16)
        assert report.saturated
        closures.append(path_rows(eg))
    assert closures[0] == closures[1] == closures[2]


def test_compiled_prim_guards_and_binders():
    eg = EGraph()
    eg.relation("n", (I64,))
    eg.relation("big-double", (I64,))
    eg.add_rule(
        Rule(
            name="double-big",
            facts=[
                App("n", V("x")),
                App(">", V("x"), L(2)),
                eqf("y", App("*", V("x"), L(2))),
            ],
            actions=[Expr(App("big-double", V("y")))],
        )
    )
    for value in (1, 2, 3, 5):
        eg.add(App("n", value))
    eg.run(5)
    assert sorted(k[0][1] for k, _v in eg.table_rows("big-double")) == [6, 10]


def eqf(name, term):
    from repro.engine import eq

    return eq(V(name), term)


def test_unsafe_prim_query_matches_nothing_compiled_and_interpreted():
    eg = EGraph()
    eg.relation("n", (I64,))
    # "y" is never bound by any atom or primitive output: the interpreted
    # engine fails every match; the compiled plan must do the same.
    eg.add_rule(
        Rule(
            name="unsafe",
            facts=[App("n", V("x")), App(">", V("y"), L(0))],
            actions=[Expr(App("n", V("x")))],
        )
    )
    eg.add(App("n", 1))
    report = eg.run(3)
    assert report.per_rule_matches["unsafe"] == 0
    assert list(eg.search(eg.rules["unsafe"].query)) == []


# -- compiled action programs vs run_actions ----------------------------------


def test_action_program_agrees_with_run_actions():
    def build():
        eg = EGraph()
        eg.declare_sort("S")
        eg.constructor("f", (I64,), "S")
        eg.function("g", (I64,), I64, merge="min")
        eg.relation("r", (I64,))
        return eg

    actions = [
        Let("v", App("+", L(1), L(2))),
        Set(App("g", L(1)), V("v")),
        Expr(App("r", V("v"))),
        Union(App("f", L(1)), App("f", L(2))),
        Delete(App("r", V("v"))),
        Set(App("g", L(1)), L(2)),
    ]

    interpreted = build()
    run_actions(interpreted, actions, {})

    compiled = build()
    rule_name = compiled.add_rule(Rule(name="all-ops", facts=[], actions=actions))
    compiled.run(1)

    for name in ("g", "r"):
        assert dict(interpreted.table_rows(name)) == dict(compiled.table_rows(name))
    assert interpreted.are_equal(App("f", 1), App("f", 2))
    assert compiled.are_equal(App("f", 1), App("f", 2))
    assert compiled.rules[rule_name].last_run > 0


def test_action_program_panic_and_fire_time_errors():
    from repro.engine import EGraphPanic
    from repro.engine.program import compile_actions, compile_term

    eg = EGraph()
    eg.relation("r", (I64,))
    eg.add_rule(Rule(name="boom", facts=[], actions=[Panic("no")]))
    with pytest.raises(EGraphPanic, match="no"):
        eg.run(1)

    # An unbound variable compiles to the interpreter's fire-time error.
    fn = compile_term(eg, V("ghost"), {})
    with pytest.raises(EGraphError, match="unbound variable 'ghost'"):
        fn([])
    # Let-shadowing reuses the query variable's register, like the dict
    # overwrite in run_actions.
    program = compile_actions(
        eg, [Let("x", L(7)), Expr(App("r", V("x")))], {"x": 0}, 1
    )
    program.execute((i64(3),))
    assert (i64(7),) in eg.tables["r"].data


# -- cache invalidation: rule edits, push/pop, strategy switches --------------


def test_engine_replace_rule_recompiles_and_resets_watermark():
    eg = tc_engine()
    eg.run(10)
    before = path_rows(eg)
    # Edit the step rule to derive reversed paths instead.
    eg.replace_rule(
        Rule(
            name="step",
            facts=[App("edge", V("x"), V("y"))],
            actions=[Expr(App("path", V("y"), V("x")))],
        )
    )
    assert eg.rules["step"].last_run == 0  # full re-search, not a delta
    eg.run(10)
    after = path_rows(eg)
    assert set(before) < set(after)
    assert (2, 1) in after  # the edited rule actually ran compiled afresh

    with pytest.raises(EGraphError, match="unknown rule"):
        eg.replace_rule(Rule(name="nope", facts=[], actions=[Expr(App("path", L(0), L(0)))]))
    with pytest.raises(EGraphError, match="needs a named rule"):
        eg.replace_rule(Rule(name=None, facts=[], actions=[Expr(App("path", L(0), L(0)))]))
    with pytest.raises(EGraphError, match="cannot move rule"):
        eg.replace_rule(
            Rule(
                name="step",
                facts=[App("edge", V("x"), V("y"))],
                actions=[Expr(App("path", V("x"), V("y")))],
                ruleset="other",
            )
        )


def test_dsl_ruleset_replace_recompiles():
    from repro.dsl import EGraph as DslEGraph
    from repro.dsl import i64 as i64_sort
    from repro.dsl import rule, var

    eg = DslEGraph()
    num = eg.relation("num", i64_sort)
    bumped = eg.relation("bumped", i64_sort)
    rs = eg.ruleset("edits")

    x = var("x", i64_sort)
    rs.register(rule(num(x), name="bump").then(bumped(x + 1)))
    eg.add(num(10))
    eg.run(rs.run(4))
    assert (i64(11),) in eg.engine.tables["bumped"].data

    # Edit the rule through the ruleset: same name, new body.
    rs.replace(rule(num(x), name="bump").then(bumped(x + 100)))
    eg.add(num(20))
    eg.run(rs.run(4))
    data = eg.engine.tables["bumped"].data
    assert (i64(120),) in data and (i64(110),) in data
    assert (i64(21),) not in data  # old program is unreachable

    with pytest.raises(EGraphError, match="unknown rule"):
        rs.replace(rule(num(x), name="ghost").then(bumped(x)))

    # A rejected replace must not corrupt the caller's engine-rule object.
    engine_rule = Rule(
        name="bump",
        facts=[App("num", V("x"))],
        actions=[Expr(App("bumped", V("x")))],
        ruleset="elsewhere",
    )
    other = eg.ruleset("other")
    with pytest.raises(EGraphError, match="cannot move rule"):
        other.replace(engine_rule)
    assert engine_rule.ruleset == "elsewhere"


@pytest.mark.parametrize("strategy", ["indexed", "generic"])
def test_push_pop_across_compiled_run(strategy):
    eg = tc_engine(strategy)
    eg.run(10)  # compile + run
    before = path_rows(eg)
    epoch = eg.compile_epoch
    eg.push()
    assert eg.compile_epoch != epoch
    eg.relation("marked", (I64,))
    eg.add_rule(
        Rule(
            name="mark",
            facts=[App("path", V("x"), V("y"))],
            actions=[Expr(App("marked", V("x")))],
        )
    )
    eg.add(App("edge", 4, 5))
    eg.run(10)
    assert (4, 5) in path_rows(eg)
    assert len(eg.tables["marked"]) > 0
    eg.pop()
    # The popped scope's table and rule are gone; compiled plans of the
    # surviving rules were invalidated and recompile cleanly.
    assert "marked" not in eg.tables and "mark" not in eg.rules
    assert path_rows(eg) == before
    eg.add(App("edge", 4, 6))
    eg.run(10)
    assert (1, 6) in path_rows(eg)


def test_strategy_switch_mid_session_recompiles():
    eg = tc_engine("indexed")
    eg.run(3)
    exec_indexed = eg.rule_exec(eg.rules["step"])
    eg.strategy = "generic"
    assert eg.uses_trie_indexes
    exec_generic = eg.rule_exec(eg.rules["step"])
    assert exec_generic is not exec_indexed
    assert exec_generic.strategy == "generic"
    eg.run(10)
    fresh = tc_engine("generic")
    fresh.run(13)
    assert path_rows(eg) == path_rows(fresh)
    # Switching back re-uses the cached indexed executor (same epoch).
    eg.set_strategy("indexed")
    assert eg.rule_exec(eg.rules["step"]) is exec_indexed
    with pytest.raises(EGraphError, match="unknown search strategy"):
        eg.set_strategy("quantum")


OPS = st.lists(
    st.one_of(
        st.tuples(st.just("edge"), st.integers(0, 5), st.integers(0, 5)),
        st.just(("run",)),
        st.just(("push",)),
        st.just(("pop",)),
        st.just(("switch",)),
        st.just(("edit",)),
    ),
    max_size=14,
)


@settings(max_examples=40, deadline=None)
@given(ops=OPS)
def test_invalidation_interleavings_agree_across_strategies(ops):
    """Random interleavings of run/push/pop/edit/switch on two engines.

    Engine A starts on "indexed" and toggles strategies on ``switch``;
    engine B stays on "generic".  Whatever the interleaving, both must end
    with identical path closures — a stale compiled plan or program on
    either side would diverge.
    """
    engines = [tc_engine("indexed", edges=()), tc_engine("generic", edges=())]
    depth = 0
    edited = False
    toggle = ["indexed", "generic-adhoc"]
    for op in ops:
        if op[0] == "edge":
            for eg in engines:
                eg.add(App("edge", op[1], op[2]))
        elif op[0] == "run":
            for eg in engines:
                eg.run(8)
        elif op[0] == "push":
            depth += 1
            for eg in engines:
                eg.push()
        elif op[0] == "pop" and depth > 0:
            depth -= 1
            for eg in engines:
                eg.pop()
        elif op[0] == "switch":
            toggle.reverse()
            engines[0].set_strategy(toggle[0])
        elif op[0] == "edit":
            edited = not edited
            action = (
                Expr(App("path", V("y"), V("x")))
                if edited
                else Expr(App("path", V("x"), V("z")))
            )
            facts = (
                [App("edge", V("x"), V("y"))]
                if edited
                else [App("path", V("x"), V("y")), App("edge", V("y"), V("z"))]
            )
            for eg in engines:
                eg.replace_rule(Rule(name="step", facts=facts, actions=[action]))
    for eg in engines:
        eg.run(24)
    assert path_rows(engines[0]) == path_rows(engines[1])


# -- table write batching -----------------------------------------------------


def unit_decl(name="t", arity=2):
    return FunctionDecl(name=name, arg_sorts=(I64,) * arity, out_sort=UNIT)


def test_batch_defers_then_flushes_index_maintenance():
    table = Table(FunctionDecl(name="f", arg_sorts=(I64,), out_sort=I64))
    table.put((i64(1),), i64(10), 0)
    index = table.index((0,))
    assert (i64(1),) in index

    table.begin_batch()
    table.put((i64(2),), i64(20), 1)
    table.put((i64(2),), i64(21), 1)  # overwrite coalesces
    table.remove((i64(1),))
    # Reads through data stay current inside the batch.
    assert table.get((i64(2),)) == i64(21)
    # An index read inside the batch flushes pending maintenance first.
    live = table.index((0,))
    assert (i64(2),) in live and (i64(1),) not in live
    table.end_batch()

    with pytest.raises(RuntimeError, match="end_batch without"):
        table.end_batch()
    # Output-column index reflects only the final value of the batch.
    out_index = table.index((1,))
    assert (i64(21),) in out_index and (i64(20),) not in out_index


def test_batch_insert_then_remove_is_a_net_noop():
    from repro.core.values import UNIT_VALUE

    table = Table(unit_decl())
    table.index((0,))
    table.begin_batch()
    key = (i64(7), i64(8))
    table.put(key, UNIT_VALUE, 3)
    table.remove(key)
    table.end_batch()
    assert key not in table
    assert (i64(7),) not in table.index((0,))


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["put", "remove", "flush-read"]),
            st.integers(0, 3),
            st.integers(0, 3),
            st.integers(0, 4),
        ),
        max_size=24,
    )
)
def test_batched_and_unbatched_tables_agree(ops):
    """The same op sequence on a batched and an unbatched table must leave
    identical rows, hash indexes, and trie contents."""
    decl = FunctionDecl(name="f", arg_sorts=(I64,), out_sort=I64)
    batched, plain = Table(decl), Table(decl)
    for table in (batched, plain):
        table.index((0,))
        table.index((1,))
        table.ensure_trie((0, 1))
    batched.begin_batch()
    for op, a, value, ts in ops:
        key = (i64(a),)
        if op == "put":
            batched.put(key, i64(value), ts)
            plain.put(key, i64(value), ts)
        elif op == "remove":
            assert batched.remove(key) == plain.remove(key)
        else:
            # Index access mid-batch flushes; both sides must agree there too.
            assert batched.index((0,)) == plain.index((0,))
    batched.end_batch()
    assert dict(batched.data.items()) == dict(plain.data.items())
    assert batched.index((0,)) == plain.index((0,))
    assert batched.index((1,)) == plain.index((1,))
    assert batched.trie((0, 1)).root == plain.trie((0, 1)).root
    assert sorted(batched.new_keys(0)) == sorted(plain.new_keys(0))


# -- __slots__ hot objects ----------------------------------------------------


def test_value_and_row_are_slim_and_well_behaved():
    value = Value(I64, 41)
    assert value.sort == I64 and value.data == 41
    assert value == i64(41) and hash(value) == hash(i64(41))
    assert value != i64(40) and value != Value("f64", 41)
    assert repr(value) == "i64#41"
    assert not hasattr(value, "__dict__")

    row = Row(value, 3)
    assert row.value is value and row.timestamp == 3
    assert row == Row(i64(41), 3) and row != Row(i64(41), 4)
    assert "Row(" in repr(row)
    assert not hasattr(row, "__dict__")
    with pytest.raises(AttributeError):
        row.extra = 1  # __slots__: no stray attributes on hot objects

    import pickle

    assert pickle.loads(pickle.dumps(value)) == value
