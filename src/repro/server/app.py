"""Route table: HTTP requests onto the :class:`SessionManager`.

Endpoints (all JSON; see ``docs/SERVER.md`` for full schemas)::

    GET    /healthz                   liveness + version
    GET    /stats                     manager + compile-cache counters
    GET    /bases                     list bases
    POST   /bases                     {"name", "program"} | {"name", "snapshot_path"}
    DELETE /bases/<name>              forget a base (live forks unaffected)
    GET    /sessions                  list sessions
    POST   /sessions                  {"base": name?} -> {"session": {...}}
    GET    /sessions/<id>             one session's info
    DELETE /sessions/<id>             drop a session
    POST   /sessions/<id>/fork        clone a live session
    POST   /sessions/<id>/egg         {"program": ".egg text"} -> {"lines": [...]}
    POST   /sessions/<id>/program     {"ops": [...]} -> {"results": [...]}

Session-layer errors map to statuses (unknown -> 404, duplicate -> 409,
capacity -> 503, bad program -> 422).  Engine work is blocking and
CPU-bound, so every dispatch runs in a worker thread — the session mutexes
do the serialization, the event loop stays free to accept connections.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from .._version import package_version
from ..session import (
    CapacityError,
    DuplicateNameError,
    ProgramError,
    Session,
    SessionError,
    SessionManager,
    UnknownBaseError,
    UnknownSessionError,
)
from .http import HttpError

Json = Any

_ERROR_STATUS = (
    (UnknownSessionError, 404),
    (UnknownBaseError, 404),
    (DuplicateNameError, 409),
    (CapacityError, 503),
    (ProgramError, 422),
    (SessionError, 400),
)


def _status_of(error: SessionError) -> int:
    for kind, status in _ERROR_STATUS:
        if isinstance(error, kind):
            return status
    return 400  # pragma: no cover - table covers the hierarchy


class App:
    """The service: one manager, a blocking dispatcher, an async adapter."""

    def __init__(self, manager: Optional[SessionManager] = None) -> None:
        self.manager = manager if manager is not None else SessionManager()

    # -- async adapter (the event-loop side) ----------------------------------

    async def handle(self, method: str, path: str, body: bytes) -> Tuple[int, Json]:
        payload = self._decode_body(body)
        loop = asyncio.get_event_loop()
        return await loop.run_in_executor(None, self.dispatch, method, path, payload)

    @staticmethod
    def _decode_body(body: bytes) -> Json:
        if not body:
            return {}
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise HttpError(400, f"request body is not valid JSON: {error}") from None
        if not isinstance(payload, dict):
            raise HttpError(400, "request body must be a JSON object")
        return payload

    # -- blocking dispatcher (worker-thread side) -----------------------------

    def dispatch(self, method: str, path: str, payload: Dict[str, Json]) -> Tuple[int, Json]:
        """Route one request; thread-safe, callable without a server too."""
        try:
            return self._route(method, path, payload)
        except SessionError as error:
            return _status_of(error), {"ok": False, "error": str(error)}

    def _route(self, method: str, path: str, payload: Dict[str, Json]) -> Tuple[int, Json]:
        parts = [p for p in path.split("/") if p]

        if parts == ["healthz"]:
            self._require(method, "GET")
            return 200, {"ok": True, "version": package_version()}
        if parts == ["stats"]:
            self._require(method, "GET")
            return 200, {"ok": True, "stats": self.manager.stats()}

        if parts == ["bases"]:
            if method == "GET":
                return 200, {"ok": True, "bases": self.manager.bases()}
            self._require(method, "POST")
            return self._create_base(payload)
        if len(parts) == 2 and parts[0] == "bases":
            self._require(method, "DELETE")
            self.manager.remove_base(parts[1])
            return 200, {"ok": True, "removed": parts[1]}

        if parts == ["sessions"]:
            if method == "GET":
                return 200, {"ok": True, "sessions": self.manager.sessions()}
            self._require(method, "POST")
            base = payload.get("base")
            if base is not None and not isinstance(base, str):
                raise HttpError(400, "field 'base' must be a string")
            session = self.manager.create_session(base)
            return 201, {"ok": True, "session": session.info()}
        if len(parts) >= 2 and parts[0] == "sessions":
            return self._session_route(method, parts[1], parts[2:], payload)

        raise HttpError(404, f"no route for {path!r}")

    def _create_base(self, payload: Dict[str, Json]) -> Tuple[int, Json]:
        name = payload.get("name")
        if not isinstance(name, str) or not name:
            raise HttpError(400, "field 'name' must be a non-empty string")
        program = payload.get("program")
        snapshot_path = payload.get("snapshot_path")
        if (program is None) == (snapshot_path is None):
            raise HttpError(400, "provide exactly one of 'program' or 'snapshot_path'")
        if program is not None:
            if not isinstance(program, str):
                raise HttpError(400, "field 'program' must be a string")
            info = self.manager.add_base_from_program(name, program)
        else:
            if not isinstance(snapshot_path, str):
                raise HttpError(400, "field 'snapshot_path' must be a string")
            try:
                info = self.manager.add_base_from_snapshot(name, snapshot_path)
            except OSError as error:
                raise HttpError(400, f"cannot read snapshot: {error}") from None
        return 201, {"ok": True, "base": info}

    def _session_route(
        self, method: str, session_id: str, rest: list, payload: Dict[str, Json]
    ) -> Tuple[int, Json]:
        if not rest:
            if method == "DELETE":
                self.manager.remove_session(session_id)
                return 200, {"ok": True, "removed": session_id}
            self._require(method, "GET")
            return 200, {"ok": True, "session": self.manager.get(session_id).info()}
        if len(rest) != 1:
            raise HttpError(404, f"no route for sessions/{session_id}/{'/'.join(rest)}")
        action = rest[0]
        if action == "fork":
            self._require(method, "POST")
            session = self.manager.fork_session(session_id)
            return 201, {"ok": True, "session": session.info()}
        if action == "egg":
            self._require(method, "POST")
            program = payload.get("program")
            if not isinstance(program, str):
                raise HttpError(400, "field 'program' must be a string")
            session = self.manager.get(session_id)
            return 200, {"ok": True, "lines": session.run_egg(program)}
        if action == "program":
            self._require(method, "POST")
            session = self.manager.get(session_id)
            return 200, {"ok": True, "results": session.run_program(payload.get("ops"))}
        raise HttpError(404, f"unknown session action {action!r}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise HttpError(405, f"method {method} not allowed here (want {expected})")


__all__ = ["App", "Session"]
