"""Benchmark runner: time workloads across engine variants, emit BENCH JSON.

For each workload the runner builds a fresh engine per (variant, repeat),
times setup and run separately with ``time.perf_counter``, and folds in the
phase split (search/apply/rebuild) that the scheduler's
:class:`~repro.core.schema.RunReport` already tracks.  Aggregation is the
median over repeats — robust to one noisy run without needing many.

One ``BENCH_<name>.json`` is written per workload.  The schema is stable
(``schema`` key, fixed key set per level) so downstream tooling and future
PRs can diff numbers without parsing churn.  The ``comparison`` block
records the headline the index subsystem is accountable for: persistent
incremental indexes (``generic-index``) versus the per-execution trie
rebuild baseline (``generic-adhoc``) on the same workload.
"""

from __future__ import annotations

import json
import statistics
import sys
import time
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional

from .._version import package_version
from ..engine import EGraph
from .workloads import Workload

#: Schema identifier written into every BENCH file; bump on breaking change.
#: v2: every variant and the comparison block report min/median/max over
#: repeats (``run_s_stats``); headline numbers are medians.  Readers should
#: stay tolerant of v1 files (no ``run_s_stats`` key).
SCHEMA = "repro.bench/v2"

#: Engine variants measured by default: the persistent-index generic join,
#: its per-execution trie-rebuild baseline, and the index-nested-loop join.
DEFAULT_VARIANTS: Dict[str, str] = {
    "generic-index": "generic",
    "generic-adhoc": "generic-adhoc",
    "indexed": "indexed",
}

#: The headline comparison recorded in each BENCH file.
BASELINE_VARIANT = "generic-adhoc"
CANDIDATE_VARIANT = "generic-index"


def _run_once(workload: Workload, strategy: str) -> Dict[str, object]:
    """One cold run of ``workload`` on a fresh engine; returns raw numbers."""
    egraph = EGraph(strategy=strategy)
    start = time.perf_counter()
    workload.setup(egraph)
    setup_s = time.perf_counter() - start
    start = time.perf_counter()
    report = workload.run(egraph)
    run_s = time.perf_counter() - start
    table_rows = {
        name: len(egraph.tables[name])
        for name in workload.tables_of_interest
        if name in egraph.tables
    }
    return {
        "setup_s": setup_s,
        "run_s": run_s,
        "search_s": report.search_time,
        "apply_s": report.apply_time,
        "rebuild_s": report.rebuild_time,
        "iterations": report.iterations,
        "matches": report.num_matches,
        "delta_skips": report.delta_skips,
        "saturated": report.saturated,
        "table_rows": table_rows,
    }


def _run_s_stats(runs_s: List[float]) -> Dict[str, float]:
    """min/median/max over the repeats' run times (median_low: an actually
    measured run, consistent with the per-variant headline numbers)."""
    return {
        "min": min(runs_s),
        "median": statistics.median_low(runs_s),
        "max": max(runs_s),
    }


def median_run_s(entry: Dict[str, object]) -> float:
    """The median ``run_s`` of a variant entry, tolerant of v1 documents.

    v2 documents carry an explicit ``run_s_stats`` block; v1 documents only
    have the headline ``run_s`` (which was already the median run).
    """
    stats = entry.get("run_s_stats")
    if isinstance(stats, dict) and "median" in stats:
        return float(stats["median"])  # type: ignore[arg-type]
    return float(entry["run_s"])  # type: ignore[arg-type]


def run_workload(
    workload: Workload,
    variants: Optional[Dict[str, str]] = None,
    *,
    repeats: int = 3,
) -> Dict[str, object]:
    """Measure ``workload`` under every variant; returns the BENCH document."""
    variants = dict(variants if variants is not None else DEFAULT_VARIANTS)
    measured: Dict[str, object] = {}
    for variant, strategy in variants.items():
        runs = [_run_once(workload, strategy) for _ in range(repeats)]
        runs_s = [run["run_s"] for run in runs]
        # median_low throughout: every reported number (headline, phase
        # split, counts) comes from the same actually-measured run.
        median = runs[runs_s.index(statistics.median_low(runs_s))]
        measured[variant] = {
            "strategy": strategy,
            "repeats": repeats,
            "run_s": median["run_s"],
            "run_s_stats": _run_s_stats(runs_s),
            "runs_s": runs_s,
            "setup_s": median["setup_s"],
            "search_s": median["search_s"],
            "apply_s": median["apply_s"],
            "rebuild_s": median["rebuild_s"],
            "iterations": median["iterations"],
            "matches": median["matches"],
            "delta_skips": median["delta_skips"],
            "saturated": median["saturated"],
            "table_rows": median["table_rows"],
        }

    document: Dict[str, object] = {
        "schema": SCHEMA,
        "name": workload.name,
        "family": workload.family,
        "params": workload.params,
        "python": ".".join(str(part) for part in sys.version_info[:3]),
        # Provenance: which engine build measured these numbers and whether
        # proof production (the default) was on — both shift run times.
        "version": package_version(),
        "proofs": True,
        "variants": measured,
    }
    baseline = measured.get(BASELINE_VARIANT)
    candidate = measured.get(CANDIDATE_VARIANT)
    if baseline is not None and candidate is not None:
        # Medians over the repeats, not any single run: one noisy repeat
        # must not skew the headline comparison.
        baseline_s = median_run_s(baseline)
        candidate_s = median_run_s(candidate)
        document["comparison"] = {
            "baseline": BASELINE_VARIANT,
            "candidate": CANDIDATE_VARIANT,
            "baseline_run_s": baseline_s,
            "candidate_run_s": candidate_s,
            "baseline_run_s_stats": baseline["run_s_stats"],
            "candidate_run_s_stats": candidate["run_s_stats"],
            "speedup": (baseline_s / candidate_s) if candidate_s > 0 else None,
        }
    return document


def profile_workload(
    workload: Workload,
    strategy: str = "indexed",
    *,
    top: int = 20,
    log: Callable[[str], None] = print,
) -> None:
    """Run ``workload`` once under :mod:`cProfile`, printing hot functions.

    Setup runs unprofiled; only the run phase is measured, sorted by
    cumulative time (top ``top`` entries).  This is the evidence step for
    perf work: before optimizing, profile the workload you care about.
    """
    import cProfile
    import io
    import pstats

    egraph = EGraph(strategy=strategy)
    workload.setup(egraph)
    profiler = cProfile.Profile()
    profiler.enable()
    workload.run(egraph)
    profiler.disable()
    stream = io.StringIO()
    pstats.Stats(profiler, stream=stream).sort_stats("cumulative").print_stats(top)
    log(f"profile: {workload.name} [{strategy}] — top {top} by cumulative time")
    log(stream.getvalue().rstrip())


def write_document(document: Dict[str, object], out_dir: Path) -> Path:
    """Write one BENCH document as ``BENCH_<name>.json``; returns the path."""
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{document['name']}.json"
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def run_suite(
    workloads: Iterable[Workload],
    *,
    variants: Optional[Dict[str, str]] = None,
    repeats: int = 3,
    out_dir: Path = Path("."),
    log: Callable[[str], None] = print,
) -> List[Path]:
    """Run every workload, write its BENCH file, and log a one-line summary."""
    paths: List[Path] = []
    for workload in workloads:
        document = run_workload(workload, variants, repeats=repeats)
        path = write_document(document, out_dir)
        paths.append(path)
        summary = ", ".join(
            f"{variant}={entry['run_s'] * 1000:.1f}ms"
            for variant, entry in document["variants"].items()  # type: ignore[union-attr]
        )
        comparison = document.get("comparison")
        if isinstance(comparison, dict) and comparison.get("speedup"):
            summary += f"  (index speedup over adhoc: {comparison['speedup']:.2f}x)"
        log(f"bench: {workload.name}: {summary} -> {path}")
    return paths
