"""The user-facing ``EGraph``: the unified Datalog + equality-saturation engine.

This facade ties the whole reproduction together (Figure 1 of the paper:
egglog is both a Datalog engine whose relations are functions with merge
expressions and an e-graph engine whose rewrites are rules):

* **Declarations** — :meth:`declare_sort`, :meth:`function`,
  :meth:`relation`, :meth:`constructor` (Sections 3.2–3.3).
* **Ground facts** — :meth:`add` / :meth:`union` evaluate terms with
  get-or-default semantics: an application absent from the database is
  inserted with its function's default output (a fresh e-class id for
  eq-sorts), which is how e-nodes are hash-consed into the database.
* **Rules** — :meth:`add_rule` / :meth:`add_rewrite` compile term-level
  rules (``repro.engine.rule``) into flat conjunctive queries.
* **Running** — :meth:`run` drives the semi-naïve scheduler
  (``repro.engine.scheduler``, Section 4.3); :meth:`rebuild` restores
  congruence closure (``repro.engine.rebuild``, Section 4).
* **Queries** — :meth:`query`, :meth:`check`, :meth:`check_equal`
  (e-matching via relational joins, Section 5.1).
* **Extraction** — :meth:`extract` returns a minimum-cost term for an
  e-class, the standard equality-saturation cost extraction.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.builtins import PrimitiveRegistry, default_registry
from ..core.database import Table
from ..core.genericjoin import search_generic, search_generic_adhoc
from ..core.index import plan_query
from ..core.proofs import EXPLICIT, Explanation, Justification
from ..core.query import Query, Substitution, search_indexed
from ..core.schema import MERGE_ERROR, MERGE_UNION, FunctionDecl, RunReport
from ..core.terms import Term, TermApp, TermLit, TermLike, TermVar, as_term
from ..core.unionfind import UnionFind
from ..core.values import BUILTIN_SORTS, UNIT, UNIT_VALUE, EqSort, Sort, Value, from_python
from .actions import Action, Delete, Expr, Let, Set, Union
from .budget import Budget
from .errors import CheckError, EGraphError, ExtractError, MergeError
from .program import RuleExec
from .rebuild import rebuild as _rebuild
from .rule import DEFAULT_RULESET, CompiledRule, Fact, Rule, compile_facts, compile_rule
from .rule import birewrite as _birewrite
from .rule import rewrite as _rewrite
from .schedule import Schedule, Seq
from .scheduler import Scheduler

Key = Tuple[Value, ...]

#: Signature shared by the search strategies (``search_generic`` takes an
#: extra keyword, hence the permissive parameter spec).
SearchFn = Callable[..., Iterator[Substitution]]

#: Available join strategies for query search (Section 5.1: any relational
#: join algorithm implements e-matching over the canonical database).
SEARCH_STRATEGIES: Dict[str, SearchFn] = {
    "indexed": search_indexed,
    "generic": search_generic,
    "generic-adhoc": search_generic_adhoc,
}

#: Strategies that consume the persistent column-trie indexes; the engine
#: registers each compiled rule's orderings with the tables for these.
_TRIE_INDEX_STRATEGIES = frozenset({"generic"})


class EGraph:
    """An egglog engine instance.

    ``strategy`` selects the join algorithm used for rule search:
    ``"indexed"`` (index-nested-loop, the default), ``"generic"``
    (worst-case-optimal generic join over persistent incrementally
    maintained trie indexes, as in relational e-matching), or
    ``"generic-adhoc"`` (generic join rebuilding its tries on every
    execution — the pre-index baseline kept for benchmarking).

    ``proofs`` (default True) keeps a proof forest alongside the union-find
    so :meth:`explain` can answer *why* two terms are equal; disable it to
    shave the per-union bookkeeping when explanations are never needed.
    """

    def __init__(
        self,
        *,
        strategy: str = "indexed",
        registry: Optional[PrimitiveRegistry] = None,
        proofs: bool = True,
    ) -> None:
        self.uf = UnionFind(proofs=proofs)
        #: Ambient justification attached to unions whose call site doesn't
        #: pass one explicitly — the scheduler sets it to the firing rule
        #: around the apply phase and rebuilding sets it to the congruence
        #: step around each table repair (see :meth:`set_union_reason`).
        self._reason: Justification = EXPLICIT
        #: Proof-node log: ``(func, key-as-first-inserted) -> raw output``.
        #: Rebuilding canonicalizes rows and merges congruent ones, which
        #: destroys the original e-node ids in the database; explanations
        #: need them (the proof forest's edges join *original* ids), so
        #: every eq-sorted insertion is remembered here append-only.  None
        #: when proofs are disabled.
        self._proof_log: Optional[Dict[Tuple[str, Key], Value]] = (
            {} if proofs else None
        )
        self.registry = registry if registry is not None else default_registry()
        self.sorts: Dict[str, Sort] = dict(BUILTIN_SORTS)
        #: Names of declared eq-sorts — the canonicalize fast path tests
        #: membership here instead of a dict lookup plus attribute access.
        self._eq_sorts: set = {
            name for name, sort in self.sorts.items() if sort.is_eq_sort
        }
        self.decls: Dict[str, FunctionDecl] = {}
        self.tables: Dict[str, Table] = {}
        self.rules: Dict[str, CompiledRule] = {}
        self.rulesets: Dict[str, List[str]] = {DEFAULT_RULESET: []}
        #: Current semi-naïve timestamp; rows written now carry this stamp.
        self.timestamp = 0
        self._updates = 0
        #: Bumped whenever compiled executors may hold stale references
        #: (push/pop, rule replacement); see :meth:`rule_exec`.
        self._compile_epoch = 0
        #: Per-function compiled merge-resolution closures (see merge_fn).
        self._merge_fns: Dict[str, Callable[[Value, Value], Value]] = {}
        #: Per-function eq-sorted column lists (see eq_columns).
        self._eq_cols: Dict[str, List[Tuple[int, str]]] = {}
        self.scheduler = Scheduler(self)
        self._snapshots: List[dict] = []
        self.set_strategy(strategy)

    # -- strategy -------------------------------------------------------------

    @property
    def strategy(self) -> str:
        """The active join strategy; assigning switches it (see set_strategy)."""
        return self._strategy

    @strategy.setter
    def strategy(self, name: str) -> None:
        self.set_strategy(name)

    def set_strategy(self, name: str) -> None:
        """Switch the join strategy mid-session.

        Compiled rule executors are cached per strategy, so switching picks
        (or builds) the matching plan — no stale cross-strategy state.
        Switching to a trie-index strategy registers every compiled rule's
        orderings so the next search runs on maintained indexes.
        """
        if name not in SEARCH_STRATEGIES:
            raise EGraphError(
                f"unknown search strategy {name!r}; pick one of "
                f"{sorted(SEARCH_STRATEGIES)}"
            )
        self._strategy = name
        self._search_fn = SEARCH_STRATEGIES[name]
        #: True when rule search consumes persistent trie indexes; the
        #: engine then registers each compiled rule's orderings up front.
        self.uses_trie_indexes = name in _TRIE_INDEX_STRATEGIES
        if self.uses_trie_indexes:
            for rule in self.rules.values():
                self.register_rule_indexes(rule)

    # -- compiled executors ---------------------------------------------------

    @property
    def compile_epoch(self) -> int:
        """Monotone counter invalidating compiled plans/programs.

        Push/pop and rule replacement bump it: compiled closures capture
        table and declaration objects those operations may swap out.
        """
        return self._compile_epoch

    def invalidate_compiled(self) -> None:
        """Invalidate every cached compiled executor and merge closure."""
        self._compile_epoch += 1
        self._merge_fns.clear()
        self._eq_cols.clear()

    def eq_columns(self, decl: FunctionDecl) -> List[Tuple[int, str]]:
        """The eq-sorted columns of ``decl`` as ``(column, sort)`` pairs.

        Column ``arity`` is the output.  Cached per function — rebuilding
        consults this once per repair round per table.
        """
        cached = self._eq_cols.get(decl.name)
        if cached is not None:
            return cached
        cols = [
            (i, s)
            for i, s in enumerate(decl.arg_sorts)
            if self.sorts[s].is_eq_sort
        ]
        if self.sorts[decl.out_sort].is_eq_sort:
            cols.append((decl.arity, decl.out_sort))
        self._eq_cols[decl.name] = cols
        return cols

    def rule_exec(self, rule: CompiledRule) -> RuleExec:
        """The compiled executor for ``rule`` under the current strategy.

        Cached on the rule per strategy and pinned to the compile epoch;
        a stale or missing entry is recompiled on demand (lazily, so rules
        never run under one strategy cost nothing).
        """
        cached = rule.exec_cache.get(self._strategy)
        if cached is not None and cached.epoch == self._compile_epoch:
            return cached
        built = RuleExec(self, rule, self._strategy)
        rule.exec_cache[self._strategy] = built
        return built

    def merge_fn(self, decl: FunctionDecl) -> Callable[[Value, Value], Value]:
        """The compiled merge-resolution closure for ``decl``.

        Shared by ``set`` actions and rebuilding (both resolve conflicts
        through :func:`~repro.engine.actions.set_function_value`); the
        string/callable dispatch of ``resolve_merge`` happens once per
        function instead of once per conflict.
        """
        cached = self._merge_fns.get(decl.name)
        if cached is not None:
            return cached
        merge = decl.merge
        if merge == MERGE_UNION:
            fn = self.union_values
        elif merge == MERGE_ERROR:
            name = decl.name

            def error_merge(old: Value, new: Value) -> Value:
                raise MergeError(
                    f"merge conflict on {name}: {old!r} vs {new!r} "
                    f"(function declared with merge=\"error\")"
                )

            fn = error_merge
        elif callable(merge):
            name = decl.name
            user_merge = merge

            def call_merge(old: Value, new: Value) -> Value:
                merged = user_merge(old, new)
                if merged is None:
                    raise MergeError(
                        f"merge function of {name} failed on {old!r}, {new!r}"
                    )
                return merged

            fn = call_merge
        else:
            name, bad = decl.name, merge

            def bad_merge(old: Value, new: Value) -> Value:
                raise EGraphError(f"function {name} has unnormalized merge {bad!r}")

            fn = bad_merge
        self._merge_fns[decl.name] = fn
        return fn

    # -- change tracking ------------------------------------------------------

    @property
    def updates(self) -> int:
        """Monotone counter of database/union-find changes (saturation test)."""
        return self._updates

    def note_update(self) -> None:
        """Record that the database or equivalence relation changed."""
        self._updates += 1

    # -- declarations ---------------------------------------------------------

    def declare_sort(self, name: str) -> EqSort:
        """Declare an uninterpreted sort whose values can be unified (§3.3)."""
        if name in self.sorts:
            raise EGraphError(f"sort {name!r} already declared")
        sort = EqSort(name)
        self.sorts[name] = sort
        self._eq_sorts.add(name)
        return sort

    def function(
        self,
        name: str,
        arg_sorts: Sequence[str],
        out_sort: str,
        *,
        merge: object = None,
        default: object = None,
        cost: int = 1,
        unextractable: bool = False,
        is_datatype_constructor: bool = False,
        decl_site: str = "",
    ) -> FunctionDecl:
        """Declare a function symbol backed by a database table (§3.2).

        ``merge`` may be ``None`` (union for eq-sorted outputs, error
        otherwise — the paper's defaults), the strings ``"union"`` or
        ``"error"``, the name of a binary primitive (e.g. ``"min"``), or a
        callable ``(old, new) -> Value``.  ``decl_site`` is free-form
        provenance (``file:line``) echoed in later diagnostics.
        """
        if name in self.decls:
            existing = self.decls[name]
            where = f" (at {existing.decl_site})" if existing.decl_site else ""
            raise EGraphError(f"function {name!r} already declared{where}")
        if name in self.registry:
            raise EGraphError(f"function {name!r} collides with a primitive")
        for sort_name in tuple(arg_sorts) + (out_sort,):
            if sort_name not in self.sorts:
                raise EGraphError(f"unknown sort {sort_name!r} in declaration of {name!r}")
        decl = FunctionDecl(
            name=name,
            arg_sorts=tuple(arg_sorts),
            out_sort=out_sort,
            merge=self._normalize_merge(name, merge, out_sort),
            default=default,
            cost=cost,
            unextractable=unextractable,
            is_datatype_constructor=is_datatype_constructor,
            decl_site=decl_site,
        )
        self.decls[name] = decl
        self.tables[name] = Table(decl)
        return decl

    def relation(
        self, name: str, arg_sorts: Sequence[str], *, decl_site: str = ""
    ) -> FunctionDecl:
        """Declare a Datalog-style relation: a function with Unit output."""
        return self.function(name, arg_sorts, UNIT, decl_site=decl_site)

    def constructor(
        self,
        name: str,
        arg_sorts: Sequence[str],
        out_sort: str,
        *,
        cost: int = 1,
        decl_site: str = "",
    ) -> FunctionDecl:
        """Declare a datatype constructor (eq-sorted output, union merge)."""
        if not self.sorts.get(out_sort, EqSort("")).is_eq_sort or out_sort not in self.sorts:
            raise EGraphError(f"constructor {name!r} needs an eq-sort output, got {out_sort!r}")
        return self.function(
            name,
            arg_sorts,
            out_sort,
            cost=cost,
            is_datatype_constructor=True,
            decl_site=decl_site,
        )

    def _normalize_merge(self, name: str, merge: object, out_sort: str) -> object:
        out_is_eq = self.sorts[out_sort].is_eq_sort
        if merge is None:
            return MERGE_UNION if out_is_eq else MERGE_ERROR
        if merge == MERGE_UNION:
            if not out_is_eq:
                raise EGraphError(f"{name!r}: merge=\"union\" requires an eq-sort output")
            return MERGE_UNION
        if merge == MERGE_ERROR:
            return MERGE_ERROR
        if isinstance(merge, str):
            if merge not in self.registry:
                raise EGraphError(f"{name!r}: merge primitive {merge!r} is not registered")
            registry = self.registry
            prim_name = merge

            def prim_merge(old: Value, new: Value) -> Optional[Value]:
                return registry.call(prim_name, (old, new))

            # The primitive's name rides on the closure so snapshots can
            # serialize the merge as a name rather than an opaque callable.
            prim_merge.__repro_prim__ = prim_name  # type: ignore[attr-defined]
            return prim_merge
        if callable(merge):
            return merge
        raise EGraphError(f"{name!r}: cannot interpret merge {merge!r}")

    def is_table(self, name: str) -> bool:
        """True iff ``name`` is a declared function/relation (not a primitive)."""
        return name in self.decls

    # -- values ---------------------------------------------------------------

    def make_id(self, sort_name: str) -> Value:
        """Allocate a fresh e-class id of the given eq-sort (§3.3)."""
        sort = self.sorts.get(sort_name)
        if sort is None or not sort.is_eq_sort:
            raise EGraphError(f"make_id needs an eq-sort, got {sort_name!r}")
        return Value(sort_name, self.uf.make_set())

    def canonicalize(self, value: Value) -> Value:
        """Replace an eq-sorted value's id with its canonical representative."""
        # Index access: Value is a (sort, data) tuple and this is the
        # engine's hottest function — C-level indexing beats the property.
        sort = value[0]  # type: ignore[index]
        if sort not in self._eq_sorts:
            return value
        data = value[1]  # type: ignore[index]
        root = self.uf.find(data)
        return value if root == data else Value(sort, root)

    def union_values(
        self, a: Value, b: Value, reason: Optional[Justification] = None
    ) -> Value:
        """Merge two values: union e-class ids, require equality on primitives.

        ``reason`` justifies the union in the proof forest; when omitted the
        ambient reason applies (explicit union outside rule/rebuild scopes).
        The union-find receives the *original* ids, not their roots, so the
        proof forest records an edge between the e-nodes actually named.
        """
        sort = a[0]  # type: ignore[index]
        if sort != b[0]:  # type: ignore[index]
            raise EGraphError(f"cannot union values of different sorts: {a!r}, {b!r}")
        if sort not in self._eq_sorts:
            if a != b:
                raise EGraphError(f"cannot union distinct primitive values {a!r}, {b!r}")
            return a
        da, db = a[1], b[1]  # type: ignore[index]
        uf = self.uf
        before = uf.n_unions
        root = uf.union(da, db, reason if reason is not None else self._reason)
        if uf.n_unions != before:
            self.note_update()
        return Value(sort, root)

    def set_union_reason(self, reason: Justification) -> Justification:
        """Install the ambient union justification; returns the previous one.

        Callers must restore the previous reason in a ``finally`` block —
        the scheduler scopes it per applied rule and rebuilding scopes it
        per repaired table.
        """
        previous = self._reason
        self._reason = reason
        return previous

    # -- term evaluation ------------------------------------------------------

    def eval_term(
        self,
        term: Term,
        subst: Optional[Dict[str, Value]] = None,
        *,
        insert: bool = True,
    ) -> Optional[Value]:
        """Evaluate a term bottom-up against the database.

        With ``insert=True`` (the paper's get-or-default, §3.2) an
        application missing from its table is added with the function's
        default output — a fresh e-class id for eq-sorted outputs.  With
        ``insert=False`` the evaluation is a pure lookup and returns None as
        soon as any sub-term is absent.
        """
        if isinstance(term, TermLit):
            return term.value
        if isinstance(term, TermVar):
            if subst is None or term.name not in subst:
                raise EGraphError(f"unbound variable {term.name!r} in term evaluation")
            return self.canonicalize(subst[term.name])
        if isinstance(term, TermApp):
            args: List[Value] = []
            for arg in term.args:
                value = self.eval_term(arg, subst, insert=insert)
                if value is None:
                    return None
                args.append(self.canonicalize(value))
            decl = self.decls.get(term.func)
            if decl is not None:
                return self._apply_function(decl, tuple(args), insert)
            result = self.registry.call(term.func, tuple(args))
            if result is None:
                if insert:
                    raise EGraphError(
                        f"primitive {term.func!r} failed on {tuple(args)!r}"
                    )
                return None
            return result
        raise EGraphError(f"cannot evaluate {term!r}")

    def _apply_function(
        self, decl: FunctionDecl, key: Key, insert: bool
    ) -> Optional[Value]:
        table = self.tables[decl.name]
        existing = table.get(key)
        if existing is not None:
            return self.canonicalize(existing)
        if not insert:
            return None
        value = self._default_value(decl, key)
        table.put(key, self.canonicalize(value), self.timestamp)
        self.record_node(decl.name, key, value)
        self.note_update()
        return value

    def record_node(self, func: str, key: Key, value: Value) -> None:
        """Log an eq-sorted insertion's raw output id for proof production.

        No-op when proofs are disabled or the output is primitive.  The
        first recording wins: the log preserves the term's *original*
        e-node id even after rebuilding rewrites or merges its row.
        """
        log = self._proof_log
        if log is not None and value[0] in self._eq_sorts:  # type: ignore[index]
            log.setdefault((func, key), value)

    def _default_value(self, decl: FunctionDecl, key: Key) -> Value:
        default = decl.default
        if default is None:
            out = self.sorts[decl.out_sort]
            if out.is_eq_sort:
                return self.make_id(decl.out_sort)
            if decl.out_sort == UNIT:
                return UNIT_VALUE
            raise EGraphError(
                f"function {decl.name!r} has a primitive output and no default; "
                f"use a `set` action or declare default="
            )
        if callable(default):
            value = default(key)
            if not isinstance(value, Value):
                value = from_python(value)
            return value
        if isinstance(default, Value):
            return default
        return from_python(default)

    def add(self, term: TermLike) -> Value:
        """Insert a ground term (and all sub-terms); return its value."""
        value = self.eval_term(as_term(term))
        assert value is not None  # insert=True never returns None
        return value

    def lookup(self, term: TermLike) -> Optional[Value]:
        """Pure lookup of a ground term; None if any sub-term is absent."""
        self._ensure_canonical()
        return self.eval_term(as_term(term), insert=False)

    def union(self, lhs: TermLike, rhs: TermLike) -> Value:
        """Assert that two ground terms denote the same e-class (§3.3)."""
        return self.union_values(self.add(lhs), self.add(rhs))

    def are_equal(self, lhs: TermLike, rhs: TermLike) -> bool:
        """True iff both terms are present and denote equal (canonical) values."""
        a, b = self.lookup(lhs), self.lookup(rhs)
        if a is None or b is None:
            return False
        return self.canonicalize(a) == self.canonicalize(b)

    # -- rules ----------------------------------------------------------------

    def add_rule(self, rule: Rule) -> str:
        """Compile and register a rule; returns the rule's (unique) name."""
        compiled = compile_rule(rule, self.is_table, default_name=f"rule#{len(self.rules)}")
        if compiled.name in self.rules:
            raise EGraphError(f"rule {compiled.name!r} already registered")
        self._validate_symbols(compiled.query, f"rule {compiled.name!r}")
        self._validate_actions(compiled.actions, f"rule {compiled.name!r}")
        self.rules[compiled.name] = compiled
        self.rulesets.setdefault(compiled.ruleset, []).append(compiled.name)
        if self.uses_trie_indexes:
            self.register_rule_indexes(compiled)
        return compiled.name

    def register_rule_indexes(self, rule: CompiledRule) -> None:
        """Register the rule's planned trie orderings with its tables.

        The plan is structural (deterministic per query), so registering at
        compile time and searching later agree on the orderings.  Atoms with
        repeated variables have no spec and keep using the ad-hoc trie path.
        """
        plan = plan_query(rule.query)
        for atom, spec in zip(rule.query.atoms, plan.specs):
            if spec is None:
                continue
            table = self.tables.get(atom.func)
            if table is not None:
                table.ensure_trie(spec.order)

    def add_rules(self, *rules: Rule) -> List[str]:
        """Register several rules; returns their names."""
        return [self.add_rule(rule) for rule in rules]

    def replace_rule(self, rule: Rule) -> str:
        """Recompile and swap a registered rule in place (same name).

        The rule keeps its position in its ruleset, but its semi-naïve
        watermark resets to zero — an edited body must re-search the full
        database, not just the delta since the old rule last ran.  The
        fresh :class:`CompiledRule` carries an empty executor cache, so any
        compiled plan or action program of the old definition is unreachable
        (no stale-slot reads).
        """
        if rule.name is None:
            raise EGraphError("replace_rule needs a named rule")
        existing = self.rules.get(rule.name)
        if existing is None:
            raise EGraphError(f"cannot replace unknown rule {rule.name!r}")
        if rule.ruleset != existing.ruleset:
            raise EGraphError(
                f"cannot move rule {rule.name!r} from ruleset "
                f"{existing.ruleset!r} to {rule.ruleset!r} while replacing it"
            )
        compiled = compile_rule(rule, self.is_table, default_name=rule.name)
        self._validate_symbols(compiled.query, f"rule {compiled.name!r}")
        self._validate_actions(compiled.actions, f"rule {compiled.name!r}")
        self.rules[compiled.name] = compiled
        if self.uses_trie_indexes:
            self.register_rule_indexes(compiled)
        return compiled.name

    def add_rewrite(
        self,
        lhs: TermLike,
        rhs: TermLike,
        *,
        conditions: Sequence[Fact] = (),
        name: Optional[str] = None,
        ruleset: str = DEFAULT_RULESET,
        bidirectional: bool = False,
    ) -> List[str]:
        """Register ``lhs => rhs`` (and the reverse when ``bidirectional``)."""
        if bidirectional:
            return self.add_rules(
                *_birewrite(lhs, rhs, conditions=conditions, name=name, ruleset=ruleset)
            )
        return self.add_rules(
            _rewrite(lhs, rhs, conditions=conditions, name=name, ruleset=ruleset)
        )

    # -- running --------------------------------------------------------------

    def run(
        self,
        limit: int = 1,
        *,
        ruleset: str = DEFAULT_RULESET,
        deadline_s: Optional[float] = None,
        max_nodes: Optional[int] = None,
    ) -> RunReport:
        """Run up to ``limit`` scheduler iterations (§4.3); see RunReport.

        ``deadline_s`` (wall-clock seconds from now) and ``max_nodes`` (cap
        on :meth:`node_count`) bound the run: the scheduler checks them
        between iterations and stops cleanly with the partial report's
        ``stopped_reason`` set to ``"deadline"`` or ``"max-nodes"``.
        """
        return self.scheduler.run(
            limit, ruleset, Budget.of(deadline_s=deadline_s, max_nodes=max_nodes)
        )

    def run_schedule(
        self,
        *schedules: Schedule,
        deadline_s: Optional[float] = None,
        max_nodes: Optional[int] = None,
    ) -> RunReport:
        """Run schedule combinators (``run-schedule``): saturate/seq/repeat.

        Multiple arguments run in sequence; see :mod:`repro.engine.schedule`.
        The optional budget spans the *whole* schedule (one deadline across
        every combinator), with the same between-iteration semantics as
        :meth:`run`.
        """
        return self.scheduler.run_schedule(
            Seq(tuple(schedules)),
            Budget.of(deadline_s=deadline_s, max_nodes=max_nodes),
        )

    def node_count(self) -> int:
        """Total rows across all tables — the size a ``max_nodes`` budget caps.

        Every e-node is one table row (§3.2: the e-graph *is* the database),
        so this is the natural "number of nodes" measure.
        """
        return sum(len(table) for table in self.tables.values())

    def rebuild(self) -> int:
        """Restore congruence closure (§4); returns the number of repair rounds."""
        return _rebuild(self)

    def _ensure_canonical(self) -> None:
        if self.uf.has_dirty:
            _rebuild(self)

    # -- push / pop -----------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Capture the full observable engine state as an opaque snapshot.

        Everything observable is captured: the union-find, every table's
        rows, declarations, rules and their semi-naïve watermarks, the
        timestamp, and the update counter.  The snapshot is *out of band* —
        it does not touch the :meth:`push`/:meth:`pop` stack, so holders
        (the session layer's transactional batches) can roll back without
        disturbing client-visible push/pop pairing.  Compiled executors are
        invalidated on capture, mirroring :meth:`push`: plans minted before
        the capture must not survive a later :meth:`restore_state`.
        """
        state = {
            "uf": self.uf.snapshot(),
            "sorts": dict(self.sorts),
            "decls": dict(self.decls),
            "tables": {name: table.snapshot() for name, table in self.tables.items()},
            "rules": dict(self.rules),
            "watermarks": {name: rule.last_run for name, rule in self.rules.items()},
            "rulesets": {name: list(rules) for name, rules in self.rulesets.items()},
            "timestamp": self.timestamp,
            "updates": self._updates,
            "proof_log": (
                dict(self._proof_log) if self._proof_log is not None else None
            ),
        }
        self.invalidate_compiled()
        return state

    def restore_state(self, snap: dict) -> None:
        """Reinstall a :meth:`snapshot_state` capture, discarding all changes
        made since.  E-class ids allocated after the capture become invalid.

        The capture survives the restore intact: every container is
        installed as a defensive copy (mirroring ``UnionFind.restore`` and
        ``Table.restore``), so mutations made after one restore can never
        leak into a second restore of the same snapshot — a pinned
        transaction snapshot or push-stack entry stays pristine even when
        a ``pop`` runs inside an aborted batch.
        """
        self.uf.restore(snap["uf"])
        self.sorts = dict(snap["sorts"])
        self.decls = dict(snap["decls"])
        # Tables declared after the capture are dropped; surviving Table
        # objects are restored in place (rules hold no table refs, but
        # this keeps any external handles coherent).  A table present at
        # capture but gone now (an in-batch ``load`` replaced the schema)
        # is recreated from its declaration.
        self.tables = {
            name: self.tables[name] for name in snap["tables"] if name in self.tables
        }
        for name, state in snap["tables"].items():
            table = self.tables.get(name)
            if table is None:
                table = self.tables[name] = Table(self.decls[name])
            table.restore(state)
        self.rules = dict(snap["rules"])
        for name, last_run in snap["watermarks"].items():
            self.rules[name].last_run = last_run
        self.rulesets = {name: list(rules) for name, rules in snap["rulesets"].items()}
        self.timestamp = snap["timestamp"]
        self._updates = snap["updates"]
        if self._proof_log is not None and snap["proof_log"] is not None:
            # Nodes logged after the capture reference ids that no longer
            # exist once the union-find snapshot is reinstalled.
            self._proof_log = dict(snap["proof_log"])
        self._eq_sorts = {
            name for name, sort in self.sorts.items() if sort.is_eq_sort
        }
        self.invalidate_compiled()

    def push(self) -> int:
        """Save the full engine state on a stack (the ``push`` command, §3.1).

        Returns the new stack depth.  See :meth:`snapshot_state` for what
        is captured.
        """
        self._snapshots.append(self.snapshot_state())
        return len(self._snapshots)

    def pop(self, count: int = 1) -> int:
        """Restore the most recent :meth:`push` state(s); returns stack depth.

        Declarations, rules, rows, and unions made since the matching push
        all disappear.  E-class ids allocated since then become invalid.
        """
        if count < 1:
            raise EGraphError(f"pop count must be positive, got {count}")
        if count > len(self._snapshots):
            raise EGraphError(
                f"pop {count} without matching push (stack depth {len(self._snapshots)})"
            )
        for _ in range(count):
            self.restore_state(self._snapshots.pop())
        return len(self._snapshots)

    # -- querying / checking --------------------------------------------------

    def search(
        self, query: Query, *, delta_atom: Optional[int] = None, since: int = 0
    ) -> Iterator[Substitution]:
        """Run a compiled conjunctive query with the configured join strategy."""
        return self._search_fn(
            self.tables, self.registry, query, delta_atom=delta_atom, since=since
        )

    def _validate_symbols(self, query: Query, context: str) -> None:
        """Reject symbols that are neither declared functions nor primitives.

        Flattening routes unknown applications to the primitive path, where
        they would silently match nothing — a typo'd function name must be
        an error instead.
        """
        for atom in query.prims:
            if atom.op not in self.registry:
                raise EGraphError(
                    f"{context} uses unknown symbol {atom.op!r} "
                    f"(neither a declared function nor a primitive)"
                )

    def _validate_actions(self, actions: Sequence[Action], context: str) -> None:
        """Reject typo'd symbols in action terms at registration time.

        Without this, an unknown application in an action would only fail
        (as a misleading "primitive failed" error) the first time the rule
        fires — or never, if the rule body never matches.
        """
        for action in actions:
            terms: List[Term] = []
            if isinstance(action, Let):
                terms = [action.expr]
            elif isinstance(action, Union):
                terms = [action.lhs, action.rhs]
            elif isinstance(action, Set):
                self._require_table(action.call.func, context)
                terms = list(action.call.args) + [action.value]
            elif isinstance(action, Delete):
                self._require_table(action.call.func, context)
                terms = list(action.call.args)
            elif isinstance(action, Expr):
                terms = [action.expr]
            for term in terms:
                self._validate_term_symbols(term, context)

    def _require_table(self, name: str, context: str) -> None:
        if name not in self.decls:
            raise EGraphError(f"{context} targets unknown function {name!r}")

    def _validate_term_symbols(self, term: Term, context: str) -> None:
        if isinstance(term, TermApp):
            if term.func not in self.decls and term.func not in self.registry:
                raise EGraphError(
                    f"{context} uses unknown symbol {term.func!r} "
                    f"(neither a declared function nor a primitive)"
                )
            for arg in term.args:
                self._validate_term_symbols(arg, context)

    def query(self, *facts: Fact) -> List[Substitution]:
        """Match term-level facts against the database; return substitutions."""
        self._ensure_canonical()
        compiled = compile_facts(list(facts), self.is_table)
        self._validate_symbols(compiled, "query")
        return [dict(match) for match in self.search(compiled)]

    def check(self, *facts: Fact) -> int:
        """Require at least one match for ``facts`` (the ``check`` command).

        Returns the number of matches; raises :class:`CheckError` on zero.
        """
        matches = self.query(*facts)
        if not matches:
            raise CheckError(f"check failed: no matches for {facts!r}")
        return len(matches)

    def check_equal(self, lhs: TermLike, rhs: TermLike) -> bool:
        """Require that two ground terms denote the same e-class."""
        if not self.are_equal(lhs, rhs):
            raise CheckError(f"check failed: {as_term(lhs)} is not equal to {as_term(rhs)}")
        return True

    # -- extraction -----------------------------------------------------------

    def extract(self, term: TermLike) -> Term:
        """Return a minimum-cost term equivalent to ``term``."""
        return self.extract_with_cost(term)[1]

    def extract_with_cost(self, term: TermLike) -> Tuple[int, Term]:
        """Extract the cheapest representative of ``term``'s e-class.

        The cost of a candidate node ``f(c1, ..., cn)`` is ``f``'s declared
        per-node cost plus the best costs of its eq-sorted children
        (primitive arguments are free).  Costs are computed for every
        e-class by a bottom-up fixpoint over the database, then the term is
        reassembled top-down.
        """
        self._ensure_canonical()
        value = self.eval_term(as_term(term))
        assert value is not None
        sort = self.sorts.get(value.sort)
        if sort is None or not sort.is_eq_sort:
            return 0, TermLit(value)
        best = self._best_nodes()
        return self._term_of(best, value, frozenset())

    def _best_nodes(self) -> Dict[int, Tuple[int, str, Key]]:
        """Per canonical e-class: the cheapest (cost, function, key) node."""
        best: Dict[int, Tuple[int, str, Key]] = {}
        eq_cols: Dict[str, List[int]] = {
            name: [
                i
                for i, s in enumerate(decl.arg_sorts)
                if self.sorts[s].is_eq_sort
            ]
            for name, decl in self.decls.items()
        }
        changed = True
        while changed:
            changed = False
            for name, table in self.tables.items():
                decl = table.decl
                if decl.unextractable or not self.sorts[decl.out_sort].is_eq_sort:
                    continue
                for key, row in table.data.items():
                    cost = decl.cost
                    known = True
                    for col in eq_cols[name]:
                        child = best.get(self.uf.find(key[col].data))
                        if child is None:
                            known = False
                            break
                        cost += child[0]
                    if not known:
                        continue
                    class_id = self.uf.find(row.value.data)
                    current = best.get(class_id)
                    if current is None or cost < current[0]:
                        best[class_id] = (cost, name, key)
                        changed = True
        return best

    def _term_of(
        self,
        best: Dict[int, Tuple[int, str, Key]],
        value: Value,
        visiting: frozenset,
    ) -> Tuple[int, Term]:
        sort = self.sorts.get(value.sort)
        if sort is None or not sort.is_eq_sort:
            return 0, TermLit(value)
        class_id = self.uf.find(value.data)
        if class_id in visiting:
            raise ExtractError(f"cycle while extracting e-class {class_id}")
        node = best.get(class_id)
        if node is None:
            raise ExtractError(f"no extractable node for e-class {class_id}")
        cost, func, key = node
        visiting = visiting | {class_id}
        children = tuple(self._term_of(best, child, visiting)[1] for child in key)
        return cost, TermApp(func, children)

    # -- explanation (proof production) ----------------------------------------

    def explain(self, lhs: TermLike, rhs: TermLike) -> Explanation:
        """Why are ``lhs`` and ``rhs`` equal?  A minimal justified chain.

        Both terms must already be in the database (pure lookup — explain
        never inserts) and denote the same e-class of an eq-sort.  The
        returned :class:`~repro.core.proofs.Explanation` is the unique proof
        forest path between the two e-nodes: each step names the rule,
        congruence function, or explicit union that merged its endpoints.
        Raises :class:`EGraphError` when proofs are disabled, a term is
        absent, or the terms are not equal.
        """
        if self.uf.proofs is None:
            raise EGraphError(
                "proofs are disabled on this EGraph (construct with proofs=True)"
            )
        self._ensure_canonical()
        lt, rt = as_term(lhs), as_term(rhs)
        a = self.eval_term(lt, insert=False)
        if a is None:
            raise EGraphError(f"explain: term {lt} is not in the e-graph")
        b = self.eval_term(rt, insert=False)
        if b is None:
            raise EGraphError(f"explain: term {rt} is not in the e-graph")
        sort = a.sort
        if sort != b.sort:
            raise EGraphError(
                f"explain: terms have different sorts ({sort} vs {b.sort})"
            )
        if sort not in self._eq_sorts:
            raise EGraphError(
                f"explain: sort {sort!r} is primitive; only eq-sorted terms "
                f"carry proofs"
            )
        if self.uf.find(a.data) != self.uf.find(b.data):
            raise EGraphError(f"explain: {lt} and {rt} are not equal")
        # The lookups above are class-level (canonicalized); the chain runs
        # between the terms' original e-nodes, recovered from the node log.
        na, nb = self._node_of(lt), self._node_of(rt)
        assert na is not None and nb is not None  # both terms are present
        steps = self.uf.proofs.explain_path(na.data, nb.data)
        if steps is None:  # pragma: no cover - forest tracks every union
            raise EGraphError(
                f"explain: proof forest has no path between {lt} and {rt}"
            )
        return Explanation(sort, na.data, nb.data, tuple(steps))

    def _node_of(self, term: Term) -> Optional[Value]:
        """Resolve a ground term to its original e-node value (raw id).

        Children resolve recursively to raw node ids; the exact raw key hits
        the proof log when the term was inserted before its children were
        merged away.  Otherwise the current row under the canonical key
        supplies a (still class-correct) member id.
        """
        if isinstance(term, TermLit):
            return term.value
        if not isinstance(term, TermApp):
            raise EGraphError(f"explain requires a ground term, got {term!r}")
        decl = self.decls.get(term.func)
        if decl is None:
            return self.eval_term(term, insert=False)  # primitive application
        args: List[Value] = []
        for arg in term.args:
            value = self._node_of(arg)
            if value is None:
                return None
            args.append(value)
        raw_key = tuple(args)
        log = self._proof_log
        if log is not None:
            hit = log.get((term.func, raw_key))
            if hit is not None:
                return hit
        canon_key = tuple([self.canonicalize(v) for v in raw_key])
        table = self.tables.get(term.func)
        if table is None:
            return None
        return table.get(canon_key)

    # -- persistence (repro.serialize) -----------------------------------------

    def save(
        self,
        path: str,
        *,
        surfaces: Optional[dict] = None,
        replay: Optional[dict] = None,
    ) -> dict:
        """Write the entire engine state to a ``repro.snapshot/v1`` file.

        Everything observable is captured — declarations, rows, the
        union-find with its proof forest, rules and their semi-naïve
        watermarks, the scheduler epoch — but no derived state (indexes,
        compiled executors) and not the push/pop stack.  ``surfaces`` and
        ``replay`` are optional frontend-owned sections passed through
        verbatim.  Returns the written document.
        """
        from ..serialize import save_engine

        return save_engine(self, path, surfaces=surfaces, replay=replay)

    @classmethod
    def from_snapshot(
        cls,
        path: str,
        *,
        strategy: Optional[str] = None,
        registry: Optional[PrimitiveRegistry] = None,
    ) -> "EGraph":
        """Reconstruct an engine from a snapshot file.

        ``strategy`` overrides the recorded join strategy (snapshots carry
        no strategy-specific state, so they are freely portable between
        strategies); ``registry`` substitutes a custom primitive registry,
        which must provide every primitive the snapshot's rules and merges
        reference.
        """
        from ..serialize import load_engine

        engine, _document = load_engine(path, strategy=strategy, registry=registry)
        return engine

    def load(self, path: str, *, strategy: Optional[str] = None) -> dict:
        """Replace this engine's state with a snapshot, in place.

        External references to this ``EGraph`` object stay valid and see
        the loaded state.  The push/pop stack empties (snapshots never
        include it) and the current registry is kept.  Returns the loaded
        document (callers can inspect its ``surfaces``/``replay`` sections).
        """
        from ..serialize import load_engine

        fresh, document = load_engine(
            path,
            strategy=strategy if strategy is not None else self._strategy,
            registry=self.registry,
        )
        self.__dict__.update(fresh.__dict__)
        # The fresh engine's scheduler points at ``fresh``; rebind so runs
        # drive *this* object (they now share no other state).
        self.scheduler = Scheduler(self)
        self._snapshots = []
        return document

    def fork(self, *, strategy: Optional[str] = None) -> "EGraph":
        """An independent copy of this engine, by structural state copy.

        Semantically identical to round-tripping through an in-memory
        ``repro.snapshot/v1`` document (``engine_document(fork)`` is
        byte-identical to ``engine_document(parent)``, which the test suite
        pins), but built by copying state directly — the same structural
        sharing :meth:`push` relies on (rows and values are immutable, so
        containers are copied and their contents shared).  That makes a
        fork a few dict/list copies instead of thousands of JSON decodes:
        the session service's hot path.

        The fork is deeply isolated — rows, union-find, proof forest,
        rules, and watermarks; mutating either engine never affects the
        other — while derived state (indexes, compiled executors, merge-fn
        caches) is rebuilt lazily, exactly as after a snapshot load.  The
        push/pop stack does not carry over.

        The fork *shares* this engine's primitive registry, which keeps the
        process-level compiled-plan cache (``repro.engine.compilecache``)
        hot: sessions forked from one base reuse the base's query plans
        instead of recompiling per fork.

        ``strategy`` overrides the fork's join strategy (defaults to the
        parent's).
        """
        child = EGraph(
            strategy=strategy if strategy is not None else self._strategy,
            registry=self.registry,
            proofs=self.uf.proofs is not None,
        )
        child.uf.restore(self.uf.snapshot())
        child._proof_log = (
            dict(self._proof_log) if self._proof_log is not None else None
        )
        child.sorts = dict(self.sorts)
        child._eq_sorts = set(self._eq_sorts)
        child.decls = dict(self.decls)
        for name, table in self.tables.items():
            copy = Table(table.decl)
            copy.restore(table.snapshot())
            child.tables[name] = copy
        child.rules = {
            name: CompiledRule(
                name=rule.name,
                query=rule.query,
                actions=rule.actions,
                ruleset=rule.ruleset,
                last_run=rule.last_run,
            )
            for name, rule in self.rules.items()
        }
        child.rulesets = {name: list(rules) for name, rules in self.rulesets.items()}
        child.timestamp = self.timestamp
        child._updates = self._updates
        return child

    # -- introspection --------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """A snapshot of engine size: per-table row counts, classes, unions."""
        return {
            "timestamp": self.timestamp,
            "updates": self._updates,
            "n_unions": self.uf.n_unions,
            "n_ids": len(self.uf),
            "n_classes": self.uf.n_classes(),
            "tables": {name: len(table) for name, table in self.tables.items()},
            "rules": sorted(self.rules),
        }

    def table_rows(self, name: str) -> Iterable[Tuple[Key, Value]]:
        """Convenience iterator over one function's (key, output) pairs."""
        if name not in self.tables:
            raise EGraphError(f"unknown function {name!r}")
        for key, value, _ts in self.tables[name].rows():
            yield key, value
