"""Typed handles and expression nodes for the embedded DSL.

Three kinds of objects make up the DSL's expression layer:

* :class:`Sort` — a handle returned by ``eg.sort("Math")`` (or one of the
  built-in handles ``i64``, ``f64``, ``Bool``, ``String``, ``Unit``,
  ``Rational``).  Eq-sorts carry an *operator table* so ``x * y`` can
  dispatch to a declared function (``eg.function("Mul", ..., op="*")``).
* :class:`Function` — a callable handle returned by ``eg.function`` /
  ``eg.relation`` / ``eg.constructor``.  Calling it arity- and sort-checks
  the arguments (with literal widening, e.g. ``i64 -> f64``) and builds an
  expression node.
* :class:`Expr` — a :class:`~repro.core.terms.Term` paired with its
  inferred :class:`Sort`.  Python operators build bigger expressions
  (``x + y``, ``x < y``), ``==`` builds an equality *fact*, and
  ``.to(rhs)`` builds a rewrite.

Everything lowers to the existing ``repro.core.terms`` IR: an ``Expr`` is
accepted anywhere the engine takes a term because it implements the
``__term__`` coercion hook (:data:`repro.core.terms.TermLike`).
"""

from __future__ import annotations

import traceback
from typing import TYPE_CHECKING, Dict, Iterator, Optional, Tuple, Union

from ..core.builtins import PrimitiveRegistry, default_registry
from ..core.schema import FunctionDecl
from ..core.terms import Term, TermApp, TermLit, TermVar
from ..core.values import Value, coerce_literal, from_python
from .errors import (
    ArityError,
    DslError,
    DuplicateDeclarationError,
    SortMismatchError,
    StaleHandleError,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .egraph import EGraph
    from .rules import Eq, Rewrite


def caller_site() -> str:
    """``file:line`` of the nearest stack frame outside the DSL package.

    Used to stamp handles with their declaration site so later misuse
    (wrong arity, stale handle, duplicate operator) can point back at the
    line that declared them.  The path is shortened to its last two
    components — enough to identify the file without leaking absolute
    paths into error messages.
    """
    for frame in reversed(traceback.extract_stack()):
        path = frame.filename.replace("\\", "/")
        # Skip our own frames and synthetic interpreter frames, but keep
        # user-visible pseudo-files: a REPL/exec declaration still gets
        # "<stdin>:12" rather than "<unknown>".
        if "/repro/dsl/" in path or path.startswith("<frozen"):
            continue
        parts = [part for part in path.split("/") if part]
        return "/".join(parts[-2:]) + f":{frame.lineno}"
    return "<unknown>"


def expr_repr(term: Term) -> str:
    """Render a core term in DSL call syntax: ``Mul(Num(2), Var('a'))``.

    Variables print bare, literals as their Python payloads.  This is the
    canonical DSL notation: rebuilding an expression through handles and
    rendering it again yields the same string (the round-trip property the
    test suite checks).
    """
    if isinstance(term, TermVar):
        return term.name
    if isinstance(term, TermLit):
        return repr(term.value.data)
    if isinstance(term, TermApp):
        return f"{term.func}({', '.join(expr_repr(a) for a in term.args)})"
    raise DslError(f"cannot render {term!r} as a DSL expression")


#: Operator symbols a declared function may be bound to via ``op=``.
#: Binary symbols dispatch from the corresponding dunder on :class:`Expr`;
#: ``neg`` is unary ``-``.
SUPPORTED_OPERATORS = frozenset(
    {"+", "-", "*", "/", "%", "<<", ">>", "<", "<=", ">", ">=", "neg"}
)


class Sort:
    """A handle to a sort known to one :class:`~repro.dsl.EGraph`.

    ``owner`` is the declaring ``EGraph`` (``None`` for the shared built-in
    handles), ``decl_site`` the ``file:line`` of the declaration.  Eq-sorts
    additionally hold the operator table that ``Expr`` dunders dispatch
    through.
    """

    __slots__ = ("name", "is_eq_sort", "owner", "decl_site", "_ops")

    def __init__(
        self,
        name: str,
        *,
        is_eq_sort: bool,
        owner: Optional["EGraph"] = None,
        decl_site: str = "<builtin>",
    ) -> None:
        self.name = name
        self.is_eq_sort = is_eq_sort
        self.owner = owner
        self.decl_site = decl_site
        self._ops: Dict[str, "Function"] = {}

    def operator(self, symbol: str) -> Optional["Function"]:
        """The function bound to ``symbol`` on this sort, if any."""
        return self._ops.get(symbol)

    def bind_operator(self, symbol: str, fn: "Function") -> None:
        """Bind ``symbol`` (e.g. ``"*"``) to a declared function handle."""
        if symbol not in SUPPORTED_OPERATORS:
            raise DslError(
                f"cannot bind operator {symbol!r} on sort {self.name!r}; "
                f"supported operators: {', '.join(sorted(SUPPORTED_OPERATORS))}"
            )
        existing = self._ops.get(symbol)
        if existing is not None:
            raise DuplicateDeclarationError(
                f"sort {self.name!r} already binds operator {symbol!r} to "
                f"{existing.name!r} (declared at {existing.decl_site})"
            )
        self._ops[symbol] = fn

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        kind = "eq-sort" if self.is_eq_sort else "primitive"
        return f"<Sort {self.name} ({kind})>"


#: Shared handles for the engine's built-in primitive sorts.  These belong
#: to no particular ``EGraph`` and may be used in any declaration.
i64 = Sort("i64", is_eq_sort=False)
f64 = Sort("f64", is_eq_sort=False)
Bool = Sort("bool", is_eq_sort=False)
String = Sort("String", is_eq_sort=False)
Unit = Sort("Unit", is_eq_sort=False)
Rational = Sort("Rational", is_eq_sort=False)

BUILTIN_SORT_HANDLES: Dict[str, Sort] = {
    s.name: s for s in (i64, f64, Bool, String, Unit, Rational)
}

SortLike = Union[Sort, str]

#: Registry used only for *sort inference* of primitive applications
#: (``+``, ``<``, ...).  Inference is static; evaluation always goes
#: through the owning engine's registry.
_PRIM_SORTS: PrimitiveRegistry = default_registry()


def builtin_sort_handle(name: str) -> Sort:
    """The shared handle for a primitive sort name (created on demand)."""
    handle = BUILTIN_SORT_HANDLES.get(name)
    if handle is None:
        handle = Sort(name, is_eq_sort=False)
        BUILTIN_SORT_HANDLES[name] = handle
    return handle


class Expr:
    """A sorted expression node: a core :class:`Term` plus its :class:`Sort`.

    Built by calling :class:`Function` handles, by :func:`var`/:func:`vars_`
    binders, by :func:`lit`, or by Python operators on existing nodes.
    ``==`` produces an equality fact (:class:`repro.dsl.rules.Eq`), ``!=``
    and the comparisons produce Bool-sorted guard expressions, and
    ``.to(rhs)`` produces a :class:`~repro.dsl.rules.Rewrite`.
    """

    __slots__ = ("term", "sort")

    def __init__(self, term: Term, sort: Sort) -> None:
        if not isinstance(term, Term):
            raise DslError(f"Expr needs a core Term, got {term!r}")
        self.term = term
        self.sort = sort

    def __term__(self) -> Term:
        """The ``repro.core.terms`` coercion hook: lower to the core IR."""
        return self.term

    def variables(self) -> Iterator[str]:
        return self.term.variables()

    def is_ground(self) -> bool:
        return self.term.is_ground()

    # -- operators ----------------------------------------------------------

    def _binary(self, symbol: str, other: object, *, reflected: bool = False) -> "Expr":
        if self.sort.is_eq_sort:
            fn = self.sort.operator(symbol)
            if fn is None:
                raise DslError(
                    f"sort {self.sort.name!r} has no {symbol!r} operator; declare a "
                    f"function with op={symbol!r} to enable it "
                    f"[sort declared at {self.sort.decl_site}]"
                )
            return fn(other, self) if reflected else fn(self, other)
        rhs = lift(other, self.sort, f"{symbol!r} operand")
        lhs, rhs = (rhs, self) if reflected else (self, rhs)
        out_name = _PRIM_SORTS.result_sort(symbol, (lhs.sort.name, rhs.sort.name))
        if out_name is None:
            raise SortMismatchError(
                f"primitive {symbol!r} is not defined on ({lhs.sort}, {rhs.sort})"
            )
        return Expr(TermApp(symbol, (lhs.term, rhs.term)), builtin_sort_handle(out_name))

    def __add__(self, other: object) -> "Expr":
        return self._binary("+", other)

    def __radd__(self, other: object) -> "Expr":
        return self._binary("+", other, reflected=True)

    def __sub__(self, other: object) -> "Expr":
        return self._binary("-", other)

    def __rsub__(self, other: object) -> "Expr":
        return self._binary("-", other, reflected=True)

    def __mul__(self, other: object) -> "Expr":
        return self._binary("*", other)

    def __rmul__(self, other: object) -> "Expr":
        return self._binary("*", other, reflected=True)

    def __truediv__(self, other: object) -> "Expr":
        return self._binary("/", other)

    def __rtruediv__(self, other: object) -> "Expr":
        return self._binary("/", other, reflected=True)

    def __mod__(self, other: object) -> "Expr":
        return self._binary("%", other)

    def __lshift__(self, other: object) -> "Expr":
        return self._binary("<<", other)

    def __rshift__(self, other: object) -> "Expr":
        return self._binary(">>", other)

    def __lt__(self, other: object) -> "Expr":
        return self._binary("<", other)

    def __le__(self, other: object) -> "Expr":
        return self._binary("<=", other)

    def __gt__(self, other: object) -> "Expr":
        return self._binary(">", other)

    def __ge__(self, other: object) -> "Expr":
        return self._binary(">=", other)

    def __neg__(self) -> "Expr":
        if self.sort.is_eq_sort:
            fn = self.sort.operator("neg")
            if fn is None:
                raise DslError(
                    f"sort {self.sort.name!r} has no unary '-' operator; declare a "
                    f"function with op=\"neg\" to enable it "
                    f"[sort declared at {self.sort.decl_site}]"
                )
            return fn(self)
        out_name = _PRIM_SORTS.result_sort("neg", (self.sort.name,))
        if out_name is None:
            raise SortMismatchError(f"unary '-' is not defined on sort {self.sort}")
        return Expr(TermApp("neg", (self.term,)), builtin_sort_handle(out_name))

    def __eq__(self, other: object) -> "Eq":  # type: ignore[override]
        """``lhs == rhs`` builds an equality *fact* for rule bodies / checks."""
        from .rules import Eq

        return Eq(self, lift(other, self.sort, "'==' right-hand side"))

    def __ne__(self, other: object) -> "Expr":  # type: ignore[override]
        """``lhs != rhs`` builds a Bool-sorted disequality guard."""
        rhs = lift(other, self.sort, "'!=' right-hand side")
        return Expr(TermApp("!=", (self.term, rhs.term)), builtin_sort_handle("bool"))

    # Identity hashing: ``__eq__`` builds facts rather than comparing, so
    # the default value-equality contract is intentionally broken.
    __hash__ = object.__hash__

    def __bool__(self) -> bool:
        raise DslError(
            f"a DSL expression ({self!r}) has no truth value; comparisons and "
            f"disequalities build guard expressions for rule bodies — pass "
            f"them to when()/check() instead of using them in a boolean "
            f"context"
        )

    def to(
        self,
        rhs: object,
        *conditions: object,
        name: Optional[str] = None,
        bidirectional: bool = False,
    ) -> "Rewrite":
        """``lhs.to(rhs, *conditions)``: a rewrite unioning lhs with rhs."""
        from .rules import Rewrite

        return Rewrite(
            self, rhs, conditions, name=name, bidirectional=bidirectional
        )

    def __repr__(self) -> str:
        return expr_repr(self.term)


ExprLike = Union[Expr, Term, Value, int, float, str, bool]


def lift(obj: object, expected: Sort, context: str, *, owner: str = "") -> Expr:
    """Coerce ``obj`` into an :class:`Expr` of sort ``expected``.

    Accepts existing expressions (sort-checked, literals widened via
    :func:`repro.core.values.coerce_literal`), raw core terms (trusted —
    the interop escape hatch), and plain Python scalars (lifted to
    literals).  ``owner`` is an optional ``[declared at ...]`` suffix for
    diagnostics.
    """
    suffix = f" {owner}" if owner else ""
    if isinstance(obj, Expr):
        if obj.sort.name == expected.name:
            return obj
        if isinstance(obj.term, TermLit):
            coerced = coerce_literal(obj.term.value, expected.name)
            if coerced is not None:
                return Expr(TermLit(coerced), expected)
        raise SortMismatchError(
            f"{context}: expected sort {expected.name!r}, got {obj.sort.name!r} "
            f"expression {obj!r}{suffix}"
        )
    if isinstance(obj, Term):
        # Raw core terms carry no sort; trust the caller (interop path).
        return Expr(obj, expected)
    if isinstance(obj, Value):
        coerced = coerce_literal(obj, expected.name)
        if coerced is None:
            raise SortMismatchError(
                f"{context}: expected sort {expected.name!r}, got value {obj!r}{suffix}"
            )
        return Expr(TermLit(coerced), expected)
    if expected.is_eq_sort:
        raise SortMismatchError(
            f"{context}: expected a {expected.name!r} expression, got plain "
            f"{type(obj).__name__} {obj!r} — apply one of the sort's constructors{suffix}"
        )
    try:
        value = from_python(obj)
    except TypeError as exc:
        raise SortMismatchError(f"{context}: {exc}{suffix}") from None
    coerced = coerce_literal(value, expected.name)
    if coerced is None:
        raise SortMismatchError(
            f"{context}: expected sort {expected.name!r}, got {type(obj).__name__} "
            f"literal {obj!r} (sort {value.sort!r}){suffix}"
        )
    return Expr(TermLit(coerced), expected)


class Function:
    """A callable handle to a declared function, relation, or constructor.

    Calling the handle checks arity and argument sorts *at the call site*
    and returns an :class:`Expr` of the declared output sort.  The handle
    stays pinned to the :class:`~repro.core.schema.FunctionDecl` it was
    created with: if the declaration disappears (popped snapshot), calls
    raise :class:`StaleHandleError` instead of silently rebuilding terms
    for a function the engine no longer knows.
    """

    __slots__ = ("_egraph", "decl", "arg_sorts", "out_sort", "decl_site")

    def __init__(
        self,
        egraph: "EGraph",
        decl: FunctionDecl,
        arg_sorts: Tuple[Sort, ...],
        out_sort: Sort,
        decl_site: str,
    ) -> None:
        self._egraph = egraph
        self.decl = decl
        self.arg_sorts = arg_sorts
        self.out_sort = out_sort
        self.decl_site = decl_site

    @property
    def name(self) -> str:
        return self.decl.name

    @property
    def arity(self) -> int:
        return len(self.arg_sorts)

    def signature(self) -> str:
        args = ", ".join(s.name for s in self.arg_sorts)
        return f"{self.name}({args}) -> {self.out_sort.name}"

    def _check_live(self) -> None:
        if self._egraph.engine.decls.get(self.name) is not self.decl:
            raise StaleHandleError(
                f"function {self.name!r} (declared at {self.decl_site}) no longer "
                f"exists on this EGraph — its declaration was popped or replaced"
            )

    def __call__(self, *args: object) -> Expr:
        self._check_live()
        if len(args) != self.arity:
            raise ArityError(
                f"{self.name} expects {self.arity} argument(s) — "
                f"{self.signature()} — got {len(args)} "
                f"[declared at {self.decl_site}]"
            )
        owner = f"[{self.name} declared at {self.decl_site}]"
        lowered = tuple(
            lift(arg, sort, f"{self.name} argument {i + 1}", owner=owner).term
            for i, (arg, sort) in enumerate(zip(args, self.arg_sorts))
        )
        return Expr(TermApp(self.name, lowered), self.out_sort)

    def rows(self) -> Iterator[Tuple[Tuple[Value, ...], Value]]:
        """Iterate the function's current ``(args, output)`` database rows."""
        self._check_live()
        yield from self._egraph.engine.table_rows(self.name)

    def __len__(self) -> int:
        self._check_live()
        return len(self._egraph.engine.tables[self.name])

    def __repr__(self) -> str:
        return f"<Function {self.signature()} at {self.decl_site}>"


def var(name: str, sort: Sort) -> Expr:
    """A pattern variable of the given sort."""
    if not name or not isinstance(name, str):
        raise DslError(f"variable name must be a non-empty string, got {name!r}")
    if name.startswith("$"):
        raise DslError(f"variable names starting with '$' are reserved, got {name!r}")
    return Expr(TermVar(name), sort)


def vars_(names: str, sort: Sort) -> Tuple[Expr, ...]:
    """Bind several pattern variables at once: ``x, y = vars_("x y", Math)``.

    ``names`` is split on whitespace and commas.  Always returns a tuple,
    even for a single name.
    """
    parts = [p for p in names.replace(",", " ").split() if p]
    if not parts:
        raise DslError(f"vars_ needs at least one variable name, got {names!r}")
    if len(set(parts)) != len(parts):
        raise DslError(f"vars_ got a repeated variable name in {names!r}")
    return tuple(var(p, sort) for p in parts)


def lit(value: object, sort: Optional[Sort] = None) -> Expr:
    """Lift a Python scalar to a literal expression (optionally coerced).

    Without ``sort`` the literal's sort follows the Python type (int ->
    i64, float -> f64, ...); with ``sort`` the usual widening coercions
    apply (``lit(1, f64)`` is the f64 literal ``1.0``).
    """
    if isinstance(value, Expr):
        return value if sort is None else lift(value, sort, "lit")
    try:
        v = from_python(value)  # type: ignore[arg-type]
    except TypeError as exc:
        raise SortMismatchError(f"lit: {exc}") from None
    if sort is None:
        return Expr(TermLit(v), builtin_sort_handle(v.sort))
    return lift(v, sort, "lit")
