"""Test suite for the egglog reproduction.

Run from the repo root with ``python -m pytest`` (the ``pyproject.toml``
pytest config puts ``src/`` on the import path) or with
``PYTHONPATH=src python -m pytest -x -q``.
"""
