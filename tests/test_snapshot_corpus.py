"""Snapshot corpus: committed ``repro.snapshot/v1`` files as a compat gate.

Each file under ``tests/snapshots/`` was written by a builder below and
committed.  Every test run must still be able to (a) load it, (b) replay
its recorded schedule, (c) reproduce its recorded expected facts, and
(d) re-encode the loaded engine to the identical ``state`` section —
so a format or engine change that silently breaks old snapshots fails
here instead of in a user's workflow.  To regenerate after an
*intentional* format change (with a schema/version bump and a note in
docs/PERSISTENCE.md)::

    REPRO_REGEN_SNAPSHOTS=1 python -m pytest tests/test_snapshot_corpus.py

and review the diff before committing.
"""

import os
import pathlib

import pytest

from repro.bench.replay import expected_block
from repro.bench.workloads import default_workloads
from repro.core.terms import App
from repro.engine import EGraph
from repro.engine.schedule import Run
from repro.frontend import Evaluator
from repro.serialize import (
    dumps_document,
    engine_document,
    engine_from_document,
    load_engine,
    read_document,
)
from repro.serialize.encode import decode_schedule, encode_schedule

SNAPSHOT_DIR = pathlib.Path(__file__).parent / "snapshots"
REGEN_VAR = "REPRO_REGEN_SNAPSHOTS"


# ---------------------------------------------------------------------------
# Builders: one per committed snapshot, deterministic by construction
# ---------------------------------------------------------------------------


def _build_tc_chain() -> "tuple[EGraph, dict]":
    """Saturated transitive closure on a chain — the warm-start showcase."""
    workload = [w for w in default_workloads(quick=True) if w.name == "tc_chain"][0]
    engine = EGraph()
    workload.setup(engine)
    workload.run(engine)
    engine._ensure_canonical()
    return engine, {"schedule": encode_schedule(Run(50)), "expected": expected_block(engine)}


def _build_math_partial() -> "tuple[EGraph, dict]":
    """Math rewriting stopped mid-saturation; the replay finishes the run."""
    workload = [w for w in default_workloads(quick=True) if "math" in w.name][0]
    engine = EGraph()
    workload.setup(engine)
    engine.run(1)
    engine._ensure_canonical()
    # The expected facts describe the state *after* the replay schedule, so
    # dry-run it on a copy loaded from this exact document.
    schedule = Run(2)
    probe = engine_from_document(engine_document(engine))
    probe.run_schedule(schedule)
    expected = expected_block(probe)
    expected["saturated"] = False  # two more iterations do not saturate
    return engine, {"schedule": encode_schedule(schedule), "expected": expected}


def _build_congruence() -> "tuple[EGraph, dict]":
    """Unions over constructor towers: proof forest + congruence edges."""
    engine = EGraph()
    engine.declare_sort("M")
    engine.constructor("f", ("M",), "M")
    for leaf in ("a", "b", "c"):
        engine.constructor(leaf, (), "M")
        engine.add(App("f", App("f", App(leaf))))
    engine.union(App("a"), App("b"))
    engine.union(App("b"), App("c"))
    engine.rebuild()
    engine._ensure_canonical()
    return engine, {"schedule": encode_schedule(Run(1)), "expected": expected_block(engine)}


def _build_egg_globals() -> "tuple[EGraph, dict]":
    """A frontend session with globals — exercises the surfaces.egg block."""
    evaluator = Evaluator()
    evaluator.run_program(
        "(datatype Math (Num i64) (Add Math Math))\n"
        "(rewrite (Add (Num 0) x) x)\n"
        "(let one (Num 1))\n"
        "(let sum (Add (Num 0) one))\n"
        "(run 5)\n",
        "<corpus>",
    )
    evaluator.egraph._ensure_canonical()
    replay = {
        "schedule": encode_schedule(Run(5)),
        "expected": expected_block(evaluator.egraph),
    }
    return evaluator, replay


BUILDERS = {
    "tc_chain": _build_tc_chain,
    "math_partial": _build_math_partial,
    "congruence": _build_congruence,
    "egg_globals": _build_egg_globals,
}


def _render(name: str) -> str:
    """The exact on-disk bytes the builder for ``name`` produces today."""
    built, replay = BUILDERS[name]()
    if isinstance(built, Evaluator):
        # Route through the frontend's own save so the surfaces.egg block
        # is exactly what (save ...) writes, then splice in the replay
        # block (the .egg command has no replay argument).
        import tempfile

        with tempfile.TemporaryDirectory() as scratch:
            probe = os.path.join(scratch, "probe.json")
            built.save_snapshot(probe)
            probed = read_document(probe)
        document = engine_document(
            built.egraph, surfaces=probed.get("surfaces"), replay=replay
        )
    else:
        document = engine_document(built, replay=replay)
    return dumps_document(document)


def _write(name: str) -> pathlib.Path:
    path = SNAPSHOT_DIR / f"{name}.json"
    SNAPSHOT_DIR.mkdir(exist_ok=True)
    path.write_text(_render(name))
    return path


@pytest.fixture(scope="module", autouse=True)
def regenerate_if_requested():
    if os.environ.get(REGEN_VAR):
        for name in BUILDERS:
            _write(name)
    yield


@pytest.mark.parametrize("name", sorted(BUILDERS))
def test_corpus_file_exists(name):
    path = SNAPSHOT_DIR / f"{name}.json"
    assert path.exists(), (
        f"missing {path}; run {REGEN_VAR}=1 pytest tests/test_snapshot_corpus.py"
    )


@pytest.mark.parametrize("name", sorted(BUILDERS))
def test_corpus_loads_and_replays(name):
    path = SNAPSHOT_DIR / f"{name}.json"
    if not path.exists():
        pytest.skip(f"no committed snapshot {path.name}")
    engine, document = load_engine(str(path))
    replay = document["replay"]
    report = engine.run_schedule(decode_schedule(replay["schedule"]))
    expected = replay["expected"]
    assert report.saturated == expected["saturated"]
    assert engine.uf.n_unions == expected["n_unions"]
    for table, rows in expected["table_rows"].items():
        assert len(engine.tables[table]) == rows, f"{name}: table {table}"


@pytest.mark.parametrize("name", sorted(BUILDERS))
def test_corpus_state_reencodes_identically(name):
    """Load → re-encode must reproduce the committed state exactly.

    Compared at the ``state``/``surfaces`` level (not raw bytes) so a pure
    version-string bump in ``meta`` doesn't trip the gate; any change to
    what the format *records* still does.
    """
    path = SNAPSHOT_DIR / f"{name}.json"
    if not path.exists():
        pytest.skip(f"no committed snapshot {path.name}")
    committed = read_document(str(path))
    engine = engine_from_document(committed)
    fresh = engine_document(
        engine,
        surfaces=committed.get("surfaces"),
        replay=committed.get("replay"),
    )
    assert fresh["state"] == committed["state"]
    assert fresh.get("surfaces") == committed.get("surfaces")


@pytest.mark.parametrize("name", sorted(BUILDERS))
def test_corpus_matches_builders(name):
    """The committed file must be exactly what its builder writes today.

    This is the regen-discipline check (same pattern as the golden suite):
    if a change alters what a builder produces, the corpus file must be
    regenerated and reviewed in the same commit.
    """
    path = SNAPSHOT_DIR / f"{name}.json"
    if not path.exists():
        pytest.skip(f"no committed snapshot {path.name}")
    committed = path.read_text()
    assert _render(name) == committed, (
        f"{path.name} diverged from its builder; review and commit the "
        f"regenerated file ({REGEN_VAR}=1) if the change is intentional"
    )
