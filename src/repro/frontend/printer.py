"""Re-readable printing of terms and values in .egg surface syntax.

The inverse of the reader, used by ``extract``/``query-extract`` output:
every printed form parses back to an equal term under the same
declarations (strings are re-escaped, booleans print as ``true``/``false``,
rationals as a ``(rational n d)`` call, nullary applications keep their
parentheses).
"""

from __future__ import annotations

from fractions import Fraction

from ..core.terms import Term, TermApp, TermLit, TermVar
from ..core.values import Value
from ..engine.rule import EqFact, Fact

_STRING_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n", "\t": "\\t"}


def format_value(value: Value) -> str:
    """Render a runtime value as .egg literal (or constructor) syntax."""
    data = value.data
    if value.sort == "String":
        body = "".join(_STRING_ESCAPES.get(char, char) for char in str(data))
        return f'"{body}"'
    if value.sort == "bool":
        return "true" if data else "false"
    if value.sort == "Unit":
        return "()"
    if isinstance(data, Fraction):
        return f"(rational {data.numerator} {data.denominator})"
    if isinstance(data, frozenset):
        items = " ".join(sorted(format_value(item) for item in data))
        return f"(set-of {items})" if items else "(set-empty)"
    return str(data)


def format_term(term: Term) -> str:
    """Render a term as .egg surface syntax."""
    if isinstance(term, TermVar):
        return term.name
    if isinstance(term, TermLit):
        return format_value(term.value)
    if isinstance(term, TermApp):
        parts = [term.func] + [format_term(arg) for arg in term.args]
        return "(" + " ".join(parts) + ")"
    raise TypeError(f"cannot format {term!r}")


def format_fact(fact: Fact) -> str:
    """Render a body fact — an application or an ``(= a b)`` equality."""
    if isinstance(fact, EqFact):
        return f"(= {format_term(fact.lhs)} {format_term(fact.rhs)})"
    return format_term(fact)
