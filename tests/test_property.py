"""Property-based tests (hypothesis): union-find laws and rebuild fixpoints.

Two invariant families the whole engine leans on:

* the union-find implements an equivalence relation — reflexive,
  symmetric, transitive — and agrees with a naive partition model under
  arbitrary union sequences;
* rebuilding always reaches a congruent fixpoint on arbitrary term graphs:
  rows are canonical, congruent keys share an output class, and a second
  rebuild is a no-op.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core.terms import App  # noqa: E402
from repro.core.unionfind import UnionFind  # noqa: E402
from repro.core.values import I64  # noqa: E402
from repro.engine import EGraph  # noqa: E402

N_IDS = 12

union_sequences = st.lists(
    st.tuples(st.integers(0, N_IDS - 1), st.integers(0, N_IDS - 1)),
    max_size=30,
)


@given(pairs=union_sequences)
def test_unionfind_is_an_equivalence_relation(pairs):
    uf = UnionFind()
    ids = uf.make_sets(N_IDS)
    # Naive model: merge explicit sets.
    partition = {i: {i} for i in ids}
    for a, b in pairs:
        uf.union(a, b)
        if partition[a] is not partition[b]:
            merged = partition[a] | partition[b]
            for member in merged:
                partition[member] = merged

    for i in ids:
        assert uf.same(i, i)  # reflexive
        assert uf.find(uf.find(i)) == uf.find(i)  # find is idempotent
    for i in ids:
        for j in ids:
            assert uf.same(i, j) == uf.same(j, i)  # symmetric
            assert uf.same(i, j) == (j in partition[i])  # matches the model
    # Transitivity follows from agreement with the model, but check directly:
    for i in ids:
        for j in ids:
            if not uf.same(i, j):
                continue
            for k in ids:
                if uf.same(j, k):
                    assert uf.same(i, k)


@given(pairs=union_sequences)
def test_unionfind_class_counting(pairs):
    uf = UnionFind()
    ids = uf.make_sets(N_IDS)
    merges = 0
    for a, b in pairs:
        if not uf.same(a, b):
            merges += 1
        uf.union(a, b)
    assert uf.n_unions == merges
    assert uf.n_classes() == N_IDS - merges
    assert len({uf.find(i) for i in ids}) == uf.n_classes()


@given(pairs=union_sequences)
def test_unionfind_snapshot_restore_roundtrip(pairs):
    uf = UnionFind()
    ids = uf.make_sets(N_IDS)
    state = uf.snapshot()
    before = [uf.find(i) for i in ids]
    for a, b in pairs:
        uf.union(a, b)
    uf.restore(state)
    assert [uf.find(i) for i in ids] == before
    assert uf.n_unions == 0


# -- rebuild reaches a congruent fixpoint ------------------------------------


@st.composite
def term_graph_ops(draw):
    """A random term graph plus a random union sequence over its nodes.

    Nodes are handles into a growing list: leaves ``(L k)`` first, then
    binary nodes ``(F a b)`` over earlier handles — so the graph is built
    bottom-up and every handle denotes an e-class.
    """
    n_leaves = draw(st.integers(1, 4))
    n_nodes = draw(st.integers(0, 12))
    nodes = []
    for index in range(n_nodes):
        limit = n_leaves + index - 1
        nodes.append(
            (draw(st.integers(0, limit)), draw(st.integers(0, limit)))
        )
    total = n_leaves + n_nodes
    unions = draw(
        st.lists(
            st.tuples(st.integers(0, total - 1), st.integers(0, total - 1)),
            max_size=8,
        )
    )
    return n_leaves, nodes, unions


def build_graph(n_leaves, nodes):
    egraph = EGraph()
    egraph.declare_sort("S")
    egraph.constructor("L", (I64,), "S")
    egraph.constructor("F", ("S", "S"), "S")
    handles = [egraph.add(App("L", k)) for k in range(n_leaves)]
    terms = [App("L", k) for k in range(n_leaves)]
    for a, b in nodes:
        term = App("F", terms[a], terms[b])
        handles.append(egraph.add(term))
        terms.append(term)
    return egraph, handles


def assert_congruent(egraph):
    for name, table in egraph.tables.items():
        seen = {}
        for key, row in table.data.items():
            canon_key = tuple(egraph.canonicalize(value) for value in key)
            canon_out = egraph.canonicalize(row.value)
            # Fixpoint: every stored key and output is already canonical.
            assert canon_key == key, f"{name}: stale key {key}"
            assert canon_out == row.value, f"{name}: stale output {row.value}"
            # Congruence: one canonical key, one output class.
            if canon_key in seen:
                assert seen[canon_key] == canon_out
            seen[canon_key] = canon_out


@settings(max_examples=60)
@given(ops=term_graph_ops())
def test_rebuild_reaches_congruent_fixpoint(ops):
    n_leaves, nodes, unions = ops
    egraph, handles = build_graph(n_leaves, nodes)
    for a, b in unions:
        egraph.union_values(
            egraph.canonicalize(handles[a]), egraph.canonicalize(handles[b])
        )
    egraph.rebuild()
    assert_congruent(egraph)
    # Rebuilding again must be a no-op: the fixpoint is stable.
    updates = egraph.updates
    assert egraph.rebuild() == 0
    assert egraph.updates == updates


@settings(max_examples=30)
@given(ops=term_graph_ops())
def test_rebuild_implements_congruence_semantically(ops):
    """f(a) and f(b) end up equal whenever a and b do (upward closure)."""
    n_leaves, nodes, unions = ops
    egraph, handles = build_graph(n_leaves, nodes)
    for a, b in unions:
        egraph.union_values(
            egraph.canonicalize(handles[a]), egraph.canonicalize(handles[b])
        )
    egraph.rebuild()
    table = egraph.tables["F"]
    rows = list(table.data.items())
    for key_a, row_a in rows:
        for key_b, row_b in rows:
            args_equal = all(
                egraph.canonicalize(x) == egraph.canonicalize(y)
                for x, y in zip(key_a, key_b)
            )
            if args_equal:
                assert egraph.canonicalize(row_a.value) == egraph.canonicalize(
                    row_b.value
                )
