"""The .egg text frontend: reader, parser, evaluator, and CLI.

This package implements the paper's textual s-expression language on top
of the engine:

* :mod:`repro.frontend.sexp` — s-expression reader with source locations
* :mod:`repro.frontend.parser` — the core egglog command set (Figure 4)
* :mod:`repro.frontend.evaluator` — lowering onto :class:`repro.engine.EGraph`
* :mod:`repro.frontend.printer` — re-readable term/value printing
* :mod:`repro.frontend.cli` — the ``python -m repro`` entry point
"""

from .errors import (
    ArityError,
    EvalError,
    FrontendError,
    Loc,
    ParseError,
    SortError,
    UnboundSymbolError,
    UnknownCommandError,
)
from .evaluator import Evaluator, run_program
from .parser import Parser, parse_program
from .printer import format_term, format_value
from .sexp import Literal, Sexp, SList, Symbol, parse_sexps

__all__ = [
    "ArityError",
    "EvalError",
    "Evaluator",
    "FrontendError",
    "Literal",
    "Loc",
    "ParseError",
    "Parser",
    "Sexp",
    "SList",
    "SortError",
    "Symbol",
    "UnboundSymbolError",
    "UnknownCommandError",
    "format_term",
    "format_value",
    "parse_program",
    "parse_sexps",
    "run_program",
]
