"""Benchmark subsystem: workload determinism, runner schema, CLI."""

import json

import pytest

from repro.bench import SCHEMA, default_workloads, run_suite, run_workload
from repro.bench.__main__ import main as bench_main
from repro.bench.runner import write_document
from repro.bench.workloads import (
    congruence_stress,
    math_rewriting,
    transitive_closure,
)

TINY_VARIANTS = {"generic-index": "generic", "generic-adhoc": "generic-adhoc"}


def tiny_tc():
    return transitive_closure("chain", n=6)


# -- workload generators ------------------------------------------------------


def test_generators_are_deterministic_per_seed():
    first = transitive_closure("random", n=8, m=12, seed=3)
    second = transitive_closure("random", n=8, m=12, seed=3)
    assert first.params == second.params
    from repro.engine import EGraph

    engines = []
    for workload in (first, second):
        egraph = EGraph()
        workload.setup(egraph)
        engines.append(sorted((k[0].data, k[1].data) for k, _v in egraph.table_rows("edge")))
    assert engines[0] == engines[1]
    assert len(engines[0]) == 12


def test_grid_edges_shape():
    workload = transitive_closure("grid", n=3)
    from repro.engine import EGraph

    egraph = EGraph()
    workload.setup(egraph)
    # A 3x3 grid has 2*3*2 = 12 directed right/down edges.
    assert len(egraph.tables["edge"]) == 12


def test_unknown_graph_kind_rejected():
    with pytest.raises(ValueError, match="unknown graph kind"):
        transitive_closure("torus", n=4)


def test_default_workloads_cover_all_families():
    families = {w.family for w in default_workloads(quick=True)}
    assert families == {
        "transitive-closure",
        "math-rewriting",
        "congruence-closure",
        "proof-production",
    }


# -- runner -------------------------------------------------------------------


def test_run_workload_document_schema():
    document = run_workload(tiny_tc(), TINY_VARIANTS, repeats=3)
    assert document["schema"] == SCHEMA == "repro.bench/v2"
    assert document["name"] == "tc_chain"
    assert set(document["variants"]) == set(TINY_VARIANTS)
    for entry in document["variants"].values():
        for field in (
            "strategy",
            "run_s",
            "run_s_stats",
            "runs_s",
            "setup_s",
            "search_s",
            "apply_s",
            "rebuild_s",
            "iterations",
            "matches",
            "delta_skips",
            "saturated",
            "table_rows",
        ):
            assert field in entry
        assert entry["saturated"] is True
        assert entry["table_rows"]["path"] == 15  # closure of a 6-chain
        stats = entry["run_s_stats"]
        assert stats["min"] <= stats["median"] <= stats["max"]
        assert stats["median"] in entry["runs_s"]  # an actually measured run
        assert entry["run_s"] == stats["median"]
    comparison = document["comparison"]
    assert comparison["baseline"] == "generic-adhoc"
    assert comparison["candidate"] == "generic-index"
    assert comparison["speedup"] > 0
    # The headline comparison numbers are the medians of the repeats.
    assert comparison["baseline_run_s"] == (
        document["variants"]["generic-adhoc"]["run_s_stats"]["median"]
    )
    assert comparison["candidate_run_s_stats"]["min"] <= comparison["candidate_run_s"]


def test_median_run_s_tolerates_v1_documents():
    from repro.bench import median_run_s

    assert median_run_s({"run_s": 0.25}) == 0.25  # v1: no run_s_stats block
    assert median_run_s({"run_s": 9.9, "run_s_stats": {"median": 0.5}}) == 0.5


def test_variants_agree_on_results():
    workloads = [
        tiny_tc(),
        math_rewriting(depth=3, iterations=3),
        congruence_stress(leaves=8, height=3),
    ]
    for workload in workloads:
        document = run_workload(workload, TINY_VARIANTS, repeats=1)
        sizes = {
            variant: entry["table_rows"]
            for variant, entry in document["variants"].items()
        }
        assert sizes["generic-index"] == sizes["generic-adhoc"], workload.name


def test_write_document_and_run_suite(tmp_path):
    paths = run_suite(
        [tiny_tc()],
        variants=TINY_VARIANTS,
        repeats=1,
        out_dir=tmp_path,
        log=lambda line: None,
    )
    assert paths == [tmp_path / "BENCH_tc_chain.json"]
    document = json.loads(paths[0].read_text())
    assert document["schema"] == SCHEMA
    # write_document round-trips to the same file name.
    assert write_document(document, tmp_path) == paths[0]


# -- CLI ----------------------------------------------------------------------


def test_cli_list(capsys):
    assert bench_main(["--quick", "--list"]) == 0
    out = capsys.readouterr().out
    assert "tc_chain" in out and "congruence" in out


def test_cli_only_filter_writes_single_file(tmp_path, capsys):
    assert (
        bench_main(
            [
                "--quick",
                "--only",
                "tc_chain",
                "--out",
                str(tmp_path),
                "--variants",
                "generic-index,generic-adhoc",
            ]
        )
        == 0
    )
    assert sorted(p.name for p in tmp_path.glob("BENCH_*.json")) == [
        "BENCH_tc_chain.json"
    ]
    assert "bench: tc_chain:" in capsys.readouterr().out


def test_cli_rejects_unknown_selection(tmp_path, capsys):
    assert bench_main(["--only", "nope", "--out", str(tmp_path)]) == 1
    assert "no workload matches" in capsys.readouterr().err
    assert bench_main(["--variants", "warp-drive", "--out", str(tmp_path)]) == 1
    assert "unknown variant" in capsys.readouterr().err


def test_cli_profile_prints_hot_functions(tmp_path, capsys):
    assert (
        bench_main(
            ["--quick", "--only", "tc_chain", "--profile", "--out", str(tmp_path)]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "profile: tc_chain [generic]" in out or "profile: tc_chain [indexed]" in out
    assert "cumulative" in out  # pstats column header
    assert not list(tmp_path.glob("BENCH_*.json"))  # profiling writes no files


# -- regression gate (repro.bench.compare) ------------------------------------


def _gate_documents(tmp_path):
    from repro.bench.runner import write_document

    committed = tmp_path / "committed"
    fresh = tmp_path / "fresh"
    document = run_workload(tiny_tc(), TINY_VARIANTS, repeats=1)
    write_document(document, committed)
    write_document(document, fresh)
    return committed, fresh


def test_compare_passes_on_identical_documents(tmp_path, capsys):
    from repro.bench.compare import main as compare_main

    committed, fresh = _gate_documents(tmp_path)
    assert compare_main([str(fresh), "--against", str(committed)]) == 0
    assert "within 1.50x" in capsys.readouterr().out


def test_compare_fails_on_regression(tmp_path, capsys):
    from repro.bench.compare import main as compare_main

    committed, fresh = _gate_documents(tmp_path)
    path = fresh / "BENCH_tc_chain.json"
    document = json.loads(path.read_text())
    for entry in document["variants"].values():
        entry["run_s_stats"]["median"] = entry["run_s_stats"]["median"] * 10 + 1.0
    path.write_text(json.dumps(document))
    assert compare_main([str(fresh), "--against", str(committed)]) == 1
    assert "regressed" in capsys.readouterr().out


def test_compare_fails_on_semantic_drift(tmp_path, capsys):
    from repro.bench.compare import main as compare_main

    committed, fresh = _gate_documents(tmp_path)
    path = fresh / "BENCH_tc_chain.json"
    document = json.loads(path.read_text())
    document["variants"]["generic-index"]["matches"] += 1
    path.write_text(json.dumps(document))
    assert compare_main([str(fresh), "--against", str(committed)]) == 1
    assert "matches changed" in capsys.readouterr().out


def test_compare_skips_on_param_change_and_tolerates_v1(tmp_path, capsys):
    from repro.bench.compare import main as compare_main

    committed, fresh = _gate_documents(tmp_path)
    path = committed / "BENCH_tc_chain.json"
    document = json.loads(path.read_text())
    # Downgrade the committed file to schema v1: drop the stats blocks.
    document["schema"] = "repro.bench/v1"
    for entry in document["variants"].values():
        del entry["run_s_stats"]
    path.write_text(json.dumps(document))
    assert compare_main([str(fresh), "--against", str(committed)]) == 0

    # A params change is an explicit failure telling the author to refresh.
    document["params"] = {"kind": "chain", "n": 99, "m": 98, "seed": 0}
    path.write_text(json.dumps(document))
    assert compare_main([str(fresh), "--against", str(committed)]) == 1
    assert "refresh the committed BENCH" in capsys.readouterr().out


def test_compare_fails_when_committed_variant_goes_missing(tmp_path, capsys):
    from repro.bench.compare import main as compare_main

    committed, fresh = _gate_documents(tmp_path)
    path = fresh / "BENCH_tc_chain.json"
    document = json.loads(path.read_text())
    # Simulate a variant rename: the committed "generic-index" vanishes
    # from the fresh run.  The gate must not pass vacuously.
    document["variants"]["renamed"] = document["variants"].pop("generic-index")
    path.write_text(json.dumps(document))
    assert compare_main([str(fresh), "--against", str(committed)]) == 1
    assert "missing from the fresh run" in capsys.readouterr().out


def test_compare_errors_when_nothing_to_compare(tmp_path, capsys):
    from repro.bench.compare import main as compare_main

    empty = tmp_path / "empty"
    empty.mkdir()
    assert compare_main([str(empty), "--against", str(tmp_path)]) == 1
    fresh = tmp_path / "fresh-only"
    from repro.bench.runner import write_document

    write_document(run_workload(tiny_tc(), TINY_VARIANTS, repeats=1), fresh)
    assert compare_main([str(fresh), "--against", str(empty)]) == 1
    assert "nothing to compare" in capsys.readouterr().out


def test_compare_flags_zero_baseline_instead_of_dividing(tmp_path, capsys):
    # Regression guard: a committed median of 0.0 used to make every fresh
    # time "within tolerance" (0 * 1.5 == 0 passes nothing, and a ratio
    # would divide by zero); now it is its own named problem.
    from repro.bench.compare import main as compare_main

    committed, fresh = _gate_documents(tmp_path)
    path = committed / "BENCH_tc_chain.json"
    document = json.loads(path.read_text())
    for entry in document["variants"].values():
        entry["run_s_stats"]["median"] = 0.0
        entry["run_s"] = 0.0
    path.write_text(json.dumps(document))
    assert compare_main([str(fresh), "--against", str(committed)]) == 1
    out = capsys.readouterr().out
    assert "tc_chain" in out
    assert "zero/near-zero" in out
    assert "refresh the committed BENCH file" in out
