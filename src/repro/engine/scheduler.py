"""The semi-naïve rule scheduler (Section 4.3).

One engine iteration has three phases, mirroring Figure 9 of the paper:

1. **Search** every rule's query against the current database.  A rule
   remembers ``last_run`` — the timestamp watermark of its previous search —
   and only wants matches that involve at least one row inserted or updated
   since then.  That delta restriction is implemented by running the query
   once per atom with that atom restricted to new rows (``delta_atom`` /
   ``since`` in the search functions) and deduplicating the union of the
   results; a match made entirely of old rows was already found in an
   earlier iteration.
2. **Apply** every match's actions (``repro.engine.actions``).  The global
   timestamp is bumped first, so rows written in this phase are visible as
   "new" to every rule's next search.
3. **Rebuild** congruence closure (``repro.engine.rebuild``).

Matches are collected for *all* rules before any action runs, so rules
within an iteration see the same database snapshot.  The run saturates when
an iteration changes nothing: no inserts, no output updates, no unions, no
deletes.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, List, Tuple

from ..core.query import Substitution
from ..core.schema import RunReport
from .actions import run_actions
from .errors import EGraphError
from .rebuild import rebuild
from .rule import DEFAULT_RULESET, CompiledRule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .egraph import EGraph


class Scheduler:
    """Runs rulesets to saturation or an iteration limit over one e-graph."""

    def __init__(self, egraph: "EGraph") -> None:
        self.egraph = egraph

    # -- searching ------------------------------------------------------------

    def search_rule(self, rule: CompiledRule) -> List[Substitution]:
        """All matches of ``rule`` that involve rows newer than its watermark.

        On a rule's first run (``last_run == 0``) this is a plain full
        search.  Afterwards it is the semi-naïve delta: the union over atoms
        ``i`` of the query with atom ``i`` restricted to rows stamped at or
        after ``last_run``, deduplicated (a match containing several new rows
        is produced once per new atom).
        """
        egraph = self.egraph
        query = rule.query
        if not query.atoms:
            # A rule with no table atoms can never produce new matches after
            # its first firing; run it exactly once.
            if rule.last_run > 0:
                return []
            return list(egraph.search(query))
        if rule.last_run <= 0:
            return list(egraph.search(query))
        matches: List[Substitution] = []
        seen = set()
        for index in range(len(query.atoms)):
            for match in egraph.search(query, delta_atom=index, since=rule.last_run):
                key = tuple(sorted(match.items(), key=lambda item: item[0]))
                if key not in seen:
                    seen.add(key)
                    matches.append(match)
        return matches

    # -- iterating ------------------------------------------------------------

    def run_iteration(self, ruleset: str = DEFAULT_RULESET) -> RunReport:
        """Run one search → apply → rebuild iteration of ``ruleset``."""
        egraph = self.egraph
        rule_names = egraph.rulesets.get(ruleset)
        if rule_names is None:
            raise EGraphError(f"unknown ruleset {ruleset!r}")
        rules = [egraph.rules[name] for name in rule_names]
        report = RunReport(iterations=1)
        updates_before = egraph.updates

        # Pending user unions would make the search see a non-canonical
        # database; repair first (no-op when nothing is dirty).
        start = time.perf_counter()
        rebuild(egraph)
        report.rebuild_time += time.perf_counter() - start

        # Phase 1: search (all rules see the same snapshot).
        searched: List[Tuple[CompiledRule, List[Substitution]]] = []
        for rule in rules:
            start = time.perf_counter()
            matches = self.search_rule(rule)
            report.search_time += time.perf_counter() - start
            report.num_matches += len(matches)
            report.per_rule_matches[rule.name] = len(matches)
            searched.append((rule, matches))

        # Phase 2: apply.  Bump the timestamp so writes from this iteration
        # are the next iteration's delta.
        egraph.timestamp += 1
        start = time.perf_counter()
        for rule, matches in searched:
            for match in matches:
                run_actions(egraph, rule.actions, match)
            rule.last_run = egraph.timestamp
        report.apply_time += time.perf_counter() - start

        # Phase 3: rebuild congruence closure.
        start = time.perf_counter()
        rebuild(egraph)
        report.rebuild_time += time.perf_counter() - start

        report.updated = egraph.updates != updates_before
        report.saturated = not report.updated
        return report

    def run(self, limit: int = 1, ruleset: str = DEFAULT_RULESET) -> RunReport:
        """Run up to ``limit`` iterations, stopping early on saturation."""
        total = RunReport()
        for _ in range(limit):
            iteration = self.run_iteration(ruleset)
            total.merge_with(iteration)
            if iteration.saturated:
                break
        return total
