"""Transitive closure as Datalog with a ``min`` merge — shortest path lengths.

This is the paper's flagship Datalog-side example (Section 2): ``path`` is
not a relation but a *function* from node pairs to the best known path
length, with ``merge="min"``.  Re-deriving a longer path is a no-op; a
shorter one overwrites and (because the row's timestamp bumps) propagates
through semi-naïve evaluation until the fixpoint.

Run with:  python examples/path.py
"""

import pathlib
import sys

# Replace (not prepend to) the script-directory entry: this file's sibling
# math.py would otherwise shadow the stdlib `math` module.
sys.path[0] = str(pathlib.Path(__file__).resolve().parents[1] / "src")

from repro.core.terms import App, L, V  # noqa: E402
from repro.core.values import I64  # noqa: E402
from repro.engine import EGraph, Rule, Set, eq  # noqa: E402

EDGES = [(1, 2), (2, 3), (3, 4), (1, 3), (4, 5), (5, 2)]


def build_engine() -> EGraph:
    eg = EGraph()
    eg.relation("edge", (I64, I64))
    eg.function("path", (I64, I64), I64, merge="min")

    # (rule ((edge x y)) ((set (path x y) 1)))
    eg.add_rule(
        Rule(
            name="edge-is-path",
            facts=[App("edge", V("x"), V("y"))],
            actions=[Set(App("path", V("x"), V("y")), L(1))],
        )
    )
    # (rule ((= d (path x y)) (edge y z)) ((set (path x z) (+ d 1))))
    eg.add_rule(
        Rule(
            name="extend-path",
            facts=[eq(V("d"), App("path", V("x"), V("y"))), App("edge", V("y"), V("z"))],
            actions=[Set(App("path", V("x"), V("z")), App("+", V("d"), L(1)))],
        )
    )
    return eg


def main() -> None:
    eg = build_engine()
    for a, b in EDGES:
        eg.add(App("edge", a, b))

    report = eg.run(limit=100)
    print(f"run: {report.summary()}")
    assert report.saturated, "transitive closure must reach a fixpoint"

    lengths = {
        (key[0].data, key[1].data): value.data for key, value in eg.table_rows("path")
    }
    print(f"{len(lengths)} shortest path lengths:")
    for (src, dst), dist in sorted(lengths.items()):
        print(f"  path({src}, {dst}) = {dist}")

    # Spot-check the min merge: 1->4 goes via the 1->3 shortcut (2 hops),
    # not via 1->2->3->4 (3 hops); 1->5 rides the shortcut too.
    assert lengths[(1, 4)] == 2
    assert lengths[(1, 5)] == 3
    # The 5->2 back edge closes a cycle; every node on it reaches itself.
    assert lengths[(2, 2)] == 4
    print("ok: min-merged shortest paths are correct")


if __name__ == "__main__":
    main()
