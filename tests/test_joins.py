"""Both join strategies must agree — hand-picked queries and random fuzz."""

import pytest

from repro.core.builtins import default_registry
from repro.core.database import Table
from repro.core.genericjoin import search_generic
from repro.core.query import PrimAtom, Query, QVar, TableAtom, search_indexed
from repro.core.schema import FunctionDecl
from repro.core.values import UNIT, UNIT_VALUE, i64

STRATEGIES = [search_indexed, search_generic]


def edge_table(edges, timestamps=None):
    table = Table(FunctionDecl("edge", ("i64", "i64"), UNIT))
    for index, (a, b) in enumerate(edges):
        ts = timestamps[index] if timestamps else 0
        table.put((i64(a), i64(b)), UNIT_VALUE, ts)
    return table


def triangle_query():
    x, y, z = QVar("x"), QVar("y"), QVar("z")
    return Query(
        atoms=[
            TableAtom("edge", (x, y), QVar("o1")),
            TableAtom("edge", (y, z), QVar("o2")),
            TableAtom("edge", (z, x), QVar("o3")),
        ]
    )


EDGES = [(1, 2), (2, 3), (3, 1), (2, 4), (4, 2), (4, 5), (5, 6), (6, 4), (1, 1)]


def solutions(matches):
    return sorted(
        (m["x"].data, m["y"].data, m["z"].data) for m in matches
    )


@pytest.mark.parametrize("search", STRATEGIES)
def test_triangle_query_finds_all_cycles(search):
    tables = {"edge": edge_table(EDGES)}
    result = solutions(search(tables, default_registry(), triangle_query()))
    # 1-2-3 rotations, 2-4 two-cycles are not triangles unless closed, the
    # 4-5-6 cycle's rotations, and the 1-1 self-loop triangle.
    assert (1, 2, 3) in result
    assert (2, 3, 1) in result and (3, 1, 2) in result
    assert (4, 5, 6) in result and (5, 6, 4) in result and (6, 4, 5) in result
    assert (1, 1, 1) in result
    assert all((a, b) in EDGES and (b, c) in EDGES and (c, a) in EDGES for a, b, c in result)


def test_strategies_agree_exactly():
    tables = {"edge": edge_table(EDGES)}
    indexed = solutions(search_indexed(tables, default_registry(), triangle_query()))
    generic = solutions(search_generic(tables, default_registry(), triangle_query()))
    assert indexed == generic
    assert len(indexed) == len(set(indexed))  # no duplicate matches


@pytest.mark.parametrize("search", STRATEGIES)
def test_delta_restriction_only_matches_new_rows(search):
    # Two triangles; only the second was inserted at timestamp 1.
    edges = [(1, 2), (2, 3), (3, 1), (7, 8), (8, 9), (9, 7)]
    stamps = [0, 0, 0, 1, 1, 1]
    tables = {"edge": edge_table(edges, stamps)}
    new_only = solutions(
        search(tables, default_registry(), triangle_query(), delta_atom=0, since=1)
    )
    assert all(a in (7, 8, 9) for a, _, _ in new_only)
    assert (7, 8, 9) in new_only
    everything = solutions(
        search(tables, default_registry(), triangle_query(), delta_atom=0, since=0)
    )
    assert (1, 2, 3) in everything and (7, 8, 9) in everything


@pytest.mark.parametrize("search", STRATEGIES)
def test_primitive_guards_filter_matches(search):
    tables = {"edge": edge_table(EDGES)}
    query = triangle_query()
    query.prims.append(PrimAtom("<", (QVar("x"), QVar("y")), None))
    result = solutions(search(tables, default_registry(), query))
    assert result and all(x < y for x, y, _ in result)


@pytest.mark.parametrize("search", STRATEGIES)
def test_primitive_binders_extend_bindings(search):
    tables = {"edge": edge_table([(1, 2)])}
    query = Query(
        atoms=[TableAtom("edge", (QVar("x"), QVar("y")), QVar("_o"))],
        prims=[PrimAtom("+", (QVar("x"), QVar("y")), QVar("s"))],
    )
    matches = list(search(tables, default_registry(), query))
    assert len(matches) == 1
    assert matches[0]["s"] == i64(3)


@pytest.mark.parametrize("search", STRATEGIES)
def test_missing_table_means_no_matches(search):
    query = triangle_query()
    assert list(search({}, default_registry(), query)) == []


# ---------------------------------------------------------------------------
# Fuzz equivalence: random conjunctive queries over random small databases
# must return identical substitution sets from both join strategies.
# ---------------------------------------------------------------------------

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

_VARS = ["x", "y", "z", "w"]
_VALUES = list(range(5))


@st.composite
def database_and_query(draw):
    """A random multi-relation database plus a random conjunctive query."""
    tables = {}
    arities = {}
    for name in ("r", "s"):
        arity = draw(st.integers(1, 2))
        arities[name] = arity
        table = Table(FunctionDecl(name, ("i64",) * arity, UNIT))
        rows = draw(
            st.lists(
                st.tuples(*([st.sampled_from(_VALUES)] * arity)),
                max_size=12,
                unique=True,
            )
        )
        for timestamp, row in enumerate(rows):
            table.put(tuple(i64(v) for v in row), UNIT_VALUE, timestamp % 3)
        tables[name] = table

    query = Query()
    n_atoms = draw(st.integers(1, 3))
    for index in range(n_atoms):
        name = draw(st.sampled_from(["r", "s"]))
        args = tuple(
            QVar(draw(st.sampled_from(_VARS)))
            if draw(st.booleans())
            else i64(draw(st.sampled_from(_VALUES)))
            for _ in range(arities[name])
        )
        query.atoms.append(TableAtom(name, args, QVar(f"_o{index}")))
    # Optionally add a primitive guard over two variables the atoms bind.
    bound = sorted(query.table_variables() - {f"_o{i}" for i in range(n_atoms)})
    if bound and draw(st.booleans()):
        op = draw(st.sampled_from(["<", "<=", "!="]))
        a = draw(st.sampled_from(bound))
        b = draw(st.sampled_from(bound))
        query.prims.append(PrimAtom(op, (QVar(a), QVar(b)), None))
    delta = draw(st.sampled_from([None, 0]))
    since = draw(st.integers(0, 2)) if delta is not None else 0
    return tables, query, delta, since


def _canonical(matches):
    return sorted(
        tuple(sorted((name, value.data) for name, value in match.items()))
        for match in matches
    )


@settings(max_examples=120)
@given(case=database_and_query())
def test_fuzz_random_queries_strategies_agree(case):
    tables, query, delta, since = case
    registry = default_registry()
    indexed = _canonical(
        search_indexed(tables, registry, query, delta_atom=delta, since=since)
    )
    generic = _canonical(
        search_generic(tables, registry, query, delta_atom=delta, since=since)
    )
    assert indexed == generic
    # The functional database admits no duplicate substitutions.
    assert len(indexed) == len(set(indexed))
